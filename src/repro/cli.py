"""Command-line interface: ``python -m repro <command>``.

The paper's goal is "a standalone, lightweight yet highly scalable
analysis system" a domain specialist can point at a flat file — this
module is that front door:

- ``generate`` — produce a dataset (synthetic / netlog / honeynet) as a
  binary flat file or CSV;
- ``run`` — evaluate one of the paper's queries over a flat file with a
  chosen engine, printing results and run statistics;
- ``explain`` — show a query's AW-RA algebra, its equivalent SQL
  (Tables 2-4), the compiled evaluation graph, the streaming plan, or
  GraphViz DOT;
- ``sql`` — compile a query to *executable* SQL and run it on a real
  relational engine (stdlib sqlite3, or duckdb when importable),
  decoding results back into measure tables;
- ``bench`` — regenerate one of the paper's figures at a chosen scale;
- ``ingest`` — bootstrap a persistent measure store from a flat file,
  or fold a delta batch into it incrementally;
- ``query`` — read a stored measure (table, point, or prefix range)
  without re-evaluating anything;
- ``serve`` — expose a store over a JSON/HTTP endpoint (including a
  Prometheus ``/metrics`` route);
- ``trace`` — run a query with span recording on and write a Chrome
  trace-event JSON (open it in ``chrome://tracing`` or Perfetto);
- ``profile`` — per-workflow-node timing/footprint table for a
  sort/scan run.

Results (measure tables, stats lines, bench tables) go to stdout;
operational chatter goes through the ``repro.*`` loggers to stderr,
tunable with ``-v``/``-q``.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from collections.abc import Sequence

from repro.bench.figures import ALL_FIGURES
from repro.bench.harness import format_table
from repro.data.honeynet import HoneynetGenerator
from repro.data.netlog import NetworkLogGenerator
from repro.data.synthetic import SyntheticGenerator
from repro.engine.multi_pass import MultiPassEngine
from repro.engine.naive import RelationalEngine
from repro.engine.partitioned import PartitionedEngine
from repro.engine.single_scan import SingleScanEngine
from repro.engine.sort_scan import SortScanEngine
from repro.errors import ReproError
from repro.obs import (
    get_registry,
    get_tracer,
    set_tracing,
    telemetry_forced,
)
from repro.queries.registry import QUERY_FAMILIES, SCHEMA_FAMILIES
from repro.schema.dataset_schema import synthetic_schema
from repro.storage.flatfile import (
    FlatFileDataset,
    write_csv,
    write_flatfile,
)

logger = logging.getLogger("repro.cli")


class _CurrentStderrHandler(logging.StreamHandler):
    """Writes to whatever ``sys.stderr`` is *at emit time*.

    The handler outlives ``main()`` on the ``repro`` logger, and other
    threads (an HTTP server's access log) may route records through it
    long after the stderr it was configured under has been swapped out
    and closed (pytest capture, notebooks).  Resolving the stream per
    record keeps those late writes off dead file objects — the same
    idiom as ``logging``'s own lastResort handler.
    """

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self):  # type: ignore[override]
        return sys.stderr


def _setup_logging(verbosity: int) -> None:
    """(Re)configure the ``repro`` logger tree for one CLI invocation.

    The stream handler is recreated on every call and resolves the
    *current* ``sys.stderr`` per record, so repeated ``main()`` calls
    in one process (tests, notebooks) write to the right stream even
    after the caller swaps ``sys.stderr`` out.
    """
    if verbosity > 0:
        level = logging.DEBUG
    elif verbosity < 0:
        level = logging.WARNING
    else:
        level = logging.INFO
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = _CurrentStderrHandler()
    handler.setFormatter(logging.Formatter("%(message)s"))
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False


_GENERATORS = {
    "synthetic": lambda seed: SyntheticGenerator(seed=seed),
    "netlog": lambda seed: NetworkLogGenerator(seed=seed),
    "honeynet": lambda seed: (
        HoneynetGenerator(seed=seed).with_default_episodes()
    ),
}

# The named query families live in repro.queries.registry so the HTTP
# front ends resolve exactly the same declarative encoding the CLI does.
_SCHEMAS = SCHEMA_FAMILIES
_QUERIES = QUERY_FAMILIES

_ENGINES = {
    "sortscan": lambda args: SortScanEngine(
        optimize=True, batch_size=args.batch_size
    ),
    "relational": lambda args: RelationalEngine(),
    "singlescan": lambda args: SingleScanEngine(
        batch_size=args.batch_size
    ),
    "multipass": lambda args: MultiPassEngine(
        memory_budget_entries=500_000
    ),
    "partitioned": lambda args: PartitionedEngine(
        num_partitions=args.partitions, parallel=args.parallel
    ),
}


def _add_run_arguments(run: argparse.ArgumentParser) -> None:
    """Arguments shared by ``run`` and ``trace run``."""
    run.add_argument("--query", choices=sorted(_QUERIES), required=True)
    run.add_argument("--data", required=True, help="binary flat file")
    run.add_argument(
        "--engine", choices=sorted(_ENGINES), default="sortscan"
    )
    run.add_argument(
        "--parallel",
        choices=("serial", "threads", "processes"),
        default="serial",
        help="partitioned engine only: evaluate partitions serially, "
        "on a thread pool, or on one OS process per partition",
    )
    run.add_argument(
        "--partitions", type=int, default=None,
        help="partitioned engine only: partition count "
        "(default: one per CPU core)",
    )
    run.add_argument(
        "--batch-size", type=int, default=None,
        help="sort/scan and single-scan engines: rows per columnar "
        "batch (0 forces the row-at-a-time scalar path; default: "
        "auto — 4096 when numpy is available, scalar otherwise)",
    )
    run.add_argument(
        "--limit", type=int, default=10,
        help="rows to print per measure",
    )
    run.add_argument(
        "--measures", nargs="*", default=None,
        help="measure names to print (default: all outputs)",
    )
    run.add_argument(
        "--out", default=None,
        help="directory to write one TSV per output measure",
    )
    run.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record spans and write a Chrome trace-event JSON here",
    )
    run.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="dump the metrics registry as JSON ('-' for stdout)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Composite subset measures over flat files "
        "(VLDB 2006 reproduction).",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="more operational logging (repeatable)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="less operational logging (repeatable)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="generate a dataset flat file"
    )
    generate.add_argument(
        "--kind", choices=sorted(_GENERATORS), default="honeynet"
    )
    generate.add_argument("--records", type=int, default=50_000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True)
    generate.add_argument(
        "--format", choices=("bin", "csv"), default="bin"
    )

    run = sub.add_parser("run", help="run a paper query over a file")
    _add_run_arguments(run)

    trace = sub.add_parser(
        "trace", help="run a command with span recording on"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_run = trace_sub.add_parser(
        "run", help="run a query and write a Chrome trace-event JSON"
    )
    _add_run_arguments(trace_run)

    profile = sub.add_parser(
        "profile",
        help="per-workflow-node timing table for a sort/scan run",
    )
    profile.add_argument(
        "--query", choices=sorted(_QUERIES), required=True
    )
    profile.add_argument(
        "--data", required=True, help="binary flat file"
    )

    explain = sub.add_parser(
        "explain", help="show a query's algebra / SQL / plan"
    )
    explain.add_argument(
        "--query", choices=sorted(_QUERIES), required=True
    )
    explain.add_argument(
        "--show",
        choices=("algebra", "sql", "graph", "plan", "dot", "cost"),
        default="algebra",
    )
    explain.add_argument(
        "--rows", type=int, default=1_000_000,
        help="assumed dataset size for --show cost/plan estimates",
    )

    sql = sub.add_parser(
        "sql",
        help="compile a query to executable SQL and run it on a "
        "relational engine (sqlite3 / duckdb)",
    )
    sql.add_argument(
        "--query", choices=sorted(_QUERIES), required=True
    )
    sql.add_argument(
        "--engine", choices=("sqlite", "duckdb"), default="sqlite"
    )
    sql_mode = sql.add_mutually_exclusive_group()
    sql_mode.add_argument(
        "--explain", action="store_true",
        help="print the DDL and per-measure SQL without executing",
    )
    sql_mode.add_argument(
        "--run", action="store_true",
        help="load a dataset and execute (the default)",
    )
    sql.add_argument(
        "--data", default=None,
        help="binary flat file (default: generate a small dataset)",
    )
    sql.add_argument(
        "--records", type=int, default=5_000,
        help="generated dataset size when --data is omitted",
    )
    sql.add_argument("--seed", type=int, default=0)
    sql.add_argument(
        "--limit", type=int, default=10, help="rows to print per measure"
    )

    bench = sub.add_parser(
        "bench", help="regenerate one of the paper's figures"
    )
    bench.add_argument(
        "--figure", choices=sorted(ALL_FIGURES), required=True
    )
    bench.add_argument("--scale", type=float, default=0.1)
    bench.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the rows (with full run stats) as JSON",
    )
    bench.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="dump the metrics registry as JSON ('-' for stdout)",
    )

    ingest = sub.add_parser(
        "ingest",
        help="bootstrap a measure store or fold a delta batch into it",
    )
    ingest.add_argument("--store", required=True, help="store directory")
    ingest.add_argument("--data", required=True, help="binary flat file")
    ingest.add_argument(
        "--query", choices=sorted(_QUERIES), default=None,
        help="query the store serves (required on first ingest)",
    )
    ingest.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="treat --store as a sharded cluster directory: bootstrap "
        "it with N shards on first ingest, two-phase ingest afterwards "
        "(0 = single store)",
    )

    query = sub.add_parser(
        "query", help="read measures from a persistent store"
    )
    query.add_argument("--store", required=True, help="store directory")
    query.add_argument(
        "--measure", default=None,
        help="measure to read (omit to list the store's measures)",
    )
    query.add_argument(
        "--key", default=None,
        help="comma-separated region key for a point lookup",
    )
    query.add_argument(
        "--prefix", default=None,
        help="comma-separated key prefix for a range scan",
    )
    query.add_argument(
        "--stats", action="store_true", help="print serving statistics"
    )
    query.add_argument(
        "--limit", type=int, default=10, help="rows to print"
    )

    faults = sub.add_parser(
        "faults",
        help="fault-injection toolkit: fail points, oracles, crash sweep",
    )
    faults_sub = faults.add_subparsers(
        dest="faults_command", required=True
    )
    faults_list = faults_sub.add_parser(
        "list", help="show registered fail-point injection sites"
    )
    faults_list.add_argument(
        "--scope", default=None,
        help="only sites of one scope "
        "(store, ingest, cluster, sort, engine)",
    )
    faults_run = faults_sub.add_parser(
        "run", help="run the metamorphic oracle batch over a seed range"
    )
    faults_run.add_argument(
        "--seeds", type=int, default=50, help="number of seeds to check"
    )
    faults_run.add_argument(
        "--start", type=int, default=0, help="first seed of the range"
    )
    faults_run.add_argument(
        "--families", nargs="*", default=None,
        help="oracle families to check (default: all)",
    )
    faults_sweep = faults_sub.add_parser(
        "sweep",
        help="kill a committing subprocess at every store/ingest/"
        "cluster fail point and verify recovery",
    )
    faults_sweep.add_argument(
        "--seed", type=int, default=0, help="RandomCase seed"
    )
    faults_sweep.add_argument(
        "--action", choices=("crash", "torn-write"), default="crash",
        help="what the armed site does before the process dies",
    )
    faults_sweep.add_argument(
        "--sites", nargs="*", default=None,
        help="site names to sweep "
        "(default: every store/ingest/cluster site)",
    )

    lint = sub.add_parser(
        "lint",
        help="statically analyze workflows (CSM diagnostic codes)",
    )
    lint.add_argument(
        "queries", nargs="*", metavar="QUERY",
        help=f"built-in workflows to lint, from: "
        f"{', '.join(sorted(_QUERIES))} (default: all of them)",
    )
    lint.add_argument(
        "--generated-seeds", type=int, default=0, metavar="N",
        help="also lint N testkit-generated random workflows",
    )
    lint.add_argument(
        "--start", type=int, default=0,
        help="first seed of the generated range",
    )
    lint.add_argument(
        "--seed", type=int, action="append", default=None,
        dest="seeds", metavar="K",
        help="lint exactly the generated workflow with seed K "
        "(repeatable; reproduces a --generated-seeds failure)",
    )
    lint.add_argument(
        "--rows", type=int, default=None,
        help="assumed dataset size for footprint estimates",
    )
    lint.add_argument(
        "--workload", action="store_true",
        help="also run cross-workflow analysis over all linted "
        "workflows together (CSM4xx sharing diagnostics)",
    )
    lint.add_argument(
        "--budget", type=float, default=None, metavar="SECS",
        help="with --workload: also compress the workload to a "
        "representative subset fitting this time budget",
    )
    lint.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit one JSON report object per workflow",
    )
    lint.add_argument(
        "--sarif", default=None, metavar="PATH",
        help="additionally write all findings as a SARIF 2.1.0 log",
    )
    lint.add_argument(
        "--fail-on", choices=("error", "warning", "hint"),
        default="error", dest="fail_on",
        help="lowest severity that makes the exit code non-zero",
    )

    serve = sub.add_parser(
        "serve", help="serve a measure store over JSON/HTTP"
    )
    serve.add_argument("--store", required=True, help="store directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8651, help="0 picks a free port"
    )
    serve.add_argument(
        "--query", choices=sorted(_QUERIES), default=None,
        help="workflow override when the store has none saved",
    )
    serve.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="serve a sharded cluster directory over the asyncio "
        "frontend (0 = legacy threaded single-store server); the "
        "cluster must exist (repro ingest --shards N)",
    )
    serve.add_argument(
        "--mode", choices=("local", "process"), default="local",
        help="cluster execution substrate: in-process shards or one "
        "OS process per shard",
    )
    serve.add_argument(
        "--tenants", action="store_true",
        help="multi-tenant root: tenants register workflows over "
        "POST /workflow and get isolated, admission-controlled "
        "namespaces",
    )
    serve.add_argument(
        "--budget", type=int, default=None, metavar="ENTRIES",
        help="per-tenant footprint budget for admission control",
    )
    serve.add_argument(
        "--allow-pickle-workflows", action="store_true", default=None,
        help="accept base64-pickle bodies on POST /workflow even on a "
        "non-loopback bind (trusted operators only: unpickling "
        "executes arbitrary client code; named 'query' families are "
        "always accepted, and loopback binds accept pickles by "
        "default)",
    )
    serve.add_argument(
        "--access-log", default=None, metavar="PATH",
        help="append one structured JSON line per HTTP request here",
    )
    serve.add_argument(
        "--slow-query-log", default=None, metavar="PATH",
        help="append slow requests (with per-stage timings and engine "
        "profiles) here as JSON lines",
    )
    serve.add_argument(
        "--slow-query-seconds", type=float, default=None,
        metavar="SECONDS",
        help="slow-query threshold (default 0.5, or the "
        "REPRO_SLOW_QUERY_SECONDS environment variable)",
    )

    obs = sub.add_parser(
        "obs",
        help="observability toolkit: request logs, traces, SLO status",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_tail = obs_sub.add_parser(
        "tail",
        help="pretty-print the last entries of a JSON-lines "
        "access/slow-query log",
    )
    obs_tail.add_argument(
        "--log", required=True, help="JSON-lines log file"
    )
    obs_tail.add_argument(
        "--limit", type=int, default=20, help="entries to print"
    )
    obs_tail.add_argument(
        "--json", action="store_true", dest="as_json",
        help="raw JSON lines instead of the formatted view",
    )
    obs_trace = obs_sub.add_parser(
        "trace",
        help="render a stored Chrome trace-event JSON as span trees",
    )
    obs_trace.add_argument(
        "--file", required=True, help="trace-event JSON file"
    )
    obs_trace.add_argument(
        "--trace-id", default=None,
        help="render only this trace (default: every trace in the file)",
    )
    obs_slo = obs_sub.add_parser(
        "slo",
        help="dump a serving front end's SLO burn-rate status "
        "(GET /statusz)",
    )
    obs_slo.add_argument(
        "--url", required=True,
        help="front-end base URL, e.g. http://127.0.0.1:8651",
    )
    obs_slo.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the raw /statusz JSON",
    )

    return parser


def _cmd_generate(args) -> int:
    generator = _GENERATORS[args.kind](args.seed)
    records = generator.records(args.records)
    if args.format == "csv":
        count = write_csv(args.out, generator.schema, records)
    else:
        count = write_flatfile(args.out, generator.schema, records)
    schema_name = (
        "synthetic" if args.kind == "synthetic" else "network"
    )
    logger.info(
        "wrote %d records to %s (%s; use --query families for "
        "schema '%s')",
        count, args.out, args.kind, schema_name,
    )
    return 0


def _write_metrics_json(path: str | None) -> None:
    """Dump the process metrics registry as JSON (``-`` = stdout)."""
    if not path:
        return
    payload = json.dumps(
        get_registry().to_dict(), indent=2, sort_keys=True
    )
    if path == "-":
        print(payload)
    else:
        with open(path, "w") as fh:
            fh.write(payload + "\n")
        logger.info("metrics JSON written to %s", path)


def _cmd_run(args) -> int:
    from repro.storage.sink import (
        DirectorySink,
        MemorySink,
        ObservedSink,
        TeeSink,
    )

    family, build = _QUERIES[args.query]
    schema = _SCHEMAS[family]()
    dataset = FlatFileDataset(args.data, schema)
    workflow = build(schema)
    engine = _ENGINES[args.engine](args)
    if args.out:
        sink = ObservedSink(
            TeeSink(MemorySink(), DirectorySink(args.out))
        )
    else:
        sink = ObservedSink(MemorySink())
    tracer = get_tracer()
    if args.trace:
        set_tracing(True)
        tracer.reset()
    try:
        result = engine.evaluate(dataset, workflow, sink=sink)
    finally:
        if args.trace:
            count = tracer.write(args.trace)
            set_tracing(telemetry_forced())
            logger.info(
                "trace written to %s (%d events)", args.trace, count
            )
    wanted = args.measures or workflow.outputs()
    for name in wanted:
        if name not in result.tables:
            logger.warning("(no measure named %r)", name)
            continue
        print(result[name].pretty(limit=args.limit))
        print()
    stats = result.stats
    print(
        f"engine={stats.engine} rows={stats.rows_scanned} "
        f"scans={stats.scans} sort={stats.sort_seconds:.3f}s "
        f"scan={stats.scan_seconds:.3f}s total={stats.total_seconds:.3f}s "
        f"peak_entries={stats.peak_entries} "
        f"batch={stats.batch_size if stats.batched else 'off'}"
    )
    if args.out:
        logger.info("measure TSVs written to %s/", args.out)
    _write_metrics_json(args.metrics_json)
    return 0


def _cmd_trace(args) -> int:
    """``repro trace run …`` — a run with tracing forced on."""
    if not args.trace:
        args.trace = "trace.json"
    return _cmd_run(args)


def _cmd_profile(args) -> int:
    from repro.obs import format_node_table
    from repro.storage.sink import NullSink

    family, build = _QUERIES[args.query]
    schema = _SCHEMAS[family]()
    dataset = FlatFileDataset(args.data, schema)
    workflow = build(schema)
    engine = SortScanEngine(optimize=True, profile=True)
    result = engine.evaluate(dataset, workflow, sink=NullSink())
    stats = result.stats
    print(
        f"engine={stats.engine} rows={stats.rows_scanned} "
        f"sort={stats.sort_seconds:.3f}s scan={stats.scan_seconds:.3f}s "
        f"total={stats.total_seconds:.3f}s"
    )
    print(format_node_table(stats.nodes))
    return 0


def _cmd_explain(args) -> int:
    family, build = _QUERIES[args.query]
    schema = _SCHEMAS[family]()
    workflow = build(schema)
    if args.show == "algebra":
        from repro.algebra.display import to_formula

        for name in workflow.outputs():
            print(f"{name} = {to_formula(workflow.to_algebra()[name])}")
        return 0
    if args.show == "sql":
        from repro.algebra.sql import to_sql

        exprs = workflow.to_algebra()
        for name in workflow.outputs():
            print(f"-- {name}")
            print(to_sql(exprs[name]))
            print()
        return 0
    if args.show == "dot":
        from repro.workflow.dot import to_dot

        print(to_dot(workflow))
        return 0
    from repro.engine.compile import compile_workflow

    graph = compile_workflow(workflow)
    if args.show == "graph":
        print(graph.describe())
        return 0
    if args.show == "cost":
        from repro.optimizer.cost_model import (
            estimate_plan_cost,
            per_measure_plan_cost,
        )
        from repro.optimizer.greedy import plan_passes

        fused = estimate_plan_cost(
            graph, plan_passes(graph), args.rows
        )
        relational = per_measure_plan_cost(graph, args.rows)
        print(f"assumed dataset size: {args.rows} rows")
        print("-- fused sort/scan plan (Section 6 work units)")
        print(fused.describe())
        print("-- per-measure relational query blocks")
        print(relational.describe())
        ratio = relational.total / max(fused.total, 1)
        print(f"-- fused plan advantage: {ratio:.1f}x")
        return 0
    from repro.engine.plan import build_streaming_plan
    from repro.engine.sort_scan import default_sort_key

    plan = build_streaming_plan(graph, default_sort_key(graph))
    print(plan.explain(graph))
    return 0


def _sql_dataset(args, family: str, schema):
    """The dataset ``repro sql`` runs over.

    An explicit ``--data`` flat file wins; otherwise a small dataset is
    generated in-process with the family's matching generator, bound to
    the *same* schema object the workflow was built from.
    """
    from repro.storage.table import InMemoryDataset

    if args.data:
        return FlatFileDataset(args.data, schema)
    kind = "honeynet" if family == "network" else "synthetic"
    generator = _GENERATORS[kind](args.seed)
    return InMemoryDataset(schema, generator.records(args.records))


def _cmd_sql(args) -> int:
    from repro.algebra.sql import EXECUTABLE_DIALECTS
    from repro.backends import compile_workflow_sql, get_backend

    family, build = _QUERIES[args.query]
    schema = _SCHEMAS[family]()
    workflow = build(schema)
    if args.explain:
        # Explaining never needs the engine itself, so duckdb SQL can
        # be inspected even where duckdb is not importable.
        compiled = compile_workflow_sql(
            workflow, dialect=EXECUTABLE_DIALECTS[args.engine]
        )
        for statement in compiled.create_statements():
            print(f"{statement};")
        for name, (fn, arity) in compiled.functions.items():
            print(f"-- UDF {name}/{arity - 1}+1: combine fn {fn!r}")
        print()
        for query in compiled.queries:
            print(f"-- measure {query.name}")
            print(query.sql)
            print()
        for name, reason in compiled.skipped.items():
            print(f"-- measure {name} SKIPPED: {reason}")
        return 0
    backend = get_backend(args.engine)
    dataset = _sql_dataset(args, family, schema)
    result = backend.evaluate(dataset, workflow)
    for name in workflow.outputs():
        if name in result.skipped:
            print(f"(measure {name!r} skipped: {result.skipped[name]})")
            continue
        print(result.tables[name].pretty(limit=args.limit))
        print()
    load = result.timings.get("load", 0.0)
    query_seconds = sum(
        seconds
        for key, seconds in result.timings.items()
        if key != "load"
    )
    print(
        f"engine={result.engine} rows={len(dataset)} "
        f"measures={len(result.tables)} skipped={len(result.skipped)} "
        f"load={load:.3f}s query={query_seconds:.3f}s"
    )
    return 0


def _cmd_bench(args) -> int:
    payload = None
    if args.figure == "columnar":
        # The columnar figure carries the perf-sheet payload
        # (metrics / definitions / speedups) alongside its rows; the
        # JSON artifact is that payload, not the raw row dump.
        from repro.bench.columnar import columnar_bench, skip_reason

        rows, payload = columnar_bench(scale=args.scale)
        if skip_reason():
            logger.warning("columnar bench skipped: %s", skip_reason())
    elif args.figure == "service":
        # Same payload-carrying pattern for the service-QPS sheet.
        from repro.bench.service import service_bench

        rows, payload = service_bench(scale=args.scale)
    elif args.figure == "sql":
        # And for the SQL engine-vs-engine sheet.
        from repro.bench.sql import sql_bench

        rows, payload = sql_bench(scale=args.scale)
    else:
        rows = ALL_FIGURES[args.figure](scale=args.scale)
    print(format_table(f"{args.figure} (scale={args.scale})", rows))
    if payload is not None and args.figure == "columnar":
        metrics = payload["metrics"]
        geomean = metrics["geometric_mean_speedup"]
        reduction = metrics["total_runtime_reduction"]
        print(
            "headline geomean speedup: "
            + (f"{geomean:.2f}x" if geomean else "n/a")
            + f" (target {metrics['target_geometric_mean_speedup']:.0f}x)"
        )
        print(
            "total runtime reduction: "
            + (f"{reduction:.1%}" if reduction is not None else "n/a")
            + f"; regressions: {metrics['zero_regression_count']}"
        )
    elif payload is not None and args.figure == "service":
        metrics = payload["metrics"]
        scaling = metrics["read_scaling_4x"]
        print(
            "read scaling 1→4 shards: "
            + (f"{scaling:.2f}x" if scaling else "n/a")
            + f" (target {metrics['target_read_scaling_4x']:.1f}x)"
        )
    elif payload is not None and args.figure == "sql":
        metrics = payload["metrics"]
        geomean = metrics["geomean_sqlite_vs_sortscan"]
        print(
            "sqlite vs SortScan geomean: "
            + (f"{geomean:.2f}x" if geomean else "n/a")
            + "; all points verified: "
            + ("yes" if metrics["all_verified"] else "NO")
        )
    if args.json:
        if payload is not None:
            with open(args.json, "w") as fh:
                json.dump(payload, fh, indent=2)
                fh.write("\n")
        else:
            from dataclasses import asdict

            with open(args.json, "w") as fh:
                json.dump([asdict(row) for row in rows], fh, indent=2)
                fh.write("\n")
        logger.info("bench rows written to %s", args.json)
    _write_metrics_json(args.metrics_json)
    return 0


def _store_workflow(store, query_name: str | None):
    """Resolve the workflow a store serves.

    Priority: an explicit ``--query`` override, then the workflow
    pickled at bootstrap time, then the query name recorded in the
    store's metadata.
    """
    from repro.errors import ServiceError
    from repro.service.ingest import load_workflow

    if query_name is None:
        query_name = store.meta().get("query")
        workflow = load_workflow(store)
        if workflow is not None:
            return workflow
    if query_name not in _QUERIES:
        raise ServiceError(
            f"store {store.path!r} has no saved workflow; "
            f"pass --query (one of {sorted(_QUERIES)})"
        )
    family, build = _QUERIES[query_name]
    return build(_SCHEMAS[family]())


def _cluster_workflow(root: str, query_name: str | None):
    """Resolve the workflow an existing cluster serves.

    Mirrors :func:`_store_workflow`: an explicit ``--query`` override
    wins, then the workflow pickled at bootstrap (``None`` lets
    ``open_cluster`` load it), then the query name recorded in the
    cluster manifest's meta — the fallback for query families whose
    workflow is unpicklable.
    """
    import os

    from repro.errors import ServiceError
    from repro.service.cluster import ClusterManifest

    if query_name is None:
        if os.path.exists(os.path.join(root, "workflow.pkl")):
            return None
        query_name = ClusterManifest.load(
            root, cleanup=False
        ).meta.get("query")
    if query_name not in _QUERIES:
        raise ServiceError(
            f"cluster {root!r} has no saved workflow; "
            f"pass --query (one of {sorted(_QUERIES)})"
        )
    family, build = _QUERIES[query_name]
    return build(_SCHEMAS[family]())


def _cmd_ingest(args) -> int:
    from repro.errors import ServiceError
    from repro.service import Ingestor, MeasureStore
    from repro.service.cluster import ClusterManifest

    # A directory that is already a cluster stays one: delta ingests
    # route through the two-phase path without re-passing --shards.
    if args.shards or ClusterManifest.exists(args.store):
        return _cmd_ingest_cluster(args)
    store = MeasureStore(args.store)
    if store.is_empty():
        if args.query is None:
            raise ServiceError(
                "first ingest into an empty store needs --query"
            )
        family, build = _QUERIES[args.query]
        schema = _SCHEMAS[family]()
        workflow = build(schema)
        dataset = FlatFileDataset(args.data, schema)
        ingestor = Ingestor(store, workflow)
        generation = ingestor.bootstrap(
            dataset, meta={"query": args.query, "family": family}
        )
        logger.info(
            "bootstrapped %s at generation %d: %d facts, measures %s",
            args.store, generation, len(dataset),
            ", ".join(store.measures()),
        )
        return 0
    workflow = _store_workflow(store, args.query)
    dataset = FlatFileDataset(args.data, workflow.schema)
    report = Ingestor(store, workflow).ingest(dataset)
    line = (
        f"ingested {report.records} facts into {args.store} "
        f"(generation {report.generation}); "
        f"updated: {', '.join(report.updated_measures) or 'none'}"
    )
    if report.deferred_measures:
        line += (
            f"; deferred (holistic, recomputed on next read): "
            f"{', '.join(report.deferred_measures)}"
        )
    logger.info("%s", line)
    return 0


def _cmd_ingest_cluster(args) -> int:
    """``repro ingest --shards N`` — bootstrap or feed a cluster."""
    from repro.errors import ServiceError
    from repro.service.cluster import (
        ClusterManifest,
        bootstrap_cluster,
        open_cluster,
    )

    if ClusterManifest.exists(args.store):
        cluster = open_cluster(
            args.store, _cluster_workflow(args.store, args.query)
        )
        if args.shards and cluster.num_shards != args.shards:
            logger.warning(
                "cluster at %s has %d shards; --shards %d ignored "
                "(the shard map is fixed at bootstrap)",
                args.store, cluster.num_shards, args.shards,
            )
        records = list(
            FlatFileDataset(
                args.data, cluster.workflow.schema
            ).scan()
        )
        report = cluster.ingest(records)
        cluster.close()
        logger.info(
            "ingested %d facts into cluster %s (epoch %d, shards %s); "
            "updated: %s",
            report["records"], args.store, report["epoch"],
            report["shards"],
            ", ".join(report["updated_measures"]) or "none",
        )
        return 0
    if args.query is None:
        raise ServiceError(
            "first ingest into an empty cluster needs --query"
        )
    family, build = _QUERIES[args.query]
    schema = _SCHEMAS[family]()
    workflow = build(schema)
    records = list(FlatFileDataset(args.data, schema).scan())
    cluster = bootstrap_cluster(
        args.store, workflow, records, num_shards=args.shards,
        meta={"query": args.query, "family": family},
    )
    logger.info(
        "bootstrapped cluster %s: %d shards, %d facts, measures %s "
        "(map: dim=%d level=%d cuts=%s)",
        args.store, cluster.num_shards, len(records),
        ", ".join(sorted(cluster.graph.outputs)),
        cluster.shard_map.dim, cluster.shard_map.level,
        list(cluster.shard_map.cuts),
    )
    cluster.close()
    return 0


def _cmd_query(args) -> int:
    import json as _json

    from repro.service import MeasureService, MeasureStore
    from repro.service.cluster import ClusterManifest, open_cluster

    # A cluster directory serves the same read surface (point/range/
    # table/stats/measures) through the shard router.
    if ClusterManifest.exists(args.store):
        service = open_cluster(
            args.store, _cluster_workflow(args.store, None)
        )
    else:
        store = MeasureStore(args.store)
        service = MeasureService(store, _store_workflow(store, None))
    if args.stats:
        print(_json.dumps(service.stats(), indent=2, sort_keys=True))
        return 0
    if args.measure is None:
        for entry in service.measures():
            dirty = " (dirty)" if entry["dirty"] else ""
            rows = entry.get("rows", "?")
            print(
                f"{entry['measure']}: levels={entry['levels']} "
                f"rows={rows}{dirty}"
            )
        return 0
    if args.key is not None:
        key = tuple(int(part) for part in args.key.split(","))
        print(service.point(args.measure, key))
        return 0
    if args.prefix is not None:
        prefix = tuple(
            int(part) for part in args.prefix.split(",") if part
        )
        rows = service.range(args.measure, prefix)
        for key, value in rows[: args.limit]:
            print(f"{','.join(str(k) for k in key)}\t{value}")
        if len(rows) > args.limit:
            print(f"... {len(rows) - args.limit} more")
        return 0
    print(service.table(args.measure).pretty(limit=args.limit))
    return 0


def _cmd_faults(args) -> int:
    """``repro faults list|run|sweep`` — the correctness harness."""
    if args.faults_command == "list":
        from repro.testkit.failpoints import (
            is_armed,
            load_instrumented_sites,
            registered,
        )

        load_instrumented_sites()
        sites = registered(args.scope)
        if not sites:
            print(f"(no registered sites for scope {args.scope!r})")
            return 0
        for site in sites:
            armed = " [armed]" if is_armed(site.name) else ""
            print(f"{site.name:24s} {site.scope:8s} {site.doc}{armed}")
        return 0

    if args.faults_command == "run":
        from repro.testkit.oracles import FAMILIES, run_batch

        families = args.families or list(FAMILIES)
        seeds = range(args.start, args.start + args.seeds)

        def on_seed(seed, failures):
            logger.info(
                "seed %d: %s", seed,
                "ok" if not failures else f"{len(failures)} FAILURES",
            )

        failures = run_batch(
            seeds, families=families, on_seed=on_seed
        )
        for failure in failures:
            print(failure.describe())
        print(
            f"checked {args.seeds} seeds x {len(families)} families "
            f"({', '.join(families)}): "
            f"{len(failures)} failure(s)"
        )
        return 1 if failures else 0

    import tempfile

    from repro.obs import get_registry
    from repro.obs.metrics import FAILPOINT_TRIGGERS
    from repro.testkit.sweeper import sweep

    with tempfile.TemporaryDirectory(prefix="repro-sweep-") as work_dir:
        results = sweep(
            work_dir,
            seed=args.seed,
            action=args.action,
            sites=args.sites,
            on_result=lambda result: print(result.describe()),
        )
    failed = [result for result in results if not result.ok]
    triggers = get_registry().to_dict().get(FAILPOINT_TRIGGERS)
    if triggers:
        # Parent-process trigger counts; the children's counters died
        # with them (that is the point), so this reflects local drills.
        logger.info("fail-point triggers (this process): %s", triggers)
    print(
        f"swept {len(results)} sites (action={args.action}, "
        f"seed={args.seed}): "
        f"{'all recovered' if not failed else f'{len(failed)} FAILED'}"
    )
    return 1 if failed else 0


def _cmd_lint(args) -> int:
    """``repro lint`` — static analysis of workflows.

    Exit code 0 when every linted workflow is below the ``--fail-on``
    severity, 1 otherwise (2 stays reserved for operational errors).
    With ``--workload``, cross-workflow CSM4xx findings count toward
    the threshold too.
    """
    from repro.analysis import Severity, analyze

    if args.budget is not None and not args.workload:
        raise ReproError("--budget requires --workload")

    # `repro lint --seed K` alone reproduces exactly the generated
    # workflow that failed a --generated-seeds run, nothing else.
    only_generated = bool(args.seeds) and not (
        args.queries or args.generated_seeds
    )
    names = [] if only_generated else (args.queries or sorted(_QUERIES))
    # One schema instance per family, shared by every workflow built
    # from it — workload fingerprints are structural, but sharing the
    # instance keeps single-workflow behaviour identical too.
    schemas: dict[str, object] = {}
    targets = []
    for name in names:
        try:
            schema_name, builder = _QUERIES[name]
        except KeyError:
            raise ReproError(
                f"unknown query {name!r}; choose from "
                f"{', '.join(sorted(_QUERIES))}"
            ) from None
        if schema_name not in schemas:
            schemas[schema_name] = _SCHEMAS[schema_name]()
        targets.append((name, builder(schemas[schema_name])))
    gen_seeds = list(
        range(args.start, args.start + args.generated_seeds)
    )
    gen_seeds.extend(args.seeds or ())
    if gen_seeds:
        from repro.testkit.generator import RandomCase

        gen_schema = synthetic_schema(
            num_dimensions=3, levels=3, fanout=4
        )
        # Each seed gets its own independent RandomCase stream, so
        # `generated-K` is the same workflow whether it came from a
        # range or from a single `--seed K` repro run.
        for seed in gen_seeds:
            case = RandomCase(seed, gen_schema)
            targets.append((f"generated-{seed}", case.workflow))

    threshold = Severity(args.fail_on).rank
    if args.workload:
        return _lint_workload(args, targets, threshold)

    failed = 0
    all_diagnostics = []
    for label, workflow in targets:
        report = analyze(workflow, dataset_size=args.rows)
        all_diagnostics.extend(report.diagnostics)
        bad = any(
            d.severity.rank <= threshold for d in report.diagnostics
        )
        if bad:
            failed += 1
        if args.as_json:
            payload = report.to_dict()
            payload["label"] = label
            print(json.dumps(payload))
        else:
            print(report.format())
    if not args.as_json:
        print(
            f"linted {len(targets)} workflow(s): "
            f"{failed} at or above {args.fail_on}"
        )
    if args.sarif:
        _write_sarif(args.sarif, all_diagnostics)
    return 1 if failed else 0


def _lint_workload(args, targets, threshold: int) -> int:
    """The ``repro lint --workload`` arm: cross-workflow analysis."""
    from repro.analysis import analyze_workload, compress_workload
    from repro.analysis.workload import WORK_UNITS_PER_SECOND

    workflows = dict(targets)
    report = analyze_workload(workflows, dataset_size=args.rows)
    compression = None
    if args.budget is not None:
        compression = compress_workload(
            workflows,
            args.budget * WORK_UNITS_PER_SECOND,
            dataset_size=args.rows,
        )
    all_diagnostics = report.all_diagnostics()
    bad = any(d.severity.rank <= threshold for d in all_diagnostics)
    if args.as_json:
        payload = report.to_dict()
        if compression is not None:
            payload["compression"] = compression.to_dict()
        print(json.dumps(payload))
    else:
        for name in report.workflows:
            print(report.reports[name].format())
        print(report.format())
        if compression is not None:
            kept = ", ".join(compression.selected) or "(none)"
            print(
                f"compressed workload: kept {kept} "
                f"({compression.coverage:.0%} fingerprint coverage, "
                f"~{compression.selected_cost:.0f} of "
                f"~{compression.workload_cost:.0f} work units)"
            )
        print(
            f"linted workload of {len(targets)} workflow(s): "
            f"{'findings' if bad else 'nothing'} at or above "
            f"{args.fail_on}"
        )
    if args.sarif:
        _write_sarif(args.sarif, all_diagnostics)
    return 1 if bad else 0


def _write_sarif(path: str, diagnostics) -> int:
    """Write diagnostics to ``path`` as a SARIF 2.1.0 log."""
    from repro.analysis import canonical_diagnostics, diagnostics_to_sarif

    payload = diagnostics_to_sarif(canonical_diagnostics(diagnostics))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return 0


def _obs_tail(args) -> int:
    """``repro obs tail`` — the last N entries of a JSON-lines log."""
    with open(args.log, encoding="utf-8") as fh:
        lines = [line for line in fh if line.strip()]
    for line in lines[-args.limit:]:
        entry = json.loads(line)
        if args.as_json:
            print(json.dumps(entry, separators=(",", ":")))
            continue
        parts = [
            f"{entry.get('time', 0):.3f}",
            f"{entry.get('status', '?')}",
            f"{entry.get('method', '?')} {entry.get('route', '?')}",
            f"{entry.get('duration_ms', 0):.1f}ms",
        ]
        if entry.get("tenant", "-") != "-":
            parts.append(f"tenant={entry['tenant']}")
        if entry.get("fanout"):
            parts.append(f"fanout={entry['fanout']}")
        if entry.get("queue_wait_ms"):
            parts.append(f"queue={entry['queue_wait_ms']:.1f}ms")
        if entry.get("trace_id"):
            parts.append(f"trace={entry['trace_id']}")
        if entry.get("error"):
            parts.append(f"error={entry['error']!r}")
        print("  ".join(parts))
        for stage in entry.get("stages", []):
            print(
                f"    {stage.get('stage', '?'):32s} "
                f"{stage.get('ms', 0):9.3f} ms  "
                f"pid={stage.get('pid', '?')}"
            )
    return 0


def _obs_trace(args) -> int:
    """``repro obs trace`` — span trees of a stored trace JSON."""
    from repro.obs import render_span_tree
    from repro.obs.trace import events_for_trace

    with open(args.file, encoding="utf-8") as fh:
        payload = json.load(fh)
    events = (
        payload["traceEvents"]
        if isinstance(payload, dict)
        else payload
    )
    if args.trace_id is not None:
        trace_ids = [args.trace_id]
    else:
        seen: dict[str, None] = {}
        for event in events:
            trace_id = (event.get("args") or {}).get("trace_id")
            if trace_id:
                seen.setdefault(trace_id)
        trace_ids = list(seen)
    if not trace_ids:
        print("(no trace-stamped events in file)")
        return 1
    for trace_id in trace_ids:
        subset = events_for_trace(events, trace_id)
        if not subset:
            print(f"trace {trace_id}: (no events)")
            continue
        print(f"trace {trace_id} ({len(subset)} events)")
        for line in render_span_tree(subset):
            print(f"  {line}")
    return 0


def _obs_slo(args) -> int:
    """``repro obs slo`` — a front end's burn rates, via /statusz."""
    import urllib.request

    url = args.url.rstrip("/") + "/statusz"
    with urllib.request.urlopen(url, timeout=10) as response:
        status = json.loads(response.read().decode("utf-8"))
    if args.as_json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    slo = status.get("slo", {})
    windows = slo.get("windows", [])
    print(
        f"{status.get('service', '?')} up "
        f"{status.get('uptime_seconds', 0):.0f}s  "
        f"tracing={'on' if status.get('tracing') else 'off'}"
    )
    for objective in slo.get("objectives", []):
        line = (
            f"objective {objective['name']}: kind={objective['kind']} "
            f"target={objective['target']}"
        )
        if "threshold_seconds" in objective:
            line += f" threshold={objective['threshold_seconds']}s"
        print(line)
    burn = slo.get("burn_rates", {})
    if not burn:
        print("(no traffic recorded yet)")
        return 0
    header = f"{'tenant':16s} {'objective':20s} " + " ".join(
        f"{window:>8s}" for window in windows
    )
    print(header)
    for tenant, objectives in sorted(burn.items()):
        for name, rates in sorted(objectives.items()):
            cells = " ".join(
                f"{rates.get(window, 0.0):8.3f}" for window in windows
            )
            print(f"{tenant:16s} {name:20s} {cells}")
    return 0


def _cmd_obs(args) -> int:
    if args.obs_command == "tail":
        return _obs_tail(args)
    if args.obs_command == "trace":
        return _obs_trace(args)
    return _obs_slo(args)


def _cmd_serve(args) -> int:
    from repro.service import MeasureService, MeasureStore, make_server
    from repro.service.cluster import ClusterManifest
    from repro.service.server import shutdown_gracefully

    # A directory that is already a cluster is served by the shard
    # router's async frontend without re-passing --shards.
    if (
        args.shards
        or args.tenants
        or ClusterManifest.exists(args.store)
    ):
        return _cmd_serve_cluster(args)
    store = MeasureStore(args.store)
    service = MeasureService(store, _store_workflow(store, args.query))
    server = make_server(
        service,
        host=args.host,
        port=args.port,
        allow_pickle_workflows=args.allow_pickle_workflows,
        access_log_path=args.access_log,
        slow_query_path=args.slow_query_log,
        slow_query_seconds=args.slow_query_seconds,
    )
    host, port = server.server_address[:2]
    logger.info(
        "serving %s on http://%s:%s (routes: /measures /point /range "
        "/table /stats /metrics /healthz /statusz, POST /ingest "
        "/workflow)",
        args.store, host, port,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        logger.info("interrupt: draining in-flight requests")
    finally:
        shutdown_gracefully(server)
    return 0


def _cmd_serve_cluster(args) -> int:
    """``repro serve --shards N [--tenants]`` — the asyncio frontend."""
    import asyncio

    from repro.service.cluster import (
        ClusterFrontend,
        TenantManager,
        open_cluster,
    )

    if args.tenants:
        backend = TenantManager(
            args.store,
            num_shards=args.shards or 1,
            mode=args.mode,
            **(
                {"default_budget": args.budget}
                if args.budget is not None
                else {}
            ),
        )
        what = f"tenant root {args.store}"
    else:
        backend = open_cluster(
            args.store,
            _cluster_workflow(args.store, args.query),
            mode=args.mode,
        )
        what = (
            f"cluster {args.store} "
            f"({backend.num_shards} shards, {args.mode} mode)"
        )

    async def run() -> None:
        frontend = ClusterFrontend(
            backend,
            host=args.host,
            port=args.port,
            allow_pickle_workflows=args.allow_pickle_workflows,
            access_log_path=args.access_log,
            slow_query_path=args.slow_query_log,
            slow_query_seconds=args.slow_query_seconds,
        )
        await frontend.start()
        logger.info(
            "serving %s on http://%s:%s (async; routes: /measures "
            "/point /range /table /rollup /stats /metrics /healthz "
            "/statusz, POST /ingest /workflow)",
            what, frontend.host, frontend.port,
        )
        try:
            await frontend.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            logger.info("interrupt: draining and flushing")
            await frontend.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    _setup_logging(args.verbose - args.quiet)
    handlers = {
        "generate": _cmd_generate,
        "run": _cmd_run,
        "trace": _cmd_trace,
        "profile": _cmd_profile,
        "explain": _cmd_explain,
        "sql": _cmd_sql,
        "bench": _cmd_bench,
        "ingest": _cmd_ingest,
        "query": _cmd_query,
        "faults": _cmd_faults,
        "lint": _cmd_lint,
        "serve": _cmd_serve,
        "obs": _cmd_obs,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        logger.error("error: %s", exc)
        return 2
    except OSError as exc:
        logger.error("error: %s", exc)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
