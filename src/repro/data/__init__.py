"""Dataset generators for the paper's experiments.

Real substitutes for data we cannot ship (see DESIGN.md):

- :mod:`repro.data.synthetic` — the Section 7.1 synthetic workload
  (uniform values, shared 4-level hierarchy, 10-way fan-out);
- :mod:`repro.data.netlog` — Dshield-style network intrusion logs with
  realistic skew (heavy-hitter sources, port concentration, diurnal
  time-of-day cycles);
- :mod:`repro.data.honeynet` — LBL-HoneyNet-style background radiation
  with injected worm-escalation and multi-recon episodes, exercising
  the Section 7.2 analysis queries.
"""

from repro.data.synthetic import SyntheticGenerator, synthetic_dataset
from repro.data.netlog import NetworkLogGenerator
from repro.data.honeynet import HoneynetGenerator, honeynet_dataset

__all__ = [
    "SyntheticGenerator",
    "synthetic_dataset",
    "NetworkLogGenerator",
    "HoneynetGenerator",
    "honeynet_dataset",
]
