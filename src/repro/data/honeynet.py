"""LBL-HoneyNet-style dataset with injected attack episodes.

The paper's Section 7.2 runs two analysis queries over an 8 GB honeynet
log: *network escalation detection* (attack volume grows significantly
from one time period to the next) and *multi-recon detection* (many
unique sources target one destination network in a period).  That log
is not distributable, so this generator produces the closest synthetic
equivalent: Internet background radiation (per Pang et al., the
monitor the paper cites) plus explicitly injected episodes of both
kinds, so the detection queries have true positives to find and their
code paths are genuinely exercised.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Iterator

from repro.data.netlog import NetworkLogGenerator
from repro.schema.dataset_schema import Record
from repro.storage.table import InMemoryDataset

_SECONDS_PER_HOUR = 3600


@dataclass(frozen=True)
class EscalationEpisode:
    """A worm-style outbreak: volume doubles hour over hour."""

    start_hour: int
    duration_hours: int
    target_subnet: int  # /24 prefix (24-bit integer)
    port: int
    initial_packets: int
    growth: float = 2.0


@dataclass(frozen=True)
class ReconEpisode:
    """A coordinated recon: many unique sources probe one /24."""

    start_hour: int
    duration_hours: int
    target_subnet: int
    num_sources: int
    packets_per_source: int = 3


class HoneynetGenerator:
    """Background radiation plus injected attack episodes."""

    def __init__(self, seed: int = 0, hours: int = 48) -> None:
        self._background = NetworkLogGenerator(seed=seed)
        self.schema = self._background.schema
        self.start_time = self._background.start_time
        self.hours = hours
        self.seed = seed
        self.escalations: list[EscalationEpisode] = []
        self.recons: list[ReconEpisode] = []

    # -- episode wiring ------------------------------------------------

    def add_escalation(self, episode: EscalationEpisode) -> None:
        self.escalations.append(episode)

    def add_recon(self, episode: ReconEpisode) -> None:
        self.recons.append(episode)

    def with_default_episodes(self) -> "HoneynetGenerator":
        """Inject one escalation and one recon, mid-trace."""
        monitored = (192 << 16) | (168 << 8)  # /24 prefixes in 192.168/16
        self.add_escalation(
            EscalationEpisode(
                start_hour=self.hours // 3,
                duration_hours=6,
                target_subnet=monitored | 7,
                port=445,
                initial_packets=40,
            )
        )
        self.add_recon(
            ReconEpisode(
                start_hour=(2 * self.hours) // 3,
                duration_hours=3,
                target_subnet=monitored | 21,
                num_sources=120,
            )
        )
        return self

    # -- record generation ------------------------------------------------

    def _escalation_records(
        self, episode: EscalationEpisode, rng: random.Random
    ) -> Iterator[Record]:
        volume = float(episode.initial_packets)
        for offset in range(episode.duration_hours):
            hour = episode.start_hour + offset
            if hour >= self.hours:
                break
            base = self.start_time + hour * _SECONDS_PER_HOUR
            # The worm spreads from a growing set of infected hosts.
            infected = max(2, int(volume) // 10)
            sources = [
                (10 << 24) | rng.randrange(1 << 24)
                for __ in range(infected)
            ]
            for __ in range(int(volume)):
                yield (
                    base + rng.randrange(_SECONDS_PER_HOUR),
                    rng.choice(sources),
                    (episode.target_subnet << 8) | rng.randrange(256),
                    episode.port,
                )
            volume *= episode.growth

    def _recon_records(
        self, episode: ReconEpisode, rng: random.Random
    ) -> Iterator[Record]:
        sources = [
            (10 << 24) | rng.randrange(1 << 24)
            for __ in range(episode.num_sources)
        ]
        for offset in range(episode.duration_hours):
            hour = episode.start_hour + offset
            if hour >= self.hours:
                break
            base = self.start_time + hour * _SECONDS_PER_HOUR
            for source in sources:
                for __ in range(episode.packets_per_source):
                    yield (
                        base + rng.randrange(_SECONDS_PER_HOUR),
                        source,
                        (episode.target_subnet << 8) | rng.randrange(256),
                        rng.choice((445, 135, 80, 1433)),
                    )

    def records(self, background_count: int) -> Iterator[Record]:
        """Background packets plus every injected episode's packets."""
        yield from self._background.records(background_count, self.hours)
        rng = random.Random(self.seed + 99)
        for episode in self.escalations:
            yield from self._escalation_records(episode, rng)
        for episode in self.recons:
            yield from self._recon_records(episode, rng)

    def dataset(self, background_count: int) -> InMemoryDataset:
        return InMemoryDataset(self.schema, self.records(background_count))


def honeynet_dataset(
    background_count: int = 20_000, seed: int = 0, hours: int = 48
) -> InMemoryDataset:
    """The default honeynet workload with both episode types injected."""
    generator = HoneynetGenerator(seed=seed, hours=hours)
    return generator.with_default_episodes().dataset(background_count)
