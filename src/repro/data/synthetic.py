"""The synthetic workload of Section 7.1.

"It contains four dimension attributes that share the same domain
hierarchy.  For each attribute, there are four domains in the domain
hierarchy (D1 <_D D2 <_D D3 <_D D4 = D_ALL).  Any value in any domain
will cover 10 distinct values of its sub-domains.  [...]  The values of
each attribute were generated independently based on uniform
distribution."

:class:`SyntheticGenerator` reproduces exactly that: ``levels=3``
non-ALL domains, fan-out 10, independent uniform values, plus one
uniform ``v`` measure so SUM/AVG-style aggregates have something to
chew on.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.errors import SchemaError
from repro.schema.dataset_schema import (
    DatasetSchema,
    Record,
    synthetic_schema,
)
from repro.storage.table import InMemoryDataset


class SyntheticGenerator:
    """Seeded generator of the paper's uniform synthetic records."""

    def __init__(
        self,
        num_dimensions: int = 4,
        levels: int = 3,
        fanout: int = 10,
        seed: int = 0,
    ) -> None:
        if num_dimensions < 1:
            raise SchemaError("need at least one dimension")
        self.schema: DatasetSchema = synthetic_schema(
            num_dimensions=num_dimensions, levels=levels, fanout=fanout
        )
        self._base_cardinality = fanout**levels
        self.seed = seed

    def records(self, count: int) -> Iterator[Record]:
        """Yield ``count`` records; same seed, same records."""
        rng = random.Random(self.seed)
        cardinality = self._base_cardinality
        num_dims = self.schema.num_dimensions
        for __ in range(count):
            dims = tuple(
                rng.randrange(cardinality) for ___ in range(num_dims)
            )
            yield dims + (rng.random(),)

    def dataset(self, count: int) -> InMemoryDataset:
        """An in-memory dataset of ``count`` records."""
        return InMemoryDataset(self.schema, self.records(count))


def synthetic_dataset(
    count: int,
    num_dimensions: int = 4,
    levels: int = 3,
    fanout: int = 10,
    seed: int = 0,
) -> InMemoryDataset:
    """One-call helper: the paper's synthetic dataset at any size."""
    generator = SyntheticGenerator(
        num_dimensions=num_dimensions,
        levels=levels,
        fanout=fanout,
        seed=seed,
    )
    return generator.dataset(count)
