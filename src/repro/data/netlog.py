"""Dshield-style network intrusion log generator.

A substitute for the Dshield.org feed of the paper's running example
(Table 1: Timestamp, Source, Target, TargetPort).  The generator
reproduces the statistical structure the paper's queries depend on:

- **heavy-hitter sources**: a small population of scanners produces
  most packets (approximated Zipf over a source pool);
- **port concentration**: most packets target a handful of well-known
  ports (135/445/80/22/1433...), with a uniform scatter elsewhere;
- **diurnal cycles**: hourly volume follows a day/night sine-like
  profile, so time-window queries see realistic variation;
- **target locality**: targets cluster into a few monitored /16
  networks, so /24-level grouping is meaningful.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterator

from repro.schema.dataset_schema import (
    DatasetSchema,
    Record,
    network_log_schema,
)
from repro.storage.table import InMemoryDataset

#: Ports that dominate background attack traffic, with weights.
_HOT_PORTS = (
    (445, 30),  # SMB worms
    (135, 20),  # RPC
    (80, 12),
    (22, 8),
    (1433, 8),  # MSSQL
    (3389, 6),
    (23, 6),
    (25, 4),
)

_SECONDS_PER_HOUR = 3600


class NetworkLogGenerator:
    """Seeded generator of Dshield-like attack-packet records."""

    def __init__(
        self,
        start_time: int = 3600 * 24 * 10,
        num_sources: int = 2000,
        num_target_subnets: int = 64,
        seed: int = 0,
    ) -> None:
        self.schema: DatasetSchema = network_log_schema(span_years=1)
        self.start_time = start_time
        self.seed = seed
        rng = random.Random(seed)
        # Source pool with Zipf-ish weights: source i has weight 1/(i+1).
        self._sources = [
            (10 << 24) | rng.randrange(1 << 24) for __ in range(num_sources)
        ]
        cum = []
        acc_weight = 0.0
        for i in range(num_sources):
            acc_weight += 1.0 / (i + 1)
            cum.append(acc_weight)
        self._source_cum_weights = cum
        # Monitored targets live in a few /16s; /24 and host vary.
        self._target_nets = [
            (192 << 24) | (168 << 16),
            (172 << 24) | (16 << 16),
            (128 << 24) | (105 << 16),
        ]
        self._num_target_subnets = num_target_subnets
        hot_total = sum(weight for __, weight in _HOT_PORTS)
        self._hot_ports = [port for port, __ in _HOT_PORTS]
        self._hot_cum = []
        acc = 0
        for __, weight in _HOT_PORTS:
            acc += weight / hot_total
            self._hot_cum.append(acc)

    def _diurnal_rate(self, hour_of_day: int) -> float:
        """Relative volume by hour of day (peaks mid-day, trough ~4am)."""
        return 1.0 + 0.6 * math.sin((hour_of_day - 4) * math.pi / 12.0)

    def _pick_port(self, rng: random.Random) -> int:
        if rng.random() < 0.85:
            u = rng.random()
            for port, threshold in zip(self._hot_ports, self._hot_cum):
                if u <= threshold:
                    return port
            return self._hot_ports[-1]
        return rng.randrange(1024, 65536)

    def _pick_target(self, rng: random.Random) -> int:
        net = rng.choice(self._target_nets)
        subnet = rng.randrange(self._num_target_subnets)
        host = rng.randrange(256)
        return net | (subnet << 8) | host

    def records(self, count: int, hours: int = 48) -> Iterator[Record]:
        """Yield ``count`` packets spread over ``hours`` hours."""
        rng = random.Random(self.seed + 1)
        rates = [
            self._diurnal_rate((self.start_time // 3600 + h) % 24)
            for h in range(hours)
        ]
        total_rate = sum(rates)
        produced = 0
        for hour_index, rate in enumerate(rates):
            in_hour = round(count * rate / total_rate)
            if hour_index == hours - 1:
                in_hour = count - produced
            base = self.start_time + hour_index * _SECONDS_PER_HOUR
            for __ in range(in_hour):
                timestamp = base + rng.randrange(_SECONDS_PER_HOUR)
                source = rng.choices(
                    self._sources, cum_weights=self._source_cum_weights
                )[0]
                yield (
                    timestamp,
                    source,
                    self._pick_target(rng),
                    self._pick_port(rng),
                )
            produced += in_hour

    def dataset(self, count: int, hours: int = 48) -> InMemoryDataset:
        return InMemoryDataset(self.schema, self.records(count, hours))
