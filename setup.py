"""Setuptools shim.

Kept so that ``pip install -e .`` works on environments without the
``wheel`` package (offline boxes): ``python setup.py develop`` only
needs setuptools.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
