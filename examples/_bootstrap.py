"""Make the in-repo ``repro`` package importable without installation.

Every example imports this module first.  When ``repro`` is already
installed (or ``PYTHONPATH`` points at ``src/``) this is a no-op;
otherwise the repository's ``src/`` directory is prepended to
``sys.path`` so the examples run from a plain checkout, from any
working directory:

    python examples/quickstart.py
"""

import os
import sys


def ensure_repro_importable() -> None:
    try:
        import repro  # noqa: F401
    except ModuleNotFoundError:
        src = os.path.abspath(
            os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         os.pardir, "src")
        )
        if src not in sys.path:
            sys.path.insert(0, src)


ensure_repro_importable()
