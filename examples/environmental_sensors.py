"""Environmental monitoring — the paper's other motivating domain.

Builds a sensor-network dataset (aerosol concentration readings from
stations organized in a *categorical* site hierarchy: station < region
< country) and answers a composite-measure question the paper's intro
motivates: *which stations report concentrations that are abnormal
both against their own recent history and against their region?*

- hourly mean concentration per station (basic measure);
- each station's trailing 6-hour baseline (backward sibling window);
- the regional hourly mean (child/parent roll-up);
- the regional median pushed back down to stations (parent/child
  broadcast) and combined into a deviation score;
- an alert filter keeping stations at least 2x above both their own
  baseline and their region.

Run:  python examples/environmental_sensors.py
"""

import math
import random

import _bootstrap  # noqa: F401  (makes the in-repo package importable)

from repro import (
    AggregationWorkflow,
    CategoricalHierarchy,
    DatasetSchema,
    Dimension,
    Field,
    InMemoryDataset,
    Sibling,
    SortScanEngine,
    TimeHierarchy,
)

STATIONS = [
    # (station, region, country)
    ("madison-north", "midwest", "usa"),
    ("madison-south", "midwest", "usa"),
    ("chicago-lake", "midwest", "usa"),
    ("denver-east", "mountain", "usa"),
    ("boulder-hill", "mountain", "usa"),
    ("salt-lake-west", "mountain", "usa"),
    ("seoul-han", "korea-capital", "korea"),
    ("incheon-port", "korea-capital", "korea"),
]

FAULTY_STATION = "denver-east"
FAULT_START_HOUR = 30
HOURS = 48


def build_schema():
    sites = CategoricalHierarchy(
        ["Station", "Region", "Country"], STATIONS
    )
    return (
        DatasetSchema(
            [
                Dimension("Time", TimeHierarchy(span_years=1), "t"),
                Dimension("Site", sites, "s"),
            ],
            measures=("concentration",),
        ),
        sites,
    )


def generate_readings(schema, sites, seed=3):
    """Diurnal baseline + noise, with a fault injected at one station."""
    rng = random.Random(seed)
    records = []
    for hour in range(HOURS):
        diurnal = 20 + 8 * math.sin(hour * math.pi / 12)
        for station, __, ___ in STATIONS:
            for __ in range(6):  # six readings per hour
                level = diurnal + rng.gauss(0, 2)
                if station == FAULTY_STATION and hour >= FAULT_START_HOUR:
                    level *= 4  # stuck calibration / local event
                timestamp = hour * 3600 + rng.randrange(3600)
                records.append(
                    (timestamp, sites.encode(station), max(0.0, level))
                )
    return InMemoryDataset(schema, records)


def build_workflow(schema):
    wf = AggregationWorkflow(schema, name="sensor-anomalies")
    wf.basic(
        "stationMean",
        {"t": "Hour", "s": "Station"},
        agg=("avg", "concentration"),
    )
    wf.match(
        "baseline",
        {"t": "Hour", "s": "Station"},
        source="stationMean",
        cond=Sibling({"t": (6, -1)}),
        agg="avg",
        keys="stationMean",
    )
    # A *median* keeps the regional context robust against the very
    # outlier we are hunting (holistic aggregates work everywhere a
    # hash entry lives long enough — Section 5.1).
    wf.rollup(
        "regionMean",
        {"t": "Hour", "s": "Region"},
        source="stationMean",
        agg="median",
    )
    wf.broadcast(
        "regionContext",
        {"t": "Hour", "s": "Station"},
        source="regionMean",
        keys="stationMean",
        agg="max",
    )

    def anomaly_score(current, baseline, region):
        if current is None or baseline in (None, 0) or region in (None, 0):
            return None
        return min(current / baseline, current / region)

    wf.combine(
        "anomaly",
        ["stationMean", "baseline", "regionContext"],
        fn=anomaly_score,
        fn_name="min(vs-self, vs-region)",
        handles_null=True,
    )
    wf.filter("alerts", source="anomaly", where=Field("M") >= 2.0)
    return wf


def main() -> None:
    schema, sites = build_schema()
    dataset = generate_readings(schema, sites)
    wf = build_workflow(schema)
    result = SortScanEngine(optimize=True).evaluate(dataset, wf)

    time_h = schema.dimensions[0].hierarchy
    print(f"readings: {len(dataset)}; stations: {len(STATIONS)}")
    print(f"fault injected: {FAULTY_STATION} from hour "
          f"{FAULT_START_HOUR}\n")
    print("=== station anomaly alerts (score = min(vs-self, vs-region)) ===")
    for key, score in result["alerts"].items():
        hour = time_h.format_value(key[0], 1)
        station = sites.decode(key[1], 0)
        print(f"  {hour}  {station:<14} x{score:.1f}")
    flagged = {sites.decode(key[1], 0) for key in result["alerts"].rows}
    print(f"\nflagged stations: {sorted(flagged)}")
    assert flagged == {FAULTY_STATION}, "detector should isolate the fault"
    print("fault isolated correctly.")


if __name__ == "__main__":
    main()
