"""Render an aggregation workflow as the paper's pictorial diagrams.

Builds the fused network-analysis workflow, prints its AW-RA algebra
(Theorem 2's translation), the compiled streaming plan, and writes
GraphViz DOT source to ``combined_workflow.dot`` — render it with
``dot -Tpng combined_workflow.dot -o combined_workflow.png``.

Run:  python examples/workflow_visualization.py
"""

import _bootstrap  # noqa: F401  (makes the in-repo package importable)

from repro import compile_workflow, to_dot, to_formula
from repro.cube.slack import compute_order_slack  # noqa: F401 (see docs)
from repro.engine.sort_scan import default_sort_key
from repro.engine.watermark import build_node_specs
from repro.queries import combined_workflow
from repro.schema import network_log_schema


def main() -> None:
    schema = network_log_schema()
    wf = combined_workflow(schema)

    print("=== AW-RA algebra (Theorem 2 translation) ===")
    exprs = wf.to_algebra()
    for name in wf.outputs():
        print(f"{name} = {to_formula(exprs[name])}")

    print()
    print("=== compiled evaluation graph ===")
    graph = compile_workflow(wf)
    print(graph.describe())

    print()
    print("=== streaming plan (orders from Table 6 machinery) ===")
    key = default_sort_key(graph)
    print(f"sort key: {key!r}")
    for name, specs in build_node_specs(graph, key).items():
        rendered = "; ".join(repr(spec) for spec in specs)
        print(f"  {name}: {rendered}")

    path = "combined_workflow.dot"
    with open(path, "w") as fh:
        fh.write(to_dot(wf))
    print(f"\nDOT source written to {path}")


if __name__ == "__main__":
    main()
