"""Network attack detection: the paper's Section 7.2 analyses.

Generates a honeynet-style trace with an injected worm outbreak and a
coordinated reconnaissance episode, runs the *fused* escalation +
multi-recon workflow (Figure 6(f)) in a single sorted scan, and prints
the alerts with human-readable subnets and timestamps.

Run:  python examples/network_monitoring.py
"""

import _bootstrap  # noqa: F401  (makes the in-repo package importable)

from repro import SortScanEngine
from repro.data.honeynet import (
    EscalationEpisode,
    HoneynetGenerator,
    ReconEpisode,
)
from repro.queries import combined_workflow


def main() -> None:
    generator = HoneynetGenerator(seed=7, hours=48)
    monitored = (192 << 16) | (168 << 8)
    generator.add_escalation(
        EscalationEpisode(
            start_hour=14,
            duration_hours=6,
            target_subnet=monitored | 42,
            port=445,
            initial_packets=50,
        )
    )
    generator.add_recon(
        ReconEpisode(
            start_hour=30,
            duration_hours=4,
            target_subnet=monitored | 9,
            num_sources=150,
        )
    )
    dataset = generator.dataset(background_count=40_000)
    schema = dataset.schema

    wf = combined_workflow(schema, ratio_threshold=3.0, min_sources=40)
    result = SortScanEngine(optimize=True).evaluate(dataset, wf)

    time_dim = schema.dimensions[0]
    target_dim = schema.dimensions[2]

    def render(key):
        hour = time_dim.hierarchy.format_value(key[0], 1)
        subnet = target_dim.hierarchy.format_value(key[2], 1)
        return f"{hour}  {subnet}"

    print("=== escalation alerts (volume vs trailing average) ===")
    for key, ratio in result["alerts"].items():
        print(f"  {render(key)}  x{ratio:.1f}")

    print()
    print("=== multi-recon alerts (unique sources x ports) ===")
    for key, score in result["reconAlerts"].items():
        sources = result["uniqueSources"][key]
        print(f"  {render(key)}  {sources} sources (score {score:.0f})")

    print()
    stats = result.stats
    print(
        f"one pass over {stats.rows_scanned} packets, "
        f"peak state {stats.peak_entries} entries, "
        f"{stats.total_seconds:.2f}s"
    )


if __name__ == "__main__":
    main()
