"""Engine shoot-out: the story of the paper's Figure 6 in one script.

Runs the same composite-measure query (Q1, seven child measures) on the
same on-disk dataset with all four engines and prints execution time,
scan counts, and peak memory — showing why one shared sort/scan beats
per-measure relational evaluation, and where the single-scan algorithm
hits its memory wall.

Run:  python examples/engine_comparison.py
"""

import os
import tempfile

import _bootstrap  # noqa: F401  (makes the in-repo package importable)

from repro import (
    MemoryBudgetExceeded,
    MultiPassEngine,
    RelationalEngine,
    SingleScanEngine,
    SortScanEngine,
)
from repro.data import synthetic_dataset
from repro.queries import q1_workflow
from repro.storage import FlatFileDataset, write_flatfile


def main() -> None:
    generated = synthetic_dataset(60_000)
    workflow = q1_workflow(generated.schema, num_children=7)

    fd, path = tempfile.mkstemp(suffix=".bin")
    os.close(fd)
    try:
        write_flatfile(path, generated.schema, generated.records)
        dataset = FlatFileDataset(path, generated.schema)
        print(f"dataset: {len(dataset)} records on disk at {path}")
        print(f"query  : Q1 with 7 dependent child measures\n")

        engines = [
            ("DB (per-measure SQL)", RelationalEngine(
                memory_budget_entries=20_000
            )),
            ("SortScan (one pass)", SortScanEngine(optimize=True)),
            ("SingleScan (no sort)", SingleScanEngine(
                memory_budget_entries=20_000
            )),
            ("MultiPass (budgeted)", MultiPassEngine(
                memory_budget_entries=20_000
            )),
        ]
        header = (
            f"{'engine':<24} {'seconds':>8} {'scans':>6} "
            f"{'peak entries':>13}"
        )
        print(header)
        print("-" * len(header))
        for label, engine in engines:
            try:
                result = engine.evaluate(dataset, workflow)
            except MemoryBudgetExceeded as exc:
                print(
                    f"{label:<24} {'n/a':>8} {'-':>6} "
                    f"{'> ' + str(exc.budget):>13}   (out of memory)"
                )
                continue
            stats = result.stats
            print(
                f"{label:<24} {stats.total_seconds:>8.3f} "
                f"{stats.scans:>6} {stats.peak_entries:>13}"
            )
    finally:
        os.remove(path)


if __name__ == "__main__":
    main()
