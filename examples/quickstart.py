"""Quickstart: define composite measures and evaluate them streaming.

Builds the paper's running-example pipeline over a synthetic network
trace — hourly per-source packet counts, busy-source statistics, a
moving average, and a ratio measure — and evaluates everything in one
sorted scan.

Run:  python examples/quickstart.py
"""

import _bootstrap  # noqa: F401  (makes the in-repo package importable)

from repro import AggregationWorkflow, Field, Sibling, SortScanEngine
from repro.data import honeynet_dataset


def main() -> None:
    dataset = honeynet_dataset(background_count=20_000, hours=24)
    schema = dataset.schema

    wf = AggregationWorkflow(schema, name="quickstart")

    # Example 1: packets per (hour, source IP).
    wf.basic("Count", {"t": "Hour", "U": "IP"}, agg="count")

    # Example 2: number of busy sources (> 5 packets) per hour.
    wf.rollup(
        "sCount",
        {"t": "Hour"},
        source="Count",
        where=Field("M") > 5,
        agg="count",
    )

    # Example 3: traffic carried by busy sources per hour.
    wf.rollup(
        "sTraffic",
        {"t": "Hour"},
        source="Count",
        where=Field("M") > 5,
        agg=("sum", "M"),
    )

    # Example 4: six-hour moving average of the busy-source count.
    wf.match(
        "avgCount",
        {"t": "Hour"},
        source="sCount",
        cond=Sibling({"t": (0, 5)}),
        agg="avg",
    )

    # Example 5: ratio of the moving average to per-source traffic.
    wf.combine(
        "ratio",
        ["avgCount", "sTraffic", "sCount"],
        fn=lambda a, t, c: None if (a is None or not t or not c) else (
            a / (t / c)
        ),
        fn_name="avg/(traffic/count)",
        handles_null=True,
    )

    engine = SortScanEngine(optimize=True)
    result = engine.evaluate(dataset, wf)

    print(f"records scanned : {result.stats.rows_scanned}")
    print(f"sort key        : {result.stats.notes}")
    print(f"peak hash state : {result.stats.peak_entries} entries")
    print(f"wall time       : {result.stats.total_seconds:.3f}s")
    print()
    for name in ("sCount", "avgCount", "ratio"):
        print(result[name].pretty(limit=6))
        print()


if __name__ == "__main__":
    main()
