"""Extension bench: multiprocess shared-nothing partitioned evaluation.

The thread-pool variant of the partitioned engine demonstrates the
*plan shape* (independent range partitions, margin replication, merged
disjoint results) but CPython's GIL serializes its workers.  Process
mode ships each partition to its own interpreter, so sort and scan
really run concurrently; this bench times all three modes on the same
plan and checks process mode is no slower than the thread pool while
producing identical tables.
"""

import os

from benchmarks.conftest import report
from repro.bench.harness import BenchRow, time_engine
from repro.data.synthetic import synthetic_dataset
from repro.engine.partitioned import (
    PartitionedEngine,
    default_partition_count,
)
from repro.engine.sort_scan import SortScanEngine
from repro.queries.q2_sibling_chain import q2_workflow


def test_extension_multiprocess(benchmark, scale):
    size = max(6000, int(400_000 * scale))
    dataset = synthetic_dataset(size)
    workflow = q2_workflow(dataset.schema, depth=3)
    partitions = default_partition_count()

    def run():
        rows: list[BenchRow] = []
        for mode in ("serial", "threads", "processes"):
            rows.append(
                time_engine(
                    PartitionedEngine(
                        num_partitions=partitions, parallel=mode
                    ),
                    dataset,
                    workflow,
                    "ext-multiprocess",
                    f"|D|={size} P={partitions}",
                    label=mode,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(rows, "Extension — multiprocess partitioned evaluation")

    by_mode = {row.engine: row for row in rows}

    # Process mode must actually have used the process pool — a silent
    # fallback to serial would make the timing comparison meaningless.
    assert "mode=processes" in by_mode["processes"].note
    assert "fell back" not in by_mode["processes"].note
    assert "mode=threads" in by_mode["threads"].note

    # Shared-nothing workers should be no slower than the GIL-bound
    # thread pool.  On a single-core box the process pool pays spawn and
    # pickling costs with no parallelism to recoup them, so the bound
    # gets extra headroom there.
    tolerance = 1.25 if (os.cpu_count() or 1) > 1 else 2.5
    assert by_mode["processes"].seconds is not None
    assert by_mode["threads"].seconds is not None
    assert (
        by_mode["processes"].seconds
        <= by_mode["threads"].seconds * tolerance + 0.5
    ), (
        f"process mode {by_mode['processes'].seconds:.3f}s vs "
        f"thread mode {by_mode['threads'].seconds:.3f}s "
        f"(tolerance x{tolerance})"
    )

    # Identical answers in every mode.
    reference = SortScanEngine().evaluate(dataset, workflow)
    result = PartitionedEngine(
        num_partitions=partitions, parallel="processes"
    ).evaluate(dataset, workflow)
    for name in workflow.outputs():
        assert reference[name].equal_rows(result[name]), (
            reference[name].diff(result[name])
        )
