"""Ablation: sort-order choice (DESIGN.md §4.3, paper Section 6).

The optimizer brute-forces sort orders against the watermark-driven
footprint estimate.  This ablation runs the best and the worst
candidate keys and confirms the estimate's ranking is real: the
optimizer's key yields a (much) smaller resident footprint.
"""

from benchmarks.conftest import report
from repro.bench.harness import time_engine
from repro.data.synthetic import synthetic_dataset
from repro.engine.compile import compile_workflow
from repro.engine.sort_scan import SortScanEngine
from repro.optimizer.brute_force import best_sort_key, candidate_sort_keys
from repro.optimizer.memory_model import estimate_graph_entries
from repro.queries.q1_child_parent import q1_workflow


def test_ablation_sort_order(benchmark, scale):
    size = max(2000, int(200_000 * scale))
    dataset = synthetic_dataset(size)
    workflow = q1_workflow(dataset.schema, num_children=7)
    graph = compile_workflow(workflow)
    best = best_sort_key(graph, dataset_size=size)
    worst = max(
        candidate_sort_keys(graph),
        key=lambda key: estimate_graph_entries(graph, key, size),
    )

    def run():
        return [
            time_engine(
                SortScanEngine(sort_key=best),
                dataset,
                workflow,
                "ablation-sortorder",
                f"best {best!r}",
                label="best-key",
            ),
            time_engine(
                SortScanEngine(sort_key=worst),
                dataset,
                workflow,
                "ablation-sortorder",
                f"worst {worst!r}",
                label="worst-key",
            ),
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(rows, "Ablation — sort-order choice (peak entries)")
    best_row, worst_row = rows
    assert best_row.peak_entries <= worst_row.peak_entries
