"""Figure 6(a): Q1 (child/parent match, 7 children) vs dataset size.

Paper's shape: the single-scan algorithm only survives the smallest
dataset (memory); sort/scan beats the relational baseline at the larger
sizes, with the gap widening.
"""

from benchmarks.conftest import report
from repro.bench.figures import fig6a


def test_fig6a(benchmark, scale):
    rows = benchmark.pedantic(
        fig6a, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report(rows, f"Figure 6(a) — Q1 over dataset sizes (scale={scale})")

    by = {(r.config, r.engine): r for r in rows}
    configs = sorted({r.config for r in rows}, key=lambda c: int(c[4:]))
    largest = configs[-1]

    # Single-scan dies on the larger datasets (memory), like the paper
    # showing it only at 2M.
    assert by[(configs[-1], "SingleScan")].seconds is None
    assert by[(configs[-2], "SingleScan")].seconds is None

    # Sort/scan stays within a tiny memory footprint at every size.
    for config in configs:
        sort_scan = by[(config, "SortScan")]
        db = by[(config, "DB")]
        assert sort_scan.peak_entries < db.peak_entries / 10

    # At the largest size, sort/scan beats the relational baseline.
    assert by[(largest, "SortScan")].seconds < by[(largest, "DB")].seconds
