"""Figure 6(e): sort vs scan cost breakdown for Q1 and Q2.

Paper's shape: "although the scan step [is] one pass over the raw data
table (compared with two for the sort step), it is actually much more
expensive than the sort phase", especially for Q1, whose in-memory
maintenance dominates.
"""

from benchmarks.conftest import report
from repro.bench.figures import fig6e


def test_fig6e(benchmark, scale):
    rows = benchmark.pedantic(
        fig6e, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report(rows, f"Figure 6(e) — sort/scan breakdown (scale={scale})")

    for row in rows:
        assert row.seconds is not None
        # The scan phase (hash maintenance + flushing) dominates the
        # sort phase, the paper's headline observation for this figure.
        assert row.scan_seconds > row.sort_seconds
    # Q1 is the more maintenance-heavy query at equal size.
    q1 = [r for r in rows if r.config.startswith("Q1")]
    q2 = [r for r in rows if r.config.startswith("Q2")]
    assert q1[-1].scan_seconds > q2[-1].scan_seconds
