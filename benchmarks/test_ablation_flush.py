"""Ablation: early flushing of finalized entries (DESIGN.md §4.2).

The paper's central mechanism is evicting hash entries the moment the
watermarks prove them finalized.  This ablation disables mid-scan
cascades (so nothing flushes until the end) and measures the memory
cost — the difference is the entire value of Tables 6-8.
"""

from benchmarks.conftest import report
from repro.bench.harness import time_engine
from repro.data.synthetic import synthetic_dataset
from repro.engine.sort_scan import SortScanEngine
from repro.queries.q1_child_parent import q1_workflow


def test_ablation_early_flush(benchmark, scale):
    size = max(2000, int(200_000 * scale))
    dataset = synthetic_dataset(size)
    workflow = q1_workflow(dataset.schema, num_children=7)

    def run():
        eager = time_engine(
            SortScanEngine(optimize=True),
            dataset,
            workflow,
            "ablation-flush",
            f"|D|={size}",
            label="flush-on",
        )
        lazy = time_engine(
            SortScanEngine(
                optimize=True,
                max_records_between_cascades=10**9,
                cascade_prefix=1,
            ),
            dataset,
            workflow,
            "ablation-flush",
            f"|D|={size}",
            label="flush-rare",
        )
        return [eager, lazy]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(rows, "Ablation — early flushing (peak entries)")
    eager, lazy = rows
    # Early flushing is what keeps the footprint small.
    assert eager.peak_entries <= lazy.peak_entries
