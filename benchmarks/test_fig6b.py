"""Figure 6(b): Q2 (nested sliding windows) vs dataset size.

Paper's shape: sort/scan's cost "almost does not increase" with window
nesting depth because results pipeline through the chain without
materialization, while the relational formulation pays per level.

Honest deviation (recorded in EXPERIMENTS.md): at laptop scale our
in-memory relational baseline holds the tiny (~1000-group) chain tables
in hash memory and stays cheap, so the paper's absolute DB-vs-SortScan
ordering for this query does not reproduce; the depth-insensitivity of
sort/scan — the figure's algorithmic claim — does, and is asserted.
"""

from benchmarks.conftest import report
from repro.bench.figures import fig6b


def test_fig6b(benchmark, scale):
    rows = benchmark.pedantic(
        fig6b, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report(rows, f"Figure 6(b) — Q2 sibling chains (scale={scale})")

    by = {(r.config, r.engine): r for r in rows}
    sizes = sorted(
        {r.config.split()[0] for r in rows},
        key=lambda c: int(c.split("=")[1]),
    )
    largest = sizes[-1]
    shallow = by[(f"{largest} depth=2", "SortScan(2-chain)")]
    deep = by[(f"{largest} depth=7", "SortScan(7-chain)")]
    # Depth 3.5x: sort/scan cost grows far less than proportionally
    # (pipelined chain, no per-level sort or materialization).
    assert deep.seconds < 3.0 * shallow.seconds
    # Streaming state stays tiny regardless of depth.
    assert deep.peak_entries < 500
