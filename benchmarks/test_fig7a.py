"""Figure 7(a): escalation detection over honeynet data.

Paper's shape: "the sort-scan algorithm does not perform particularly
well compared with other methods ... the cost of sorting the raw fact
table dominates the overall cost.  Thus, the simple scan algorithm
actually performs the best."
"""

from benchmarks.conftest import report
from repro.bench.figures import fig7a


def test_fig7a(benchmark, scale):
    rows = benchmark.pedantic(
        fig7a, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report(rows, f"Figure 7(a) — escalation detection (scale={scale})")

    by = {r.engine: r for r in rows}
    # The simple (unsorted single) scan wins: tiny intermediate state,
    # no sort to pay for.
    assert by["SimpleScan"].seconds <= by["SortScan"].seconds
    assert by["SimpleScan"].seconds <= by["DB"].seconds
    # Sort/scan pays a real sort on this query.
    assert by["SortScan"].sort_seconds > 0
