"""Figure 6(d): cost vs number of parallel sibling chains (2..7).

Paper's shape: the relational cost grows with the number of chains
(each chain is its own nested query), faster than sort/scan's, which
evaluates every chain in the same pass.
"""

from benchmarks.conftest import report
from repro.bench.figures import fig6d


def test_fig6d(benchmark, scale):
    rows = benchmark.pedantic(
        fig6d, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report(rows, f"Figure 6(d) — #sibling chains sweep (scale={scale})")

    db = {r.config: r.seconds for r in rows if r.engine == "DB"}
    ss = {r.config: r.seconds for r in rows if r.engine == "SortScan"}
    first, last = "chains=2", "chains=7"

    # The DB pays one full scan per chain: strong growth.
    assert db[last] > 2.0 * db[first]
    # Sort/scan re-uses one scan for every chain: slower growth than DB
    # in absolute terms.
    assert (ss[last] - ss[first]) < (db[last] - db[first])
