"""Extension benchmark: the columnar batched scan vs the scalar scan.

Regenerates the perf target sheet's measurement
(``docs/metrics_targets.md``) at the environment's scale and asserts
the sheet's acceptance bars: headline geometric-mean speedup at or
above the 10x target (scaled down leniently at tiny CI sizes, where
fixed per-run costs dominate) and zero regressions on headline
workloads.  Skips — with a reason, never an error — when numpy is
unavailable.
"""

from benchmarks.conftest import report, requires_numpy


@requires_numpy
def test_columnar_batched_vs_scalar(benchmark, scale):
    from repro.bench.columnar import columnar_bench

    rows, payload = benchmark.pedantic(
        columnar_bench, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report(rows, f"columnar batched vs scalar (scale={scale})")

    metrics = payload["metrics"]
    geomean = metrics["geometric_mean_speedup"]
    assert geomean is not None
    # The full 10x bar applies at the sheet's scale (>=1.0); small CI
    # scales still must show a clear, monotone win.
    floor = 10.0 if scale >= 1.0 else 2.0
    assert geomean >= floor, (
        f"headline geomean speedup {geomean:.2f}x fell below "
        f"{floor:.0f}x at scale={scale}"
    )
    headline_regressions = [
        point
        for point in payload["speedups"]
        if point["headline"]
        and point["speedup"] is not None
        and point["speedup"] < 1.0
    ]
    assert not headline_regressions
