"""Extension bench: incremental ingestion vs full recompute, LRU reads.

The measure service's value proposition is twofold:

- a 1% delta batch folds into the persisted accumulator states in time
  proportional to the *delta and the region sets*, not the full fact
  history — so ingestion must beat re-evaluating the grown dataset from
  scratch by a wide margin;
- a warm point query is served from the in-process LRU cache without
  touching the store's segment files — so repeated reads must beat cold
  sparse-index lookups by an order of magnitude.

Both claims are asserted, not just printed.  The workflow here is
purely distributive/algebraic, and the bench additionally asserts that
ingestion deferred nothing — i.e. the incremental path really ran (no
silent fall back to recompute).
"""

import time

from benchmarks.conftest import report
from repro.bench.harness import BenchRow, time_engine
from repro.data.synthetic import synthetic_dataset
from repro.engine.sort_scan import SortScanEngine
from repro.service import Ingestor, MeasureService, MeasureStore
from repro.storage.table import InMemoryDataset
from repro.workflow.workflow import AggregationWorkflow


def _service_workflow(schema) -> AggregationWorkflow:
    """Coarse granularities: few regions, many facts per region.

    ``d?.L2`` has 10 values under the default synthetic hierarchy, so
    the largest table here is 100 regions — the regime the incremental
    path is built for (region sets orders of magnitude below |D|).
    """
    wf = AggregationWorkflow(schema, name="bench-service")
    wf.basic("Count", {"d0": "d0.L2", "d1": "d1.L2"}, agg="count")
    wf.basic("AvgV", {"d0": "d0.L2"}, agg=("avg", "v"))
    wf.rollup("sCount", {"d0": "d0.L2"}, source="Count", agg="sum")
    return wf


def test_extension_service(benchmark, scale, tmp_path):
    size = max(50_000, int(1_000_000 * scale))
    delta_size = max(1, size // 100)  # a 1% delta batch
    dataset = synthetic_dataset(size)
    records = list(dataset.records)
    base = records[:-delta_size]
    delta = records[-delta_size:]
    workflow = _service_workflow(dataset.schema)
    config = f"|D|={size} delta={delta_size}"

    store = MeasureStore(str(tmp_path / "store"))
    ingestor = Ingestor(store, workflow)
    ingestor.bootstrap(InMemoryDataset(dataset.schema, base))

    def run():
        rows: list[BenchRow] = []

        # Full recompute over the grown dataset: the baseline the
        # incremental path must beat.
        rows.append(
            time_engine(
                SortScanEngine(),
                dataset,
                workflow,
                "ext-service",
                config,
                label="full-recompute",
            )
        )

        started = time.perf_counter()
        ingest_report = ingestor.ingest(delta)
        ingest_seconds = time.perf_counter() - started
        rows.append(
            BenchRow(
                figure="ext-service",
                config=config,
                engine="ingest-1pct",
                seconds=ingest_seconds,
                note=f"gen={ingest_report.generation} "
                f"merged={len(ingest_report.merged_nodes)}",
            )
        )

        # Point reads: cold through the sparse index, then warm from
        # the LRU cache.
        service = MeasureService(
            MeasureStore(store.path), workflow, cache_size=4096
        )
        keys = [key for key, __ in store.iter_table("Count")]
        started = time.perf_counter()
        for key in keys:
            service.point("Count", key)
        cold_seconds = time.perf_counter() - started
        started = time.perf_counter()
        for __ in range(5):
            for key in keys:
                service.point("Count", key)
        warm_seconds = (time.perf_counter() - started) / 5
        rows.append(
            BenchRow(
                figure="ext-service",
                config=config,
                engine="point-cold",
                seconds=cold_seconds,
                note=f"{len(keys)} lookups",
            )
        )
        rows.append(
            BenchRow(
                figure="ext-service",
                config=config,
                engine="point-warm",
                seconds=warm_seconds,
                note=f"{len(keys)} lookups (LRU)",
            )
        )
        return rows, ingest_report

    (rows, ingest_report) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report(rows, "Extension — measure service (ingest + cached reads)")
    by_engine = {row.engine: row for row in rows}

    # The incremental path really ran: distributive/algebraic nodes
    # merged, nothing deferred to a lazy recompute.
    assert sorted(ingest_report.merged_nodes) == ["AvgV", "Count"]
    assert ingest_report.deferred_measures == []
    assert store.dirty_measures() == set()

    # Correctness first: the maintained store equals full recompute.
    reference = SortScanEngine().evaluate(dataset, workflow)
    for name in workflow.outputs():
        expected = reference[name]
        got = store.measure_table(name, expected.granularity)
        assert got.equal_rows(expected), expected.diff(got)

    # A 1% delta must land at least 5x faster than recomputing all of
    # the (old + new) facts.
    full = by_engine["full-recompute"].seconds
    ingest_seconds = by_engine["ingest-1pct"].seconds
    assert full is not None and ingest_seconds is not None
    assert ingest_seconds * 5 <= full, (
        f"incremental ingest {ingest_seconds:.3f}s vs full recompute "
        f"{full:.3f}s — less than the required 5x advantage"
    )

    # Warm (cached) point reads must beat cold store reads 10x.
    cold = by_engine["point-cold"].seconds
    warm = by_engine["point-warm"].seconds
    assert warm * 10 <= cold, (
        f"warm reads {warm * 1e3:.2f}ms vs cold reads "
        f"{cold * 1e3:.2f}ms — less than the required 10x advantage"
    )
