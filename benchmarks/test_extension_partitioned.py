"""Extension bench: partitioned evaluation (the paper's future work).

Demonstrates the distributable plan shape: N independent partition
passes produce exactly the single-pass results, with per-partition
state a fraction of the whole.  (Wall-clock speedup from threads is
GIL-bound in CPython; the structure, not the thread timing, is the
claim.)
"""

from benchmarks.conftest import report
from repro.bench.harness import BenchRow, time_engine
from repro.data.synthetic import synthetic_dataset
from repro.engine.partitioned import PartitionedEngine
from repro.engine.sort_scan import SortScanEngine
from repro.storage.sink import MemorySink
from repro.queries.q2_sibling_chain import q2_workflow


def test_extension_partitioned(benchmark, scale):
    size = max(4000, int(400_000 * scale))
    dataset = synthetic_dataset(size)
    workflow = q2_workflow(dataset.schema, depth=3)

    def run():
        rows: list[BenchRow] = []
        rows.append(
            time_engine(
                SortScanEngine(),
                dataset,
                workflow,
                "ext-partitioned",
                f"|D|={size}",
                label="1-partition",
            )
        )
        for partitions in (2, 4):
            rows.append(
                time_engine(
                    PartitionedEngine(num_partitions=partitions),
                    dataset,
                    workflow,
                    "ext-partitioned",
                    f"|D|={size}",
                    label=f"{partitions}-partitions",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(rows, "Extension — partitioned evaluation")

    # Results must be identical regardless of the partition count.
    single = SortScanEngine().evaluate(dataset, workflow)
    split = PartitionedEngine(num_partitions=4).evaluate(
        dataset, workflow, sink=MemorySink()
    )
    for name in workflow.outputs():
        assert single[name].equal_rows(split[name])
