"""Figure 6(c): cost vs number of dependent child measures (2..6).

Paper's shape: the relational baseline's cost grows steeply with the
number of measures (one query block each), while sort/scan — which
maintains all measures in the same pass — grows much more slowly.
"""

from benchmarks.conftest import report
from repro.bench.figures import fig6c


def test_fig6c(benchmark, scale):
    rows = benchmark.pedantic(
        fig6c, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report(rows, f"Figure 6(c) — #child measures sweep (scale={scale})")

    db = {r.config: r.seconds for r in rows if r.engine == "DB"}
    ss = {r.config: r.seconds for r in rows if r.engine == "SortScan"}
    first, last = "children=2", "children=6"

    db_growth = db[last] / db[first]
    ss_growth = ss[last] / ss[first]
    # The relational baseline grows measurably faster with #measures.
    assert db_growth > 1.5
    assert ss_growth < db_growth
    # By six measures, the shared scan wins outright.
    assert ss[last] < db[last]
