"""Figure 7(b): multi-recon detection over honeynet data.

Paper's shape: "the sort-scan algorithm performs significantly faster
than the alternative database approach" — three child/parent measures
share one sorted pass instead of separate memory-constrained query
blocks.
"""

from benchmarks.conftest import report
from repro.bench.figures import fig7b


def test_fig7b(benchmark, scale):
    rows = benchmark.pedantic(
        fig7b, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report(rows, f"Figure 7(b) — multi-recon detection (scale={scale})")

    by = {r.engine: r for r in rows}
    assert by["SortScan"].seconds < by["DB"].seconds
    # Streaming state is orders of magnitude below the baseline's
    # materialized tables.
    assert by["SortScan"].peak_entries < by["DB"].peak_entries / 3
