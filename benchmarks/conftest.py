"""Shared configuration for the figure benchmarks.

Every benchmark regenerates one figure of the paper's Section 7 and
prints the measured series (engine × configuration → seconds, plus the
sort/scan breakdown and peak memory) the way the figure plots them.

Scale: the ``REPRO_BENCH_SCALE`` environment variable multiplies the
dataset sizes (1.0 = the DESIGN.md scale model of the paper's 2M-64M
datasets; default 0.1 keeps a full run to a few minutes).
"""

import os

import pytest

try:
    from repro.storage.columnar import HAVE_NUMPY
except ImportError:  # pragma: no cover - repro must be importable
    HAVE_NUMPY = False

#: Benchmarks of the columnar batched path skip (never error) when
#: numpy is missing: without it the engines silently run the scalar
#: path and the measurement would compare scalar against scalar.
requires_numpy = pytest.mark.skipif(
    not HAVE_NUMPY,
    reason="numpy unavailable: the columnar batched path is disabled, "
    "so batched-vs-scalar timings would be meaningless",
)


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


def report(rows, title: str) -> None:
    """Print a figure's series table (shown with ``pytest -s`` or in
    captured output on failure)."""
    from repro.bench.harness import format_table

    print()
    print(format_table(title, rows))
