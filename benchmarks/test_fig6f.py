"""Figure 6(f): both network analyses fused into one workflow.

Paper's shape: "the sort-scan approach, in this case, results in an
order of magnitude performance improvement over the relational database
query" — the workflow evaluates every measure of both analyses in one
pass, while the baseline runs each as its own query block.
"""

from benchmarks.conftest import report
from repro.bench.figures import fig6f


def test_fig6f(benchmark, scale):
    rows = benchmark.pedantic(
        fig6f, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    report(rows, f"Figure 6(f) — fused network analyses (scale={scale})")

    by = {r.engine: r for r in rows}
    # Sort/scan clearly ahead on the fused workload (the paper reports
    # ~10x; we assert a conservative 1.5x so timing noise cannot flake).
    assert by["SortScan"].seconds * 1.5 < by["DB"].seconds
    assert by["SortScan"].peak_entries < by["DB"].peak_entries / 3
