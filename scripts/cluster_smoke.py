"""End-to-end smoke of the sharded service: CI's `cluster-smoke` job.

Boots a 2-shard process-mode cluster behind the asyncio front end,
hammers it with concurrent HTTP ingests and queries, hard-kills one
shard worker mid-traffic, and requires the whole thing to keep
answering correctly (the router respawns the worker transparently).
Exits non-zero on any failed request, any wrong answer, or a missed
respawn — no green-by-silence.

Run from the repository root:

    PYTHONPATH=src python scripts/cluster_smoke.py
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import sys
import tempfile
import threading
import time

from repro.schema.dataset_schema import synthetic_schema
from repro.service.cluster import ClusterFrontend, bootstrap_cluster
from repro.workflow.workflow import AggregationWorkflow

BOOTSTRAP = 2_000
DELTA = 100
TRAFFIC_SECONDS = 6.0
KILL_AFTER = 2.0


def _workflow(schema) -> AggregationWorkflow:
    wf = AggregationWorkflow(schema, name="cluster-smoke")
    wf.basic("Count", {"d0": "d0.L1", "d1": "d1.L1"}, agg="count")
    wf.basic("Total", {"d0": "d0.L1"}, agg=("sum", "v"))
    wf.rollup("sCount", {"d0": "d0.L2"}, source="Count", agg="sum")
    return wf


def _records(rng: random.Random, count: int) -> list:
    return [
        (
            rng.randrange(64),
            rng.randrange(64),
            rng.randrange(64),
            round(rng.random(), 6),
        )
        for __ in range(count)
    ]


def _request(host, port, method, target, body=None):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, target, body=payload, headers=headers)
        response = conn.getresponse()
        data = json.loads(response.read())
        if response.status != 200:
            raise RuntimeError(
                f"{method} {target} -> {response.status}: {data}"
            )
        return data
    finally:
        conn.close()


class _Traffic(threading.Thread):
    """One client thread: mostly reads, occasional ingests."""

    def __init__(self, host, port, seed, stop, ingests):
        super().__init__(name=f"smoke-client-{seed}")
        self.host, self.port = host, port
        self.rng = random.Random(seed)
        self.stop = stop
        self.ingests = ingests
        self.requests = 0
        self.error: BaseException | None = None

    def run(self):
        try:
            while not self.stop.is_set():
                roll = self.rng.random()
                if roll < 0.05 and self.ingests:
                    _request(
                        self.host, self.port, "POST", "/ingest",
                        {"records": _records(self.rng, DELTA)},
                    )
                elif roll < 0.6:
                    key = self.rng.randrange(16)
                    _request(
                        self.host, self.port, "GET",
                        f"/point?measure=Total&key={key}",
                    )
                else:
                    _request(
                        self.host, self.port, "GET",
                        "/table?measure=sCount",
                    )
                self.requests += 1
        except BaseException as exc:
            self.error = exc


def main() -> int:
    rng = random.Random(7)
    schema = synthetic_schema(3, 3, 4)
    with tempfile.TemporaryDirectory(prefix="cluster-smoke-") as root:
        cluster = bootstrap_cluster(
            f"{root}/cluster",
            _workflow(schema),
            _records(rng, BOOTSTRAP),
            num_shards=2,
            mode="process",
        )
        frontend = ClusterFrontend(cluster, port=0)
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        asyncio.run_coroutine_threadsafe(
            frontend.start(), loop
        ).result(timeout=30)
        host, port = frontend.host, frontend.port
        print(f"serving 2-shard process-mode cluster on {host}:{port}")

        health = _request(host, port, "GET", "/healthz")
        if health["status"] != "ok" or health["fenced"]:
            print(f"FAIL: unhealthy at boot: {health}")
            return 1
        if not all(s["alive"] for s in health["shards"]):
            print(f"FAIL: dead shard at boot: {health['shards']}")
            return 1

        stop = threading.Event()
        clients = [
            _Traffic(host, port, seed, stop, ingests=(seed % 2 == 0))
            for seed in range(4)
        ]
        for client in clients:
            client.start()
        time.sleep(KILL_AFTER)
        print("killing shard worker 0 under traffic")
        cluster.kill_worker(0)
        time.sleep(TRAFFIC_SECONDS - KILL_AFTER)
        stop.set()
        for client in clients:
            client.join(timeout=60)

        failures = [c.error for c in clients if c.error is not None]
        total = sum(c.requests for c in clients)
        stats = _request(host, port, "GET", "/stats")
        health = _request(host, port, "GET", "/healthz")
        asyncio.run_coroutine_threadsafe(
            frontend.stop(), loop
        ).result(timeout=60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)

        respawns = cluster.shards[0].respawns
        print(
            f"{total} requests, epoch {stats['epoch']}, "
            f"facts {stats['facts']}, worker-0 respawns {respawns}"
        )
        if failures:
            print(f"FAIL: {len(failures)} client error(s): {failures[0]}")
            return 1
        if respawns < 1:
            print("FAIL: killed worker was never respawned")
            return 1
        if stats["epoch"] < 2:
            print("FAIL: no ingest committed during the smoke")
            return 1
        # Real health, not a hollow liveness ping: after the kill and
        # transparent respawn the cluster must report every shard
        # alive again, with the respawn on the record.
        if health["status"] != "ok" or health["fenced"]:
            print(f"FAIL: unhealthy after recovery: {health}")
            return 1
        if not all(s["alive"] for s in health["shards"]):
            print(f"FAIL: dead shard after recovery: {health['shards']}")
            return 1
        if health["shards"][0]["respawns"] != respawns:
            print(f"FAIL: /healthz respawn count mismatch: {health}")
            return 1
        print("cluster smoke ok")
        return 0


if __name__ == "__main__":
    sys.exit(main())
