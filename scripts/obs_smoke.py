"""End-to-end observability smoke: CI's `obs-smoke` job.

Boots a 2-shard *process-mode* cluster behind the asyncio front end
with telemetry on (CI sets ``REPRO_TELEMETRY=1``; the script forces
tracing on regardless), runs one point query, one full-table query,
and one ingest, and then asserts the acceptance property of the
tracing layer: each request's trace reassembles into ONE tree that
spans the frontend/router process AND both shard worker processes —
spans recorded in three address spaces, stitched by trace/span ids.

Artifacts written to the working directory (uploaded by CI):

- ``obs-trace.json`` — the merged Chrome trace of the whole smoke;
- ``obs-slow-queries.log`` — the slow-query log (threshold 0 so every
  request captures its stage timings);
- ``obs-access.log`` — the structured access log.

Run from the repository root:

    REPRO_TELEMETRY=1 PYTHONPATH=src python scripts/obs_smoke.py
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import random
import sys
import tempfile
import threading

from repro.obs import get_tracer, set_tracing
from repro.obs.context import parse_traceparent
from repro.obs.trace import span_tree
from repro.schema.dataset_schema import synthetic_schema
from repro.service.cluster import ClusterFrontend, bootstrap_cluster
from repro.workflow.workflow import AggregationWorkflow

BOOTSTRAP = 1_000
DELTA = 80


def _workflow(schema) -> AggregationWorkflow:
    wf = AggregationWorkflow(schema, name="obs-smoke")
    wf.basic("Count", {"d0": "d0.L1", "d1": "d1.L1"}, agg="count")
    wf.basic("Total", {"d0": "d0.L1"}, agg=("sum", "v"))
    return wf


def _records(rng: random.Random, count: int) -> list:
    return [
        (
            rng.randrange(64),
            rng.randrange(64),
            rng.randrange(64),
            round(rng.random(), 6),
        )
        for __ in range(count)
    ]


def _request(host, port, method, target, body=None):
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, target, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        ctype = response.getheader("Content-Type", "")
        data = json.loads(raw) if "json" in ctype else raw.decode()
        if response.status != 200:
            raise RuntimeError(
                f"{method} {target} -> {response.status}: {data}"
            )
        return data, dict(response.getheaders())
    finally:
        conn.close()


def _tree_pids(node) -> set:
    pids = {node["event"]["pid"]}
    for child in node["children"]:
        pids |= _tree_pids(child)
    return pids


def _check_trace(host, port, label, headers, root_name) -> bool:
    """One request's trace must be one frontend+router+workers tree."""
    trace_id = parse_traceparent(headers["traceparent"]).trace_id
    data, __ = _request(
        host, port, "GET", f"/debug/trace/{trace_id}"
    )
    roots = span_tree(data["events"])
    if len(roots) != 1:
        print(f"FAIL: {label}: {len(roots)} trace roots, expected 1")
        return False
    (root,) = roots
    if root["event"]["name"] != root_name:
        print(
            f"FAIL: {label}: root span {root['event']['name']!r}, "
            f"expected {root_name!r}"
        )
        return False
    pids = _tree_pids(root)
    worker_pids = pids - {os.getpid()}
    if os.getpid() not in pids or len(worker_pids) != 2:
        print(
            f"FAIL: {label}: tree pids {sorted(pids)} do not span "
            "the frontend and both shard workers"
        )
        return False
    print(f"{label}: one tree, {len(data['events'])} spans, "
          f"pids {sorted(pids)}")
    for line in data["tree"][:8]:
        print(f"  {line}")
    return True


def main() -> int:
    set_tracing(True)
    rng = random.Random(11)
    schema = synthetic_schema(3, 3, 4)
    ok = True
    with tempfile.TemporaryDirectory(prefix="obs-smoke-") as root:
        cluster = bootstrap_cluster(
            f"{root}/cluster",
            _workflow(schema),
            _records(rng, BOOTSTRAP),
            num_shards=2,
            mode="process",
        )
        frontend = ClusterFrontend(
            cluster,
            port=0,
            access_log_path="obs-access.log",
            slow_query_path="obs-slow-queries.log",
            slow_query_seconds=0.0,  # capture stages on every request
        )
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        asyncio.run_coroutine_threadsafe(
            frontend.start(), loop
        ).result(timeout=30)
        host, port = frontend.host, frontend.port
        print(f"serving 2-shard process-mode cluster on {host}:{port}")

        table, headers = _request(
            host, port, "GET", "/table?measure=Total"
        )
        ok &= _check_trace(
            host, port, "table query", headers, "http:/table"
        )

        key = table["rows"][0][0]
        key_param = ",".join(str(part) for part in key)
        __, headers = _request(
            host, port, "GET",
            f"/point?measure=Total&key={key_param}",
        )
        # A point query touches ONE owning shard; its tree must still
        # be a single frontend-rooted trace (pids >= 2).
        trace_id = parse_traceparent(headers["traceparent"]).trace_id
        data, __ = _request(
            host, port, "GET", f"/debug/trace/{trace_id}"
        )
        roots = span_tree(data["events"])
        point_pids = _tree_pids(roots[0]) if len(roots) == 1 else set()
        if len(roots) != 1 or len(point_pids) < 2:
            print(f"FAIL: point query trace malformed: {len(roots)} "
                  f"roots, pids {sorted(point_pids)}")
            ok = False
        else:
            print(f"point query: one tree, pids {sorted(point_pids)}")

        __, headers = _request(
            host, port, "POST", "/ingest",
            {"records": [list(r) for r in _records(rng, DELTA)]},
        )
        ok &= _check_trace(
            host, port, "ingest", headers, "http:/ingest"
        )

        metrics, __ = _request(host, port, "GET", "/metrics")
        for required in (
            "repro_http_request_seconds_bucket",
            "repro_slo_burn_rate",
            "repro_shard_op_seconds_bucket",
        ):
            if required not in metrics:
                print(f"FAIL: /metrics missing {required}")
                ok = False

        statusz, __ = _request(host, port, "GET", "/statusz")
        slow = statusz.get("slow_queries", [])
        if not any(e.get("stages") for e in slow):
            print("FAIL: no slow-query entry captured stage timings")
            ok = False

        asyncio.run_coroutine_threadsafe(
            frontend.stop(), loop
        ).result(timeout=60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)

        count = get_tracer().write("obs-trace.json")
        print(f"wrote obs-trace.json ({count} events), "
              "obs-access.log, obs-slow-queries.log")
    if not ok:
        return 1
    print("obs smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
