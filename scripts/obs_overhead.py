"""Measure the telemetry overhead recorded in docs/metrics_targets.md.

Three measurements, printed as one line each:

1. **Batched read path** (the < 5 % bar): the fig6c-family sort/scan
   workload over 200 000 in-memory rows, evaluated with tracing off
   and then on, median of 7 repetitions each.
2. **Always-on request envelope**: a microbenchmark of what every
   served request pays even with tracing off — trace-context creation
   plus the access-log/histogram/SLO record.
3. **Full-tracing HTTP cost** (reported, no bar): end-to-end point
   reads against a 2-shard process-mode cluster, tracing off vs on —
   dominated by the per-request eager worker-telemetry flush.

Run from the repository root (~30 s):

    PYTHONPATH=src python scripts/obs_overhead.py
"""

from __future__ import annotations

import asyncio
import http.client
import random
import statistics
import tempfile
import threading
import time

from repro.engine.sort_scan import SortScanEngine
from repro.obs import get_tracer, new_context, reset_registry, set_tracing
from repro.obs.reqlog import RequestLog, RequestObserver, SlowQueryLog
from repro.obs.slo import SLOTracker
from repro.schema.dataset_schema import synthetic_schema
from repro.service.cluster import ClusterFrontend, bootstrap_cluster
from repro.storage.table import InMemoryDataset
from repro.workflow.workflow import AggregationWorkflow

ROWS = 200_000
ENGINE_REPS = 7
HTTP_REQUESTS = 400
ENVELOPE_REPS = 20_000


def _schema():
    return synthetic_schema(3, 3, 4)


def _records(rng: random.Random, count: int) -> list:
    return [
        (
            rng.randrange(64),
            rng.randrange(64),
            rng.randrange(64),
            round(rng.random(), 6),
        )
        for __ in range(count)
    ]


def _workflow(schema, name: str) -> AggregationWorkflow:
    wf = AggregationWorkflow(schema, name=name)
    wf.basic("Count", {"d0": "d0.L1", "d1": "d1.L1"}, agg="count")
    wf.basic("Total", {"d0": "d0.L1"}, agg=("sum", "v"))
    wf.basic("MaxV", {"d0": "d0.L2"}, agg=("max", "v"))
    return wf


def batched_read_path() -> None:
    """Tracing on vs off on the sort/scan engine (the < 5 % bar)."""
    schema = _schema()
    ds = InMemoryDataset(schema, _records(random.Random(5), ROWS))
    wf = _workflow(schema, "overhead")

    def run(reps: int, tracing: bool) -> list[float]:
        set_tracing(tracing)
        times = []
        for __ in range(reps):
            get_tracer().reset()
            t0 = time.perf_counter()
            SortScanEngine().evaluate(ds, wf, publish_metrics=True)
            times.append(time.perf_counter() - t0)
        return times

    run(2, False)  # warm caches so the first timed rep is honest
    off = statistics.median(run(ENGINE_REPS, False))
    on = statistics.median(run(ENGINE_REPS, True))
    set_tracing(False)
    print(
        f"batched read path, {ROWS // 1000}k rows, sort-scan: "
        f"off={off:.4f}s on={on:.4f}s "
        f"overhead={(on / off - 1) * 100:.2f}%  (target < 5%)"
    )


def request_envelope() -> None:
    """Per-request cost paid even with tracing off."""
    reset_registry()
    observer = RequestObserver(
        access_log=RequestLog(),
        slow_log=SlowQueryLog(),
        slo=SLOTracker(),
    )
    t0 = time.perf_counter()
    for __ in range(ENVELOPE_REPS):
        ctx = new_context()
    t1 = time.perf_counter()
    for __ in range(ENVELOPE_REPS):
        observer.observe(
            route="/point", method="GET", status=200,
            seconds=0.0006, ctx=ctx, tenant="-",
        )
    t2 = time.perf_counter()
    ctx_us = (t1 - t0) / ENVELOPE_REPS * 1e6
    obs_us = (t2 - t1) / ENVELOPE_REPS * 1e6
    print(
        f"always-on envelope: new_context={ctx_us:.1f}us "
        f"observe={obs_us:.1f}us "
        f"total={ctx_us + obs_us:.1f}us/request"
    )
    reset_registry()


def http_full_tracing() -> None:
    """End-to-end point reads, tracing off vs on (reported, no bar)."""
    schema = _schema()
    rng = random.Random(9)
    with tempfile.TemporaryDirectory(prefix="obs-overhead-") as root:
        cluster = bootstrap_cluster(
            f"{root}/cluster",
            _workflow(schema, "overhead-http"),
            _records(rng, 5_000),
            num_shards=2,
            mode="process",
        )
        frontend = ClusterFrontend(cluster, port=0)
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        asyncio.run_coroutine_threadsafe(
            frontend.start(), loop
        ).result(timeout=30)
        host, port = frontend.host, frontend.port

        def burst(count: int) -> list[float]:
            conn = http.client.HTTPConnection(host, port, timeout=30)
            times = []
            for i in range(count):
                t0 = time.perf_counter()
                conn.request("GET", f"/point?measure=Total&key={i % 16}")
                response = conn.getresponse()
                response.read()
                times.append(time.perf_counter() - t0)
            conn.close()
            return times

        burst(100)  # warmup
        set_tracing(False)
        off = burst(HTTP_REQUESTS)
        set_tracing(True)
        on = burst(HTTP_REQUESTS)
        set_tracing(False)

        off_p50 = statistics.median(off) * 1000
        on_p50 = statistics.median(on) * 1000
        off_qps = HTTP_REQUESTS / sum(off)
        on_qps = HTTP_REQUESTS / sum(on)
        print(
            f"HTTP point reads, full tracing: "
            f"off p50={off_p50:.3f}ms ({off_qps:.0f} q/s)  "
            f"on p50={on_p50:.3f}ms ({on_qps:.0f} q/s)  "
            f"throughput cost={(1 - on_qps / off_qps) * 100:.1f}% "
            "(eager per-request worker flush; debug mode, off by default)"
        )

        asyncio.run_coroutine_threadsafe(
            frontend.stop(), loop
        ).result(timeout=60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)


def main() -> int:
    batched_read_path()
    request_envelope()
    http_full_tracing()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
