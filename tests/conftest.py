"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.data.honeynet import honeynet_dataset
from repro.engine.multi_pass import MultiPassEngine
from repro.engine.naive import RelationalEngine
from repro.engine.single_scan import SingleScanEngine
from repro.engine.sort_scan import SortScanEngine
from repro.schema.dataset_schema import (
    network_log_schema,
    synthetic_schema,
)
from repro.storage.table import InMemoryDataset


@pytest.fixture(scope="session")
def syn_schema():
    """Small synthetic schema: 3 dims, 3 levels, fan-out 4 (64 values)."""
    return synthetic_schema(num_dimensions=3, levels=3, fanout=4)


@pytest.fixture(scope="session")
def net_schema():
    return network_log_schema()


@pytest.fixture(scope="session")
def syn_dataset(syn_schema):
    """3000 seeded uniform records over the small synthetic schema."""
    rng = random.Random(42)
    records = [
        (
            rng.randrange(64),
            rng.randrange(64),
            rng.randrange(64),
            rng.random(),
        )
        for __ in range(3000)
    ]
    return InMemoryDataset(syn_schema, records)


@pytest.fixture(scope="session")
def net_dataset():
    """A small honeynet trace with both episode types injected."""
    return honeynet_dataset(4000, hours=24)


def all_engines(budget: int = 50_000):
    """One instance of every engine, streaming ones instrumented."""
    return [
        RelationalEngine(),
        RelationalEngine(spool=False, reuse_subexpressions=True),
        SingleScanEngine(),
        SortScanEngine(assert_no_late_updates=True),
        SortScanEngine(optimize=True, assert_no_late_updates=True),
        MultiPassEngine(memory_budget_entries=budget),
    ]


def assert_engines_agree(
    dataset, workflow, budget: int = 50_000, extra_engines=()
):
    """The central invariant: every engine computes identical tables.

    ``extra_engines`` joins the standard roster — used by tests that
    exercise engines with plan preconditions (e.g. the partitioned
    engine rejects workflows whose measures hold the partition
    dimension at ``D_ALL``, so it only joins when the workflow is known
    to qualify).
    """
    engines = all_engines(budget) + list(extra_engines)
    results = [engine.evaluate(dataset, workflow) for engine in engines]
    reference = results[0]
    for engine, result in zip(engines[1:], results[1:]):
        for name in workflow.outputs():
            ref_table = reference[name]
            got_table = result[name]
            assert ref_table.equal_rows(got_table), (
                f"{engine.name} disagrees on {name!r}: "
                f"{ref_table.diff(got_table)}"
            )
    return reference
