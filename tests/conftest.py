"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.data.honeynet import honeynet_dataset
from repro.schema.dataset_schema import (
    network_log_schema,
    synthetic_schema,
)
from repro.storage.table import InMemoryDataset

# The engine roster and agreement assertion live in repro.testkit so
# the oracles/sweeper/CLI share them; re-exported here for the tests.
from repro.testkit.differential import (  # noqa: F401
    all_engines,
    assert_engines_agree,
)


@pytest.fixture(scope="session")
def syn_schema():
    """Small synthetic schema: 3 dims, 3 levels, fan-out 4 (64 values)."""
    return synthetic_schema(num_dimensions=3, levels=3, fanout=4)


@pytest.fixture(scope="session")
def net_schema():
    return network_log_schema()


@pytest.fixture(scope="session")
def syn_dataset(syn_schema):
    """3000 seeded uniform records over the small synthetic schema."""
    rng = random.Random(42)
    records = [
        (
            rng.randrange(64),
            rng.randrange(64),
            rng.randrange(64),
            rng.random(),
        )
        for __ in range(3000)
    ]
    return InMemoryDataset(syn_schema, records)


@pytest.fixture(scope="session")
def net_dataset():
    """A small honeynet trace with both episode types injected."""
    return honeynet_dataset(4000, hours=24)


@pytest.fixture(autouse=True)
def _no_leaked_failpoints():
    """Any fail point armed by a test is disarmed afterwards."""
    from repro.testkit import failpoints

    yield
    failpoints.clear()
