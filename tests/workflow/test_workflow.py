"""Tests for the aggregation-workflow builder API."""

import pytest

from repro.errors import WorkflowError
from repro.algebra.conditions import ChildParent, ParentChild, Sibling
from repro.algebra.predicates import Field
from repro.schema.dataset_schema import synthetic_schema
from repro.workflow.measure import MeasureKind
from repro.workflow.workflow import AggregationWorkflow


@pytest.fixture()
def schema():
    return synthetic_schema(num_dimensions=3, levels=3, fanout=4)


@pytest.fixture()
def wf(schema):
    return AggregationWorkflow(schema, "test")


class TestBasic:
    def test_basic_defaults_to_count_star(self, wf):
        m = wf.basic("cnt", {"d0": "d0.L0"})
        assert m.kind is MeasureKind.BASIC
        assert m.agg.function.name == "count"
        assert m.agg.input_field == "*"

    def test_basic_with_measure_field(self, wf):
        m = wf.basic("total", {"d0": "d0.L0"}, agg=("sum", "v"))
        assert m.agg.input_field == "v"

    def test_duplicate_name_rejected(self, wf):
        wf.basic("cnt", {"d0": "d0.L0"})
        with pytest.raises(WorkflowError):
            wf.basic("cnt", {"d0": "d0.L1"})


class TestRollup:
    def test_rollup_requires_strictly_finer_source(self, wf):
        wf.basic("cnt", {"d0": "d0.L0"})
        with pytest.raises(WorkflowError):
            wf.rollup("same", {"d0": "d0.L0"}, source="cnt")
        m = wf.rollup("up", {"d0": "d0.L1"}, source="cnt")
        assert m.kind is MeasureKind.ROLLUP

    def test_unknown_source_rejected(self, wf):
        with pytest.raises(WorkflowError):
            wf.rollup("up", {"d0": "d0.L1"}, source="missing")


class TestMatch:
    def test_match_auto_creates_cells(self, wf):
        wf.basic("cnt", {"d0": "d0.L0"})
        m = wf.match(
            "win",
            {"d0": "d0.L0"},
            source="cnt",
            cond=Sibling({"d0": (0, 2)}),
        )
        assert m.keys.startswith("__cells")
        assert wf[m.keys].hidden

    def test_cells_reused_across_matches(self, wf):
        wf.basic("cnt", {"d0": "d0.L0"})
        a = wf.match(
            "w1", {"d0": "d0.L0"}, source="cnt",
            cond=Sibling({"d0": (0, 1)}),
        )
        b = wf.match(
            "w2", {"d0": "d0.L0"}, source="cnt",
            cond=Sibling({"d0": (0, 2)}),
        )
        assert a.keys == b.keys

    def test_child_parent_directed_to_rollup(self, wf):
        wf.basic("cnt", {"d0": "d0.L0"})
        with pytest.raises(WorkflowError):
            wf.match(
                "up", {"d0": "d0.L1"}, source="cnt", cond=ChildParent()
            )

    def test_keys_granularity_checked(self, wf):
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.basic("other", {"d1": "d1.L0"})
        with pytest.raises(WorkflowError):
            wf.match(
                "win",
                {"d0": "d0.L0"},
                source="cnt",
                cond=Sibling({"d0": (0, 1)}),
                keys="other",
            )

    def test_broadcast_is_parent_child(self, wf):
        wf.basic("coarse", {"d0": "d0.L1"})
        wf.basic("fine", {"d0": "d0.L0"})
        m = wf.broadcast(
            "down", {"d0": "d0.L0"}, source="coarse", keys="fine"
        )
        assert isinstance(m.cond, ParentChild)


class TestCombineAndFilter:
    def test_combine_requires_same_granularity(self, wf):
        wf.basic("a", {"d0": "d0.L0"})
        wf.basic("b", {"d0": "d0.L1"})
        with pytest.raises(WorkflowError):
            wf.combine("c", ["a", "b"], fn=lambda x, y: x)

    def test_combine_builds(self, wf):
        wf.basic("a", {"d0": "d0.L0"})
        wf.basic("b", {"d0": "d0.L0"})
        m = wf.combine("c", ["a", "b"], fn=lambda x, y: (x or 0) + (y or 0))
        assert m.inputs == ("a", "b")

    def test_filter_keeps_granularity(self, wf):
        wf.basic("a", {"d0": "d0.L0"})
        m = wf.filter("big", source="a", where=Field("M") > 2)
        assert m.kind is MeasureKind.FILTER
        assert m.granularity == wf["a"].granularity

    def test_derive_is_self_match(self, wf):
        wf.basic("a", {"d0": "d0.L0"})
        m = wf.derive("view", source="a")
        assert m.kind is MeasureKind.MATCH


class TestWholeWorkflow:
    def test_outputs_exclude_hidden(self, wf):
        wf.basic("a", {"d0": "d0.L0"}, hidden=True)
        wf.basic("b", {"d0": "d0.L0"})
        assert wf.outputs() == ["b"]

    def test_order_is_topological(self, wf):
        wf.basic("a", {"d0": "d0.L0"})
        wf.rollup("b", {"d0": "d0.L1"}, source="a")
        wf.combine("c", ["b", "b"], fn=lambda x, y: x)
        order = wf.order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_getitem_and_contains(self, wf):
        wf.basic("a", {"d0": "d0.L0"})
        assert "a" in wf
        assert wf["a"].name == "a"
        with pytest.raises(WorkflowError):
            wf["zzz"]

    def test_merge_shares_hidden_cells(self, schema):
        def build(tag):
            w = AggregationWorkflow(schema, tag)
            w.basic(f"{tag}cnt", {"d0": "d0.L0"})
            w.match(
                f"{tag}win",
                {"d0": "d0.L0"},
                source=f"{tag}cnt",
                cond=Sibling({"d0": (0, 1)}),
            )
            return w

        first, second = build("x"), build("y")
        merged = first.merge(second)
        assert merged is first
        assert "ycnt" in merged
        merged.validate()

    def test_merge_name_clash_rejected(self, schema):
        a = AggregationWorkflow(schema)
        b = AggregationWorkflow(schema)
        a.basic("cnt", {"d0": "d0.L0"})
        b.basic("cnt", {"d0": "d0.L0"})
        with pytest.raises(WorkflowError):
            a.merge(b)

    def test_merge_cross_schema_rejected(self, schema):
        other = synthetic_schema(num_dimensions=3, levels=3, fanout=4)
        a = AggregationWorkflow(schema)
        b = AggregationWorkflow(other)
        with pytest.raises(WorkflowError):
            a.merge(b)
