"""Tests for GraphViz DOT export of workflows."""

from repro.algebra.conditions import Sibling
from repro.algebra.predicates import Field
from repro.schema.dataset_schema import network_log_schema
from repro.workflow.dot import to_dot
from repro.workflow.workflow import AggregationWorkflow


def build_workflow():
    wf = AggregationWorkflow(network_log_schema(), name="viz")
    wf.basic("Count", {"t": "Hour", "U": "IP"})
    wf.rollup(
        "busy", {"t": "Hour"}, source="Count", where=Field("M") > 5
    )
    wf.match(
        "trend", {"t": "Hour"}, source="busy",
        cond=Sibling({"t": (0, 5)}),
    )
    return wf


def test_dot_is_a_digraph_with_clusters():
    dot = to_dot(build_workflow())
    assert dot.startswith('digraph "viz"')
    assert dot.rstrip().endswith("}")
    # One cluster (rectangle) per region set.
    assert dot.count("subgraph cluster_") == 2


def test_dot_contains_measures_and_arcs():
    dot = to_dot(build_workflow())
    for name in ("Count", "busy", "trend"):
        assert f'"{name}"' in dot
    assert '"Count" -> "busy"' in dot
    assert '"busy" -> "trend"' in dot


def test_dot_marks_hidden_cells_dashed():
    dot = to_dot(build_workflow())
    assert "style=dashed" in dot


def test_dot_labels_match_conditions():
    dot = to_dot(build_workflow())
    assert "cond_sb" in dot


def test_dot_escapes_quotes():
    wf = AggregationWorkflow(network_log_schema(), name='with "quotes"')
    wf.basic("Count", {"t": "Hour"})
    dot = to_dot(wf)
    assert 'with \\"quotes\\"' in dot
