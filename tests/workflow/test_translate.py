"""Tests for workflow-to-AW-RA translation (Theorem 2)."""

import pytest

from repro.algebra.conditions import Sibling
from repro.algebra.expr import (
    Aggregate,
    CombineJoin,
    FactTable,
    MatchJoin,
    Select,
)
from repro.algebra.predicates import Field
from repro.schema.dataset_schema import network_log_schema
from repro.queries.examples import examples_workflow
from repro.workflow.workflow import AggregationWorkflow


@pytest.fixture(scope="module")
def net():
    return network_log_schema()


class TestExampleTranslations:
    """The paper's Examples 1-5 translate to their stated formulas."""

    @pytest.fixture(scope="class")
    def exprs(self, net):
        return examples_workflow(net).to_algebra()

    def test_example1_is_basic_aggregation(self, exprs):
        count = exprs["Count"]
        assert isinstance(count, Aggregate)
        assert isinstance(count.child, FactTable)
        assert repr(count.granularity) == "(t:Hour, U:IP)"

    def test_example2_aggregates_filtered_counts(self, exprs):
        scount = exprs["sCount"]
        assert isinstance(scount, Aggregate)
        assert isinstance(scount.child, Select)
        assert scount.child.child is exprs["Count"]  # shared object

    def test_example4_is_sibling_match_join(self, exprs):
        avg = exprs["avgCount"]
        assert isinstance(avg, MatchJoin)
        assert isinstance(avg.cond, Sibling)
        # Keys come from the hidden S_base cells measure.
        assert isinstance(avg.target, Aggregate)
        assert avg.target.agg.function.name.startswith(
            ("cells", "const")
        )

    def test_example5_is_combine_join(self, exprs):
        ratio = exprs["ratio"]
        assert isinstance(ratio, CombineJoin)
        assert ratio.base is exprs["avgCount"]
        assert ratio.inputs == (exprs["sTraffic"], exprs["sCount"])

    def test_shared_subexpressions_are_shared_objects(self, exprs):
        assert exprs["sCount"].child.child is exprs["Count"]
        assert exprs["sTraffic"].child.child is exprs["Count"]


class TestOtherKinds:
    def test_filter_translates_to_select(self, net):
        wf = AggregationWorkflow(net)
        wf.basic("cnt", {"t": "Hour"})
        wf.filter("big", source="cnt", where=Field("M") > 3)
        exprs = wf.to_algebra()
        assert isinstance(exprs["big"], Select)
        assert exprs["big"].child is exprs["cnt"]

    def test_single_input_combine(self, net):
        wf = AggregationWorkflow(net)
        wf.basic("cnt", {"t": "Hour"})
        wf.combine("double", ["cnt"], fn=lambda v: None if v is None else (
            2 * v
        ))
        exprs = wf.to_algebra()
        assert isinstance(exprs["double"], CombineJoin)
