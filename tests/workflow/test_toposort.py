"""Tests for topological ordering of measure dependencies."""

import pytest

from repro.errors import WorkflowError
from repro.cube.granularity import Granularity
from repro.schema.dataset_schema import synthetic_schema
from repro.workflow.measure import Measure, MeasureKind
from repro.workflow.toposort import topological_order


def _measure(name, schema, source=None, inputs=()):
    return Measure(
        name,
        Granularity.base(schema),
        MeasureKind.BASIC if source is None and not inputs else (
            MeasureKind.COMBINE if inputs else MeasureKind.ROLLUP
        ),
        source=source,
        inputs=inputs,
    )


@pytest.fixture()
def schema():
    return synthetic_schema(num_dimensions=2, levels=2, fanout=4)


def test_linear_chain(schema):
    measures = {
        "a": _measure("a", schema),
        "b": _measure("b", schema, source="a"),
        "c": _measure("c", schema, source="b"),
    }
    assert topological_order(measures) == ["a", "b", "c"]


def test_diamond_respects_dependencies(schema):
    measures = {
        "a": _measure("a", schema),
        "b": _measure("b", schema, source="a"),
        "c": _measure("c", schema, source="a"),
        "d": _measure("d", schema, inputs=("b", "c")),
    }
    order = topological_order(measures)
    assert order.index("a") < order.index("b")
    assert order.index("a") < order.index("c")
    assert order.index("d") == 3


def test_insertion_order_breaks_ties(schema):
    measures = {
        "z": _measure("z", schema),
        "a": _measure("a", schema),
    }
    assert topological_order(measures) == ["z", "a"]


def test_cycle_detected(schema):
    measures = {
        "a": _measure("a", schema, source="b"),
        "b": _measure("b", schema, source="a"),
    }
    with pytest.raises(WorkflowError, match="cycle"):
        topological_order(measures)


def test_self_cycle_detected(schema):
    measures = {"a": _measure("a", schema, source="a")}
    with pytest.raises(WorkflowError, match="cycle"):
        topological_order(measures)


def test_unknown_dependency(schema):
    measures = {"a": _measure("a", schema, source="ghost")}
    with pytest.raises(WorkflowError, match="unknown"):
        topological_order(measures)


def test_empty_is_fine():
    assert topological_order({}) == []
