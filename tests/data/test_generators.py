"""Tests for the dataset generators (synthetic / netlog / honeynet)."""


from repro.data.honeynet import (
    EscalationEpisode,
    HoneynetGenerator,
    ReconEpisode,
    honeynet_dataset,
)
from repro.data.netlog import NetworkLogGenerator
from repro.data.synthetic import SyntheticGenerator, synthetic_dataset


class TestSynthetic:
    def test_paper_shape(self):
        gen = SyntheticGenerator()
        records = list(gen.records(100))
        assert len(records) == 100
        for record in records:
            assert len(record) == 5  # 4 dims + measure
            assert all(0 <= record[i] < 1000 for i in range(4))
            assert 0.0 <= record[4] < 1.0

    def test_deterministic_by_seed(self):
        a = list(SyntheticGenerator(seed=5).records(50))
        b = list(SyntheticGenerator(seed=5).records(50))
        c = list(SyntheticGenerator(seed=6).records(50))
        assert a == b
        assert a != c

    def test_values_roughly_uniform(self):
        ds = synthetic_dataset(20_000, num_dimensions=1, fanout=10)
        buckets = [0] * 10
        for record in ds.scan():
            buckets[record[0] // 100] += 1
        assert max(buckets) < 2 * min(buckets)

    def test_schema_validation(self):
        ds = synthetic_dataset(200)
        ds.schema.validate_records(ds.scan())


class TestNetlog:
    def test_records_fit_schema(self):
        gen = NetworkLogGenerator(seed=1)
        records = list(gen.records(500, hours=6))
        assert len(records) == 500
        gen.schema.validate_records(records)
        for t, src, dst, port in records:
            assert gen.start_time <= t < gen.start_time + 6 * 3600
            assert 0 <= port < 65536

    def test_heavy_hitters_exist(self):
        gen = NetworkLogGenerator(seed=1)
        counts = {}
        for record in gen.records(3000, hours=6):
            counts[record[1]] = counts.get(record[1], 0) + 1
        top = max(counts.values())
        assert top > 3 * (3000 / len(counts))  # skew, not uniform

    def test_port_concentration(self):
        gen = NetworkLogGenerator(seed=1)
        hot = {445, 135, 80, 22, 1433, 3389, 23, 25}
        in_hot = sum(
            1 for r in gen.records(2000, hours=6) if r[3] in hot
        )
        assert in_hot > 1200  # ~85% configured


class TestHoneynet:
    def test_default_episodes_present(self):
        gen = HoneynetGenerator(seed=0, hours=24).with_default_episodes()
        assert len(gen.escalations) == 1
        assert len(gen.recons) == 1

    def test_escalation_volume_grows(self):
        gen = HoneynetGenerator(seed=0, hours=24)
        episode = EscalationEpisode(
            start_hour=2,
            duration_hours=4,
            target_subnet=(192 << 16) | (168 << 8) | 9,
            port=445,
            initial_packets=20,
        )
        gen.add_escalation(episode)
        per_hour = {}
        for t, __, dst, port in gen.records(0):
            if port == 445 and (dst >> 8) == episode.target_subnet:
                hour = (t - gen.start_time) // 3600
                per_hour[hour] = per_hour.get(hour, 0) + 1
        hours = sorted(per_hour)
        assert hours == [2, 3, 4, 5]
        volumes = [per_hour[h] for h in hours]
        assert all(b > a for a, b in zip(volumes, volumes[1:]))

    def test_recon_has_many_unique_sources(self):
        gen = HoneynetGenerator(seed=0, hours=24)
        episode = ReconEpisode(
            start_hour=5,
            duration_hours=2,
            target_subnet=(192 << 16) | (168 << 8) | 3,
            num_sources=70,
        )
        gen.add_recon(episode)
        sources = {
            r[1]
            for r in gen.records(0)
            if (r[2] >> 8) == episode.target_subnet
        }
        assert len(sources) >= 69  # collisions allowed but rare

    def test_episode_clipped_at_trace_end(self):
        gen = HoneynetGenerator(seed=0, hours=4)
        gen.add_escalation(
            EscalationEpisode(
                start_hour=3,
                duration_hours=10,
                target_subnet=1,
                port=445,
                initial_packets=5,
            )
        )
        last = gen.start_time + 4 * 3600
        assert all(t < last for t, *_ in gen.records(0))

    def test_honeynet_dataset_helper(self):
        ds = honeynet_dataset(1000, hours=12)
        assert len(ds) > 1000  # background + episodes
        ds.schema.validate_records(ds.scan())
