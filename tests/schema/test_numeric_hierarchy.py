"""Tests for the synthetic uniform hierarchy (paper Section 7.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchemaError
from repro.schema.numeric_hierarchy import UniformHierarchy


def paper_hierarchy():
    """The paper's exact synthetic setting: 3 non-ALL levels, fan-out 10."""
    return UniformHierarchy("d", levels=3, fanout=10)


class TestConstruction:
    def test_paper_setting_shape(self):
        h = paper_hierarchy()
        assert h.num_levels == 4  # D1 < D2 < D3 < D_ALL
        assert h.base_cardinality == 1000
        assert h.per_level_fanout == 10

    def test_each_value_covers_fanout_children(self):
        """"Any value in any domain will cover 10 distinct values of
        its sub-domains" — the defining property."""
        h = paper_hierarchy()
        parents = {}
        for value in range(1000):
            parents.setdefault(h.generalize(value, 0, 1), set()).add(value)
        assert all(len(kids) == 10 for kids in parents.values())
        assert len(parents) == 100

    def test_invalid_parameters(self):
        with pytest.raises(SchemaError):
            UniformHierarchy("d", levels=0)
        with pytest.raises(SchemaError):
            UniformHierarchy("d", fanout=1)
        with pytest.raises(SchemaError):
            UniformHierarchy("d", base_cardinality=0)


class TestFanoutAndCardinality:
    def test_fanout_between_levels(self):
        h = paper_hierarchy()
        assert h.fanout(0, 1) == 10
        assert h.fanout(0, 2) == 100
        assert h.fanout(1, 2) == 10
        assert h.fanout(2, 2) == 1

    def test_fanout_to_all_is_level_cardinality(self):
        h = paper_hierarchy()
        assert h.fanout(0, h.all_level) == 1000
        assert h.fanout(2, h.all_level) == 10

    def test_fanout_downward_rejected(self):
        with pytest.raises(SchemaError):
            paper_hierarchy().fanout(2, 1)

    def test_level_cardinality(self):
        h = paper_hierarchy()
        assert [h.level_cardinality(i) for i in range(4)] == [
            1000,
            100,
            10,
            1,
        ]

    def test_custom_base_cardinality(self):
        h = UniformHierarchy("d", levels=2, fanout=10, base_cardinality=55)
        assert h.level_cardinality(0) == 55
        assert h.level_cardinality(1) == 5


@given(
    u=st.integers(min_value=0, max_value=999),
    v=st.integers(min_value=0, max_value=999),
    level=st.integers(min_value=0, max_value=3),
)
def test_generalization_is_monotone(u, v, level):
    """Proposition 1: u <= v implies gamma(u) <= gamma(v)."""
    h = paper_hierarchy()
    if u > v:
        u, v = v, u
    assert h.generalize(u, 0, level) <= h.generalize(v, 0, level)


@given(
    value=st.integers(min_value=0, max_value=999),
    mid=st.integers(min_value=0, max_value=3),
    top=st.integers(min_value=0, max_value=3),
)
def test_generalization_is_consistent(value, mid, top):
    """gamma composes along the chain (Section 2.1 consistency)."""
    h = paper_hierarchy()
    if mid > top:
        mid, top = top, mid
    via = h.generalize(h.generalize(value, 0, mid), mid, top)
    assert via == h.generalize(value, 0, top)
