"""Tests for the Dimension wrapper."""

import pytest

from repro.errors import SchemaError
from repro.schema.dimension import Dimension
from repro.schema.numeric_hierarchy import UniformHierarchy


def dim():
    return Dimension("speed", UniformHierarchy("speed", 2, 4), "s")


def test_name_and_abbrev():
    d = dim()
    assert d.name == "speed"
    assert d.abbrev == "s"
    # Abbreviation defaults to the name.
    assert Dimension("x", UniformHierarchy("x", 2, 4)).abbrev == "x"


def test_empty_name_rejected():
    with pytest.raises(SchemaError):
        Dimension("", UniformHierarchy("x", 2, 4))


def test_delegation_to_hierarchy():
    d = dim()
    assert d.num_levels == 3
    assert d.all_level == 2
    assert d.level_of("speed.L1") == 1
    assert d.generalize(13, 0, 1) == 3
    assert [dom.name for dom in d.domains] == [
        "speed.L0",
        "speed.L1",
        "ALL",
    ]


def test_repr_mentions_name():
    assert "speed" in repr(dim())
