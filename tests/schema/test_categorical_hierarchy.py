"""Tests for the imposed-order categorical hierarchy (Proposition 1)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DomainError, SchemaError
from repro.schema.categorical_hierarchy import CategoricalHierarchy

CHAINS = [
    ("madison", "wisconsin", "usa"),
    ("milwaukee", "wisconsin", "usa"),
    ("seattle", "washington", "usa"),
    ("seoul", "seoul-province", "korea"),
    ("busan", "south-gyeongsang", "korea"),
]


def geo():
    return CategoricalHierarchy(["City", "State", "Country"], CHAINS)


class TestConstruction:
    def test_domain_chain(self):
        h = geo()
        assert [d.name for d in h.domains] == [
            "City",
            "State",
            "Country",
            "ALL",
        ]

    def test_cardinalities(self):
        h = geo()
        assert h.level_cardinality(0) == 5
        assert h.level_cardinality(1) == 4
        assert h.level_cardinality(2) == 2

    def test_duplicate_chain_tolerated(self):
        CategoricalHierarchy(
            ["City", "Country"],
            [("a", "x"), ("a", "x"), ("b", "x")],
        )

    def test_conflicting_parents_rejected(self):
        with pytest.raises(SchemaError):
            CategoricalHierarchy(
                ["City", "Country"],
                [("paris", "france"), ("paris", "usa")],
            )

    def test_wrong_chain_length_rejected(self):
        with pytest.raises(SchemaError):
            CategoricalHierarchy(["City", "Country"], [("a",)])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            CategoricalHierarchy(["City"], [])


class TestEncodingAndGeneralization:
    def test_roundtrip_all_levels(self):
        h = geo()
        for chain in CHAINS:
            for level, label in enumerate(chain):
                code = h.encode(label, level)
                assert h.decode(code, level) == label

    def test_generalization_respects_chains(self):
        h = geo()
        for city, state, country in CHAINS:
            code = h.encode(city)
            assert h.decode(h.generalize(code, 0, 1), 1) == state
            assert h.decode(h.generalize(code, 0, 2), 2) == country
            assert h.generalize(code, 0, 3) == 0  # ALL

    def test_intermediate_generalization(self):
        h = geo()
        state_code = h.encode("wisconsin", 1)
        assert h.decode(h.generalize(state_code, 1, 2), 2) == "usa"

    def test_unknown_label_rejected(self):
        with pytest.raises(DomainError):
            geo().encode("atlantis")

    def test_bad_code_rejected(self):
        with pytest.raises(DomainError):
            geo().decode(99, 0)

    def test_parents_cover_contiguous_code_ranges(self):
        """The imposed order makes every parent a contiguous block of
        child codes — the property Proposition 1 needs."""
        h = geo()
        for level in (1, 2):
            seen = [
                h.generalize(code, 0, level)
                for code in range(h.level_cardinality(0))
            ]
            # Contiguity: the parent sequence never revisits a value.
            revisits = [
                value
                for i, value in enumerate(seen[1:], 1)
                if value != seen[i - 1] and value in seen[:i]
            ]
            assert revisits == []

    def test_format_value(self):
        h = geo()
        assert h.format_value(h.encode("seoul"), 0) == "seoul"
        assert h.format_value(0, h.all_level) == "ALL"

    def test_fanout_estimate(self):
        h = geo()
        assert h.fanout(0, 0) == 1
        assert h.fanout(0, 2) >= 1


@given(
    u=st.integers(min_value=0, max_value=4),
    v=st.integers(min_value=0, max_value=4),
    level=st.integers(min_value=0, max_value=3),
)
def test_categorical_generalization_monotone(u, v, level):
    """The encoding imposes Proposition 1's order."""
    h = geo()
    if u > v:
        u, v = v, u
    assert h.generalize(u, 0, level) <= h.generalize(v, 0, level)
