"""Tests for the calendar time hierarchy (Figure 1 of the paper)."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.errors import DomainError
from repro.schema.time_hierarchy import (
    DAY,
    HOUR,
    MONTH,
    SECOND,
    TIME_ALL,
    YEAR,
    TimeHierarchy,
    day_to_month,
    month_to_day,
)

#: 2038-ish bound keeps hypothesis inside the supported range.
MAX_TS = int(
    (
        datetime.datetime(2099, 12, 31) - datetime.datetime(1970, 1, 1)
    ).total_seconds()
)


def ts(year, month, day, hour=0, minute=0, second=0):
    """UNIX timestamp helper via the standard library (oracle)."""
    epoch = datetime.datetime(1970, 1, 1)
    moment = datetime.datetime(year, month, day, hour, minute, second)
    return int((moment - epoch).total_seconds())


class TestChain:
    def test_domain_names_match_figure_1(self):
        h = TimeHierarchy()
        assert [d.name for d in h.domains] == [
            "Second",
            "Hour",
            "Day",
            "Month",
            "Year",
            "ALL",
        ]

    def test_level_constants(self):
        assert (SECOND, HOUR, DAY, MONTH, YEAR, TIME_ALL) == tuple(range(6))


class TestCalendarCorrectness:
    def test_hour_and_day(self):
        h = TimeHierarchy()
        t = ts(2002, 2, 14, 13, 45, 7)
        assert h.generalize(t, SECOND, HOUR) == t // 3600
        assert h.generalize(t, SECOND, DAY) == t // 86400

    def test_month_against_datetime(self):
        h = TimeHierarchy()
        for y, m, d in [
            (1970, 1, 1),
            (1972, 2, 29),  # leap day
            (1999, 12, 31),
            (2000, 2, 29),  # century leap year
            (2002, 2, 14),
            (2038, 1, 19),
        ]:
            t = ts(y, m, d, 12)
            expected_month = (y - 1970) * 12 + (m - 1)
            assert h.generalize(t, SECOND, MONTH) == expected_month
            assert h.generalize(t, SECOND, YEAR) == y - 1970

    def test_1900_rule_not_applicable_but_2100_is_common_year(self):
        # 2100 is divisible by 100 but not 400: 28-day February.
        feb28 = day_to_month(month_to_day((2100 - 1970) * 12 + 1) + 27)
        mar1 = day_to_month(month_to_day((2100 - 1970) * 12 + 1) + 28)
        assert feb28 == (2100 - 1970) * 12 + 1
        assert mar1 == (2100 - 1970) * 12 + 2

    def test_intermediate_level_generalization(self):
        h = TimeHierarchy()
        t = ts(2002, 2, 14, 13)
        hour = h.generalize(t, SECOND, HOUR)
        day = h.generalize(hour, HOUR, DAY)
        month = h.generalize(day, DAY, MONTH)
        year = h.generalize(month, MONTH, YEAR)
        assert day == t // 86400
        assert month == (2002 - 1970) * 12 + 1
        assert year == 2002 - 1970

    def test_negative_timestamp_rejected(self):
        with pytest.raises(DomainError):
            TimeHierarchy().generalize(-1, SECOND, DAY)

    def test_out_of_range_day_rejected(self):
        with pytest.raises(DomainError):
            day_to_month(10**7)
        with pytest.raises(DomainError):
            month_to_day(-1)


class TestFormatting:
    def test_format_values(self):
        h = TimeHierarchy()
        t = ts(2002, 2, 14, 13)
        assert h.format_value(t // 3600, HOUR) == "2002-02-14T13h"
        assert h.format_value(t // 86400, DAY) == "2002-02-14"
        assert h.format_value((2002 - 1970) * 12 + 1, MONTH) == "2002-02"
        assert h.format_value(2002 - 1970, YEAR) == "2002"
        assert h.format_value(0, TIME_ALL) == "ALL"


class TestEstimates:
    def test_fanout_steps(self):
        h = TimeHierarchy()
        assert h.fanout(SECOND, HOUR) == 3600
        assert h.fanout(HOUR, DAY) == 24
        assert h.fanout(DAY, MONTH) == 30
        assert h.fanout(MONTH, YEAR) == 12
        assert h.fanout(HOUR, MONTH) == 24 * 30
        assert h.fanout(DAY, DAY) == 1

    def test_level_cardinality_scales_with_span(self):
        assert TimeHierarchy(span_years=2).level_cardinality(DAY) == 730
        assert TimeHierarchy(span_years=1).level_cardinality(TIME_ALL) == 1


@given(
    u=st.integers(min_value=0, max_value=MAX_TS),
    v=st.integers(min_value=0, max_value=MAX_TS),
    level=st.integers(min_value=0, max_value=5),
)
def test_time_generalization_monotone(u, v, level):
    """Proposition 1 for the calendar chain."""
    h = TimeHierarchy()
    if u > v:
        u, v = v, u
    assert h.generalize(u, SECOND, level) <= h.generalize(v, SECOND, level)


@given(t=st.integers(min_value=0, max_value=MAX_TS))
def test_month_matches_datetime_oracle(t):
    """Calendar arithmetic agrees with the standard library."""
    h = TimeHierarchy()
    moment = datetime.datetime(1970, 1, 1) + datetime.timedelta(seconds=t)
    expected = (moment.year - 1970) * 12 + (moment.month - 1)
    assert h.generalize(t, SECOND, MONTH) == expected
    assert h.generalize(t, SECOND, YEAR) == moment.year - 1970


@given(
    t=st.integers(min_value=0, max_value=MAX_TS),
    mid=st.integers(min_value=0, max_value=5),
    top=st.integers(min_value=0, max_value=5),
)
def test_time_generalization_consistent(t, mid, top):
    h = TimeHierarchy()
    if mid > top:
        mid, top = top, mid
    via = h.generalize(h.generalize(t, SECOND, mid), mid, top)
    assert via == h.generalize(t, SECOND, top)
