"""Tests for the target-port hierarchy (Port < PortRange < ALL)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DomainError
from repro.schema.port_hierarchy import (
    PORT,
    PORT_ALL,
    PORT_RANGE,
    PortHierarchy,
)


class TestGeneralization:
    def test_block_mapping(self):
        h = PortHierarchy()
        assert h.generalize(80, PORT, PORT_RANGE) == 0
        assert h.generalize(445, PORT, PORT_RANGE) == 1
        assert h.generalize(65535, PORT, PORT_RANGE) == 255

    def test_to_all(self):
        h = PortHierarchy()
        assert h.generalize(8080, PORT, PORT_ALL) == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(DomainError):
            PortHierarchy().generalize(70000, PORT, PORT_RANGE)

    def test_format(self):
        h = PortHierarchy()
        assert h.format_value(22, PORT) == "22"
        assert h.format_value(1, PORT_RANGE) == "[256..511]"
        assert h.format_value(0, PORT_ALL) == "ALL"


class TestEstimates:
    def test_fanout(self):
        h = PortHierarchy()
        assert h.fanout(PORT, PORT_RANGE) == 256
        assert h.fanout(PORT, PORT) == 1
        assert h.fanout(PORT, PORT_ALL) == 65536
        with pytest.raises(DomainError):
            h.fanout(PORT_RANGE, PORT)

    def test_cardinality(self):
        h = PortHierarchy()
        assert h.level_cardinality(PORT) == 65536
        assert h.level_cardinality(PORT_RANGE) == 256
        assert h.level_cardinality(PORT_ALL) == 1


@given(
    u=st.integers(min_value=0, max_value=65535),
    v=st.integers(min_value=0, max_value=65535),
)
def test_port_generalization_monotone(u, v):
    h = PortHierarchy()
    if u > v:
        u, v = v, u
    assert h.generalize(u, PORT, PORT_RANGE) <= h.generalize(
        v, PORT, PORT_RANGE
    )
