"""Tests for the IPv4 hierarchy (IP < /24 < /16 < /8 < ALL)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DomainError
from repro.schema.ip_hierarchy import (
    IP,
    IP_ALL,
    SLASH8,
    SLASH16,
    SLASH24,
    IPv4Hierarchy,
    format_ip,
    parse_ip,
)


class TestParseFormat:
    def test_parse_known(self):
        assert parse_ip("0.0.0.0") == 0
        assert parse_ip("255.255.255.255") == (1 << 32) - 1
        assert parse_ip("10.0.0.1") == (10 << 24) | 1

    def test_format_known(self):
        assert format_ip((192 << 24) | (168 << 16) | (1 << 8) | 7) == (
            "192.168.1.7"
        )

    def test_malformed_rejected(self):
        for bad in ("1.2.3", "1.2.3.4.5", "1.2.3.256", "a.b.c.d"):
            with pytest.raises((DomainError, ValueError)):
                parse_ip(bad)

    def test_format_out_of_range(self):
        with pytest.raises(DomainError):
            format_ip(1 << 32)
        with pytest.raises(DomainError):
            format_ip(-1)


class TestGeneralization:
    def test_paper_24_subnet_example(self):
        """gamma_/24(a.b.c.d) drops the host octet (Section 2.1)."""
        h = IPv4Hierarchy()
        ip = parse_ip("120.32.32.4")
        assert h.generalize(ip, IP, SLASH24) == ip >> 8
        assert h.format_value(ip >> 8, SLASH24) == "120.32.32.*/24"

    def test_all_levels(self):
        h = IPv4Hierarchy()
        ip = parse_ip("10.20.30.40")
        assert h.generalize(ip, IP, SLASH16) == (10 << 8) | 20
        assert h.generalize(ip, IP, SLASH8) == 10
        assert h.generalize(ip, IP, IP_ALL) == 0

    def test_between_intermediate_levels(self):
        h = IPv4Hierarchy()
        sub24 = parse_ip("10.20.30.40") >> 8
        assert h.generalize(sub24, SLASH24, SLASH8) == 10

    def test_out_of_range_rejected(self):
        with pytest.raises(DomainError):
            IPv4Hierarchy().generalize(1 << 33, IP, SLASH24)

    def test_format_value_levels(self):
        h = IPv4Hierarchy()
        assert h.format_value(parse_ip("1.2.3.4"), IP) == "1.2.3.4"
        assert h.format_value(10, SLASH8) == "10.*/8"
        assert h.format_value(0, IP_ALL) == "ALL"


class TestEstimates:
    def test_fanout(self):
        h = IPv4Hierarchy()
        assert h.fanout(IP, SLASH24) == 256
        assert h.fanout(IP, SLASH16) == 65536
        assert h.fanout(SLASH24, SLASH16) == 256

    def test_cardinality_uses_active_hosts(self):
        h = IPv4Hierarchy(active_hosts=1 << 12)
        assert h.level_cardinality(IP) == 1 << 12
        assert h.level_cardinality(SLASH24) == 1 << 4
        assert h.level_cardinality(IP_ALL) == 1

    def test_cardinality_capped_by_structure(self):
        # The shift model scales the host estimate down per level but
        # can never exceed the structural prefix count.
        h = IPv4Hierarchy(active_hosts=1 << 30)
        assert h.level_cardinality(SLASH8) == min(1 << 8, 1 << 6)
        assert h.level_cardinality(SLASH16) <= 1 << 16


@given(value=st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_parse_format_roundtrip(value):
    assert parse_ip(format_ip(value)) == value


@given(
    u=st.integers(min_value=0, max_value=(1 << 32) - 1),
    v=st.integers(min_value=0, max_value=(1 << 32) - 1),
    level=st.integers(min_value=0, max_value=4),
)
def test_ip_generalization_monotone(u, v, level):
    h = IPv4Hierarchy()
    if u > v:
        u, v = v, u
    assert h.generalize(u, IP, level) <= h.generalize(v, IP, level)
