"""Tests for domains and the Hierarchy base class."""

import pytest

from repro.errors import DomainError, SchemaError
from repro.schema.domain import ALL_VALUE, Domain, Hierarchy
from repro.schema.numeric_hierarchy import UniformHierarchy


class TestDomain:
    def test_base_domain_fields(self):
        dom = Domain("Hour", 1)
        assert dom.name == "Hour"
        assert dom.level == 1
        assert not dom.is_all

    def test_all_domain_flag(self):
        assert Domain("ALL", 5).is_all

    def test_negative_level_rejected(self):
        with pytest.raises(SchemaError):
            Domain("x", -1)

    def test_str(self):
        assert str(Domain("Day", 2)) == "Day"


class TestHierarchyStructure:
    def test_all_domain_appended_automatically(self):
        h = UniformHierarchy("d", levels=2, fanout=3)
        assert [d.name for d in h.domains] == ["d.L0", "d.L1", "ALL"]
        assert h.num_levels == 3
        assert h.all_level == 2

    def test_explicit_all_rejected(self):
        with pytest.raises(SchemaError):
            Hierarchy(["base", "ALL"])

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(SchemaError):
            Hierarchy([])

    def test_level_of(self):
        h = UniformHierarchy("d", levels=2, fanout=3)
        assert h.level_of("d.L0") == 0
        assert h.level_of("ALL") == 2

    def test_level_of_unknown_raises(self):
        h = UniformHierarchy("d", levels=2, fanout=3)
        with pytest.raises(DomainError):
            h.level_of("Week")

    def test_domain_accessor_validates(self):
        h = UniformHierarchy("d", levels=2, fanout=3)
        assert h.domain(1).name == "d.L1"
        with pytest.raises(DomainError):
            h.domain(7)


class TestGeneralize:
    def test_same_level_is_identity(self):
        h = UniformHierarchy("d", levels=3, fanout=10)
        assert h.generalize(123, 1, 1) == 123

    def test_to_all_is_all_value(self):
        h = UniformHierarchy("d", levels=3, fanout=10)
        assert h.generalize(999, 0, h.all_level) == ALL_VALUE

    def test_downward_rejected(self):
        h = UniformHierarchy("d", levels=3, fanout=10)
        with pytest.raises(DomainError):
            h.generalize(5, 2, 1)

    def test_bad_level_rejected(self):
        h = UniformHierarchy("d", levels=3, fanout=10)
        with pytest.raises(DomainError):
            h.generalize(5, 0, 9)

    def test_consistency_composition(self):
        """gamma must compose: base->mid->top == base->top (S2.1)."""
        h = UniformHierarchy("d", levels=3, fanout=10)
        for value in range(0, 1000, 37):
            via_mid = h.generalize(h.generalize(value, 0, 1), 1, 2)
            direct = h.generalize(value, 0, 2)
            assert via_mid == direct


class TestMapper:
    def test_identity_mapper_is_none(self):
        h = UniformHierarchy("d", levels=3, fanout=10)
        assert h.mapper(1, 1) is None

    def test_all_mapper_constant(self):
        h = UniformHierarchy("d", levels=3, fanout=10)
        fn = h.mapper(0, h.all_level)
        assert fn(12345) == ALL_VALUE

    def test_mapper_matches_generalize(self):
        h = UniformHierarchy("d", levels=3, fanout=10)
        for from_level in range(3):
            for to_level in range(from_level, 4):
                fn = h.mapper(from_level, to_level)
                for value in (0, 7, 99, 500):
                    expected = h.generalize(value, from_level, to_level)
                    got = value if fn is None else fn(value)
                    assert got == expected

    def test_mapper_validates_levels(self):
        h = UniformHierarchy("d", levels=3, fanout=10)
        with pytest.raises(DomainError):
            h.mapper(2, 0)

    def test_format_value_defaults(self):
        h = UniformHierarchy("d", levels=2, fanout=3)
        assert h.format_value(4, 0) == "4"
        assert h.format_value(0, h.all_level) == "ALL"
