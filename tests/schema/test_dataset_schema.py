"""Tests for dataset schemas and the standard schema factories."""

import pytest

from repro.errors import SchemaError
from repro.schema.dataset_schema import (
    DatasetSchema,
    network_log_schema,
    synthetic_schema,
)
from repro.schema.dimension import Dimension
from repro.schema.numeric_hierarchy import UniformHierarchy


def two_dim_schema():
    return DatasetSchema(
        [
            Dimension("alpha", UniformHierarchy("alpha", 2, 4), "a"),
            Dimension("beta", UniformHierarchy("beta", 2, 4), "b"),
        ],
        measures=("value",),
    )


class TestLookups:
    def test_dim_index_by_name_and_abbrev(self):
        s = two_dim_schema()
        assert s.dim_index("alpha") == 0
        assert s.dim_index("a") == 0
        assert s.dim_index("b") == 1

    def test_unknown_dimension(self):
        with pytest.raises(SchemaError):
            two_dim_schema().dim_index("gamma")

    def test_measure_index_offsets_past_dims(self):
        s = two_dim_schema()
        assert s.measure_index("value") == 2
        with pytest.raises(SchemaError):
            s.measure_index("other")

    def test_field_index_resolves_both(self):
        s = two_dim_schema()
        assert s.field_index("beta") == 1
        assert s.field_index("value") == 2

    def test_record_width(self):
        assert two_dim_schema().record_width == 3


class TestValidation:
    def test_duplicate_dimension_names(self):
        dim = Dimension("x", UniformHierarchy("x", 2, 4))
        with pytest.raises(SchemaError):
            DatasetSchema([dim, Dimension("x", UniformHierarchy("x", 2, 4))])

    def test_dimension_measure_overlap(self):
        dim = Dimension("x", UniformHierarchy("x", 2, 4))
        with pytest.raises(SchemaError):
            DatasetSchema([dim], measures=("x",))

    def test_empty_dimensions(self):
        with pytest.raises(SchemaError):
            DatasetSchema([])

    def test_validate_record_shape(self):
        s = two_dim_schema()
        s.validate_record((1, 2, 3.5))
        with pytest.raises(SchemaError):
            s.validate_record((1, 2))
        with pytest.raises(SchemaError):
            s.validate_record((1.5, 2, 3.0))  # dim must be int

    def test_validate_records_iterates(self):
        s = two_dim_schema()
        with pytest.raises(SchemaError):
            s.validate_records([(1, 2, 3.0), (1,)])


class TestFactories:
    def test_network_log_schema_matches_table_1(self):
        s = network_log_schema()
        assert [d.name for d in s.dimensions] == [
            "Timestamp",
            "Source",
            "Target",
            "TargetPort",
        ]
        assert [d.abbrev for d in s.dimensions] == ["t", "U", "T", "P"]
        assert s.measures == ()  # the Dshield set has none

    def test_synthetic_schema_defaults(self):
        s = synthetic_schema()
        assert s.num_dimensions == 4
        assert s.measures == ("v",)
        # Four domains per attribute: 3 non-ALL + ALL (Section 7.1).
        assert all(d.num_levels == 4 for d in s.dimensions)
