"""Tests for the Tables 2-4 SQL rendering of AW-RA expressions."""

import pytest

from repro.errors import AlgebraError
from repro.algebra.predicates import Field, RawPredicate
from repro.algebra.sql import predicate_to_sql, to_sql
from repro.queries.examples import examples_workflow
from repro.schema.dataset_schema import network_log_schema


@pytest.fixture(scope="module")
def exprs():
    return examples_workflow(network_log_schema()).to_algebra()


class TestPredicates:
    def test_comparisons(self):
        assert predicate_to_sql(Field("M") > 5) == "M > 5"
        assert predicate_to_sql(Field("M") == 5) == "M = 5"
        assert predicate_to_sql(Field("M") != 5) == "M <> 5"

    def test_connectives(self):
        pred = (Field("M") > 5) & ~(Field("M") > 9)
        assert predicate_to_sql(pred) == "(M > 5 AND NOT (M > 9))"

    def test_raw_predicate_rejected(self):
        with pytest.raises(AlgebraError):
            predicate_to_sql(RawPredicate(fact_fn=lambda r: True))


class TestExampleQueries:
    def test_example1_is_group_by(self, exprs):
        sql = to_sql(exprs["Count"])
        assert "GROUP BY" in sql
        assert "COUNT(*)" in sql
        assert "GAMMA_T_HOUR" in sql  # time generalized to Hour
        assert "FROM D" in sql

    def test_example2_nests_the_filter(self, exprs):
        sql = to_sql(exprs["sCount"])
        assert "WHERE M > 5" in sql
        assert sql.count("WITH") == 1
        # Two levels of aggregation: the inner Count, the outer count.
        assert sql.count("GROUP BY") == 2

    def test_example4_left_outer_join_with_window(self, exprs):
        sql = to_sql(exprs["avgCount"])
        assert "LEFT OUTER JOIN" in sql
        assert "BETWEEN S.t_Hour - 0 AND S.t_Hour + 5" in sql
        assert "AVG(T.M)" in sql

    def test_example5_chains_joins(self, exprs):
        """Table 4: one LEFT OUTER JOIN per combine input."""
        sql = to_sql(exprs["ratio"])
        assert sql.count("LEFT OUTER JOIN") >= 3
        assert sql.strip().endswith(";")

    def test_shared_subexpressions_emitted_once(self, exprs):
        sql = to_sql(exprs["ratio"])
        # The hourly Count CTE appears once even though three measures
        # derive from it.
        assert sql.count("U AS U_IP") == 1

    def test_fact_table_alone(self):
        from repro.algebra.expr import FactTable

        schema = network_log_schema()
        assert to_sql(FactTable(schema)) == "SELECT * FROM D;"
