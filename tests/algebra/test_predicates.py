"""Tests for selection predicates."""

import pytest

from repro.errors import AlgebraError
from repro.algebra.predicates import (
    Comparison,
    Field,
    RawPredicate,
)
from repro.cube.granularity import Granularity
from repro.schema.dataset_schema import synthetic_schema


@pytest.fixture(scope="module")
def schema():
    return synthetic_schema(num_dimensions=2, levels=3, fanout=4)


@pytest.fixture(scope="module")
def hour_gran(schema):
    return Granularity.from_spec(schema, {"d0": "d0.L1"})


class TestFieldBuilder:
    def test_comparisons_build(self):
        pred = Field("M") > 5
        assert isinstance(pred, Comparison)
        assert (pred.field, pred.op, pred.value) == ("M", ">", 5)

    def test_all_operators(self):
        field = Field("M")
        for pred, op in [
            (field == 1, "=="),
            (field != 1, "!="),
            (field < 1, "<"),
            (field <= 1, "<="),
            (field > 1, ">"),
            (field >= 1, ">="),
        ]:
            assert pred.op == op

    def test_unknown_operator_rejected(self):
        with pytest.raises(AlgebraError):
            Comparison("M", "~", 1)


class TestFactCompilation:
    def test_dimension_comparison(self, schema):
        pred = (Field("d0") >= 8).compile_for_fact(schema)
        assert pred((8, 0, 0.0))
        assert not pred((7, 0, 0.0))

    def test_measure_attribute_comparison(self, schema):
        pred = (Field("v") > 0.5).compile_for_fact(schema)
        assert pred((0, 0, 0.9))
        assert not pred((0, 0, 0.1))

    def test_none_never_satisfies(self, schema):
        pred = (Field("v") > 0).compile_for_fact(schema)
        assert not pred((0, 0, None))

    def test_unknown_field_rejected(self, schema):
        with pytest.raises(Exception):
            (Field("nope") > 1).compile_for_fact(schema)


class TestMeasureCompilation:
    def test_measure_value(self, schema, hour_gran):
        pred = (Field("M") > 5).compile_for_measure(schema, hour_gran)
        assert pred((1, 0), 6)
        assert not pred((1, 0), 5)
        assert not pred((1, 0), None)

    def test_dimension_key(self, schema, hour_gran):
        pred = (Field("d0") == 3).compile_for_measure(schema, hour_gran)
        assert pred((3, 0), 99)
        assert not pred((2, 0), 99)

    def test_all_dimension_rejected(self, schema, hour_gran):
        # d1 is at ALL in this granularity: predicates on it are invalid.
        with pytest.raises(AlgebraError):
            (Field("d1") == 0).compile_for_measure(schema, hour_gran)


class TestConnectives:
    def test_and_or_not(self, schema, hour_gran):
        both = (Field("M") > 2) & (Field("d0") == 1)
        either = (Field("M") > 100) | (Field("d0") == 1)
        negated = ~(Field("M") > 2)
        and_fn = both.compile_for_measure(schema, hour_gran)
        or_fn = either.compile_for_measure(schema, hour_gran)
        not_fn = negated.compile_for_measure(schema, hour_gran)
        assert and_fn((1, 0), 5) and not and_fn((2, 0), 5)
        assert or_fn((1, 0), 0) and not or_fn((2, 0), 0)
        assert not_fn((0, 0), 1) and not not_fn((0, 0), 5)

    def test_references_measure_propagates(self):
        assert (Field("M") > 1).references_measure()
        assert not (Field("d0") > 1).references_measure()
        assert ((Field("d0") > 1) & (Field("M") > 1)).references_measure()
        assert not (~(Field("d0") > 1)).references_measure()

    def test_repr_readable(self):
        assert repr((Field("M") > 5) & (Field("d0") == 1)) == (
            "(M > 5) AND (d0 == 1)"
        )


class TestRawPredicate:
    def test_wraps_callables(self, schema, hour_gran):
        raw = RawPredicate(
            fact_fn=lambda record: record[0] % 2 == 0,
            measure_fn=lambda key, value: value is not None and value > 1,
            reads_measure=True,
        )
        assert raw.compile_for_fact(schema)((2, 0, 0.0))
        assert raw.compile_for_measure(schema, hour_gran)((0, 0), 2)
        assert raw.references_measure()

    def test_missing_form_rejected(self, schema, hour_gran):
        raw = RawPredicate(fact_fn=lambda r: True)
        raw.compile_for_fact(schema)
        with pytest.raises(AlgebraError):
            raw.compile_for_measure(schema, hour_gran)
