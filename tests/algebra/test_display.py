"""Tests for algebra pretty-printing (explain / to_formula)."""

from repro.algebra.display import explain, to_formula
from repro.queries.examples import examples_workflow
from repro.schema.dataset_schema import network_log_schema


def exprs():
    return examples_workflow(network_log_schema()).to_algebra()


def test_formula_matches_paper_notation():
    formula = to_formula(exprs()["sCount"])
    assert formula.startswith("g[(t:Hour),count(M)]")
    assert "σ[M > 5]" in formula
    assert formula.endswith("(D)))")


def test_explain_indents_operator_tree():
    text = explain(exprs()["avgCount"])
    lines = text.splitlines()
    assert lines[0].startswith("MatchJoin")
    assert any(line.strip().startswith("FactTable D") for line in lines)
    assert any("keys:" in line for line in lines)
    assert any("measures:" in line for line in lines)
    # Children are indented under their parents.
    assert any(line.startswith("    ") for line in lines)


def test_explain_combine_join_lists_inputs():
    text = explain(exprs()["ratio"])
    assert text.count("input[") == 2
    assert "CombineJoin" in text


def test_explain_select_and_aggregate():
    text = explain(exprs()["sTraffic"])
    assert "Aggregate" in text
    assert "Select" in text
