"""Tests for AW-RA expression construction rules (Table 5)."""

import pytest

from repro.errors import AlgebraError
from repro.aggregates.base import AggSpec
from repro.algebra.conditions import ChildParent, SelfMatch, Sibling
from repro.algebra.expr import (
    Aggregate,
    CombineFn,
    CombineJoin,
    FactTable,
    MatchJoin,
    Select,
)
from repro.algebra.predicates import Field
from repro.cube.granularity import Granularity
from repro.schema.dataset_schema import synthetic_schema


@pytest.fixture(scope="module")
def schema():
    return synthetic_schema(num_dimensions=2, levels=3, fanout=4)


@pytest.fixture(scope="module")
def fact(schema):
    return FactTable(schema)


def count_at(fact, spec):
    gran = Granularity.from_spec(fact.schema, spec)
    return Aggregate(fact, gran, AggSpec("count", "*"))


class TestFactTable:
    def test_base_granularity(self, fact, schema):
        assert fact.granularity == Granularity.base(schema)
        assert fact.is_fact_like()


class TestSelect:
    def test_preserves_granularity_and_fact_likeness(self, fact):
        selected = Select(fact, Field("d0") > 1)
        assert selected.granularity == fact.granularity
        assert selected.is_fact_like()  # sigma(D) is still fact-like
        assert Select(selected, Field("d0") > 2).is_fact_like()

    def test_requires_predicate(self, fact):
        with pytest.raises(AlgebraError):
            Select(fact, lambda r: True)

    def test_where_fluent(self, fact):
        assert isinstance(fact.where(Field("d0") > 1), Select)


class TestAggregate:
    def test_requires_finer_input(self, fact):
        coarse = count_at(fact, {"d0": "d0.L1"})
        fine_gran = Granularity.base(fact.schema)
        with pytest.raises(AlgebraError):
            Aggregate(coarse, fine_gran, AggSpec("count", "*"))

    def test_measure_tables_only_carry_m(self, fact):
        coarse = count_at(fact, {"d0": "d0.L0"})
        top = Granularity.from_spec(fact.schema, {"d0": "d0.L1"})
        with pytest.raises(AlgebraError):
            Aggregate(coarse, top, AggSpec("sum", "v"))

    def test_fact_measure_attributes_allowed(self, fact):
        gran = Granularity.from_spec(fact.schema, {"d0": "d0.L0"})
        expr = Aggregate(fact, gran, AggSpec("sum", "v"))
        assert expr.granularity == gran

    def test_requires_agg_spec(self, fact):
        gran = Granularity.from_spec(fact.schema, {"d0": "d0.L0"})
        with pytest.raises(AlgebraError):
            Aggregate(fact, gran, "count")


class TestMatchJoin:
    def test_bans_fact_like_target(self, fact):
        source = count_at(fact, {"d0": "d0.L0"})
        with pytest.raises(AlgebraError):
            MatchJoin(fact, source, SelfMatch(), AggSpec("avg", "M"))
        with pytest.raises(AlgebraError):
            MatchJoin(
                Select(fact, Field("d0") > 1),
                source,
                SelfMatch(),
                AggSpec("avg", "M"),
            )

    def test_condition_validated(self, fact):
        a = count_at(fact, {"d0": "d0.L0"})
        b = count_at(fact, {"d0": "d0.L1"})
        with pytest.raises(AlgebraError):
            MatchJoin(a, b, SelfMatch(), AggSpec("avg", "M"))

    def test_sibling_join_builds(self, fact):
        a = count_at(fact, {"d0": "d0.L0"})
        b = count_at(fact, {"d0": "d0.L0"})
        join = MatchJoin(a, b, Sibling({"d0": (0, 2)}), AggSpec("avg", "M"))
        assert join.granularity == a.granularity

    def test_cp_join_builds(self, fact):
        child = count_at(fact, {"d0": "d0.L0"})
        parent_cells = count_at(fact, {"d0": "d0.L1"})
        join = MatchJoin(
            parent_cells, child, ChildParent(), AggSpec("sum", "M")
        )
        assert join.granularity == parent_cells.granularity

    def test_aggregates_m_only(self, fact):
        a = count_at(fact, {"d0": "d0.L0"})
        with pytest.raises(AlgebraError):
            MatchJoin(a, a, SelfMatch(), AggSpec("sum", "v"))


class TestCombineJoin:
    def test_requires_equal_granularities(self, fact):
        a = count_at(fact, {"d0": "d0.L0"})
        b = count_at(fact, {"d0": "d0.L1"})
        with pytest.raises(AlgebraError):
            CombineJoin(a, [b], CombineFn(lambda x, y: x))

    def test_bans_fact_like_inputs(self, fact):
        a = count_at(fact, {"d0": "d0.L0"})
        with pytest.raises(AlgebraError):
            CombineJoin(fact, [a], CombineFn(lambda x, y: x))
        with pytest.raises(AlgebraError):
            CombineJoin(a, [fact], CombineFn(lambda x, y: x))

    def test_requires_inputs_and_fn(self, fact):
        a = count_at(fact, {"d0": "d0.L0"})
        with pytest.raises(AlgebraError):
            CombineJoin(a, [], CombineFn(lambda x: x))
        with pytest.raises(AlgebraError):
            CombineJoin(a, [a], lambda x, y: x)


class TestCombineFn:
    def test_null_short_circuit(self):
        fn = CombineFn(lambda a, b: a + b, name="add")
        assert fn(1, 2) == 3
        assert fn(1, None) is None

    def test_handles_null_passthrough(self):
        fn = CombineFn(
            lambda a, b: (a or 0) + (b or 0), handles_null=True
        )
        assert fn(1, None) == 1
