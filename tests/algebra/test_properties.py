"""Tests for the Theorem 1 rewrite rules — checked semantically.

Each rewrite is verified by evaluating the original and rewritten
expressions over real data and comparing the resulting measure tables,
not just structurally.
"""

import random

import pytest

from repro.aggregates.base import AggSpec
from repro.algebra.conditions import ChildParent
from repro.algebra.expr import (
    Aggregate,
    CombineFn,
    CombineJoin,
    FactTable,
    MatchJoin,
    Select,
)
from repro.algebra.predicates import Field
from repro.algebra.properties import (
    cells,
    collapse_aggregations,
    match_join_as_aggregate,
    push_selection_below_aggregate,
    reorder_combine_inputs,
    simplify,
    split_combine_join,
)
from repro.cube.granularity import Granularity
from repro.engine.compile import compile_measures
from repro.engine.single_scan import SingleScanEngine
from repro.schema.dataset_schema import synthetic_schema
from repro.storage.table import InMemoryDataset


@pytest.fixture(scope="module")
def schema():
    return synthetic_schema(num_dimensions=2, levels=3, fanout=4)


@pytest.fixture(scope="module")
def dataset(schema):
    rng = random.Random(7)
    records = [
        (rng.randrange(64), rng.randrange(64), float(rng.randrange(10)))
        for __ in range(800)
    ]
    return InMemoryDataset(schema, records)


def evaluate(expr, dataset):
    graph = compile_measures({"out": expr})
    result = SingleScanEngine().evaluate(dataset, graph)
    return result["out"].rows


def assert_equivalent(original, rewritten, dataset):
    assert evaluate(original, dataset) == evaluate(rewritten, dataset)


class TestProperty1Collapse:
    def test_sum_of_sums_collapses(self, schema, dataset):
        fact = FactTable(schema)
        mid = Granularity.from_spec(schema, {"d0": "d0.L0"})
        top = Granularity.from_spec(schema, {"d0": "d0.L1"})
        nested = Aggregate(
            Aggregate(fact, mid, AggSpec("sum", "v")),
            top,
            AggSpec("sum", "M"),
        )
        collapsed = collapse_aggregations(nested)
        assert isinstance(collapsed.child, FactTable)
        assert_equivalent(nested, collapsed, dataset)

    def test_sum_of_counts_collapses_to_count(self, schema, dataset):
        fact = FactTable(schema)
        mid = Granularity.from_spec(schema, {"d0": "d0.L0"})
        top = Granularity.from_spec(schema, {"d0": "d0.L1"})
        nested = Aggregate(
            Aggregate(fact, mid, AggSpec("count", "*")),
            top,
            AggSpec("sum", "M"),
        )
        collapsed = collapse_aggregations(nested)
        assert collapsed.agg.function.name == "count"
        assert_equivalent(nested, collapsed, dataset)

    def test_min_and_max_collapse(self, schema, dataset):
        fact = FactTable(schema)
        mid = Granularity.from_spec(schema, {"d0": "d0.L0"})
        top = Granularity.from_spec(schema, {"d0": "d0.L1"})
        for name in ("min", "max"):
            nested = Aggregate(
                Aggregate(fact, mid, AggSpec(name, "v")),
                top,
                AggSpec(name, "M"),
            )
            collapsed = collapse_aggregations(nested)
            assert isinstance(collapsed.child, FactTable)
            assert_equivalent(nested, collapsed, dataset)

    def test_avg_of_avgs_not_collapsed(self, schema):
        """AVG is algebraic, not distributive: no rewrite may fire
        (average of averages is not the average)."""
        fact = FactTable(schema)
        mid = Granularity.from_spec(schema, {"d0": "d0.L0"})
        top = Granularity.from_spec(schema, {"d0": "d0.L1"})
        nested = Aggregate(
            Aggregate(fact, mid, AggSpec("avg", "v")),
            top,
            AggSpec("avg", "M"),
        )
        assert collapse_aggregations(nested) is nested

    def test_count_of_counts_not_collapsed(self, schema):
        """COUNT of COUNT is region counting — it must NOT collapse."""
        fact = FactTable(schema)
        mid = Granularity.from_spec(schema, {"d0": "d0.L0"})
        top = Granularity.from_spec(schema, {"d0": "d0.L1"})
        nested = Aggregate(
            Aggregate(fact, mid, AggSpec("count", "*")),
            top,
            AggSpec("count", "M"),
        )
        assert collapse_aggregations(nested) is nested


class TestProperty2PushSelection:
    def test_dimension_selection_pushes_below(self, schema, dataset):
        fact = FactTable(schema)
        gran = Granularity.from_spec(schema, {"d0": "d0.L1"})
        original = Select(
            Aggregate(fact, gran, AggSpec("count", "*")),
            Field("d0") >= 2,
        )
        pushed = push_selection_below_aggregate(original)
        assert isinstance(pushed, Aggregate)
        assert isinstance(pushed.child, Select)
        assert_equivalent(original, pushed, dataset)

    def test_measure_selection_not_pushed(self, schema):
        fact = FactTable(schema)
        gran = Granularity.from_spec(schema, {"d0": "d0.L1"})
        original = Select(
            Aggregate(fact, gran, AggSpec("count", "*")),
            Field("M") > 5,
        )
        assert push_selection_below_aggregate(original) is original


class TestProperty3NonAssociativity:
    def test_match_join_is_not_associative(self, schema, dataset):
        """(S >< T) >< U differs from S >< (T >< U) in general.

        With a sliding-window condition and SUM on both joins, the
        left association windows U once, while the right association
        windows it twice (a double smoothing) — different results.
        """
        from repro.algebra.conditions import Sibling

        fact = FactTable(schema)
        gran = Granularity.from_spec(schema, {"d0": "d0.L0"})
        s = Aggregate(fact, gran, AggSpec("count", "*"))
        t = Aggregate(fact, gran, AggSpec("sum", "v"))
        u = Aggregate(fact, gran, AggSpec("max", "v"))
        window = Sibling({"d0": (0, 1)})
        agg = AggSpec("sum", "M")
        left = MatchJoin(
            MatchJoin(s, t, window, agg), u, window, agg
        )
        right = MatchJoin(
            s, MatchJoin(t, u, window, agg), window, agg
        )
        assert evaluate(left, dataset) != evaluate(right, dataset)


class TestProperty4Reorder:
    def test_permuted_inputs_equivalent(self, schema, dataset):
        fact = FactTable(schema)
        gran = Granularity.from_spec(schema, {"d0": "d0.L0"})
        base = Aggregate(fact, gran, AggSpec("count", "*"))
        t1 = Aggregate(fact, gran, AggSpec("sum", "v"))
        t2 = Aggregate(fact, gran, AggSpec("max", "v"))
        t3 = Aggregate(fact, gran, AggSpec("min", "v"))
        fn = CombineFn(
            lambda c, a, b, d: (c or 0) + 2 * (a or 0) - (b or 0) * (d or 0),
            handles_null=True,
        )
        original = CombineJoin(base, [t1, t2, t3], fn)
        permuted = reorder_combine_inputs(original, [2, 0, 1])
        assert [expr for expr in permuted.inputs] == [t3, t1, t2]
        assert evaluate(original, dataset) == pytest.approx(
            evaluate(permuted, dataset)
        ) or evaluate(original, dataset) == evaluate(permuted, dataset)

    def test_invalid_permutation_rejected(self, schema):
        fact = FactTable(schema)
        gran = Granularity.from_spec(schema, {"d0": "d0.L0"})
        base = Aggregate(fact, gran, AggSpec("count", "*"))
        t1 = Aggregate(fact, gran, AggSpec("sum", "v"))
        join = CombineJoin(base, [t1], CombineFn(lambda a, b: a))
        with pytest.raises(Exception):
            reorder_combine_inputs(join, [1])


class TestProperty5Split:
    def test_decomposed_combine_equivalent(self, schema, dataset):
        fact = FactTable(schema)
        gran = Granularity.from_spec(schema, {"d0": "d0.L0"})
        base = Aggregate(fact, gran, AggSpec("count", "*"))
        t1 = Aggregate(fact, gran, AggSpec("sum", "v"))
        t2 = Aggregate(fact, gran, AggSpec("max", "v"))
        original = CombineJoin(
            base,
            [t1, t2],
            CombineFn(
                lambda c, a, b: (c or 0) + (a or 0) + (b or 0),
                handles_null=True,
            ),
        )
        split = split_combine_join(
            original,
            split_at=1,
            fc1=lambda c, a: (c or 0) + (a or 0),
            fc2=lambda acc, b: (acc or 0) + (b or 0),
            handles_null=True,
        )
        assert evaluate(original, dataset) == evaluate(split, dataset)

    def test_split_point_validated(self, schema):
        fact = FactTable(schema)
        gran = Granularity.from_spec(schema, {"d0": "d0.L0"})
        base = Aggregate(fact, gran, AggSpec("count", "*"))
        t1 = Aggregate(fact, gran, AggSpec("sum", "v"))
        join = CombineJoin(base, [t1], CombineFn(lambda a, b: a))
        with pytest.raises(Exception):
            split_combine_join(join, 1, lambda a: a, lambda a: a)


class TestMatchJoinAsAggregate:
    def test_cp_join_rewrites_when_cells_preserved(self, schema, dataset):
        fact = FactTable(schema)
        child_gran = Granularity.from_spec(schema, {"d0": "d0.L0"})
        parent_gran = Granularity.from_spec(schema, {"d0": "d0.L1"})
        child = Aggregate(fact, child_gran, AggSpec("count", "*"))
        parent_cells = cells(fact, parent_gran)
        join = MatchJoin(
            parent_cells, child, ChildParent(), AggSpec("sum", "M")
        )
        rewritten = match_join_as_aggregate(join)
        assert isinstance(rewritten, Aggregate)
        assert_equivalent(join, rewritten, dataset)

    def test_no_rewrite_with_selection_in_lineage(self, schema):
        """A selection can drop cells: the rewrite must not fire."""
        fact = FactTable(schema)
        child_gran = Granularity.from_spec(schema, {"d0": "d0.L0"})
        parent_gran = Granularity.from_spec(schema, {"d0": "d0.L1"})
        child = Aggregate(
            Select(fact, Field("v") > 5.0), child_gran, AggSpec("count", "*")
        )
        join = MatchJoin(
            cells(fact, parent_gran),
            child,
            ChildParent(),
            AggSpec("sum", "M"),
        )
        assert match_join_as_aggregate(join) is join


class TestSimplify:
    def test_simplify_reaches_fixpoint(self, schema, dataset):
        fact = FactTable(schema)
        mid = Granularity.from_spec(schema, {"d0": "d0.L0"})
        top = Granularity.from_spec(schema, {"d0": "d0.L1"})
        nested = Aggregate(
            Aggregate(fact, mid, AggSpec("sum", "v")),
            top,
            AggSpec("sum", "M"),
        )
        simplified = simplify(nested)
        assert isinstance(simplified, Aggregate)
        assert isinstance(simplified.child, FactTable)
        assert_equivalent(nested, simplified, dataset)
        # Idempotent.
        assert repr(simplify(simplified)) == repr(simplified)
