"""Tests for match-join conditions (self / pc / cp / sibling)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AlgebraError
from repro.algebra.conditions import (
    ChildParent,
    ParentChild,
    SelfMatch,
    Sibling,
)
from repro.cube.granularity import Granularity
from repro.schema.dataset_schema import synthetic_schema


@pytest.fixture(scope="module")
def schema():
    return synthetic_schema(num_dimensions=2, levels=3, fanout=4)


@pytest.fixture(scope="module")
def base(schema):
    return Granularity.base(schema)


@pytest.fixture(scope="module")
def mid(schema):
    return Granularity.from_spec(schema, {"d0": "d0.L1", "d1": "d1.L1"})


class TestSelfMatch:
    def test_validate_requires_equal_granularity(self, base, mid):
        SelfMatch().validate(base, base)
        with pytest.raises(AlgebraError):
            SelfMatch().validate(base, mid)

    def test_affected_and_matches(self, base):
        cond = SelfMatch()
        assert list(cond.affected_keys((1, 2), base, base)) == [(1, 2)]
        assert cond.matches((1, 2), (1, 2), base, base)
        assert not cond.matches((1, 2), (1, 3), base, base)


class TestParentChild:
    def test_validate_needs_strictly_finer_s(self, base, mid):
        ParentChild().validate(base, mid)  # S finer than T
        with pytest.raises(AlgebraError):
            ParentChild().validate(mid, base)
        with pytest.raises(AlgebraError):
            ParentChild().validate(base, base)

    def test_ancestor_and_matches(self, base, mid):
        cond = ParentChild()
        assert cond.ancestor((13, 9), base, mid) == (3, 2)
        assert cond.matches((13, 9), (3, 2), base, mid)
        assert not cond.matches((13, 9), (2, 2), base, mid)

    def test_not_enumerable_from_t(self, base, mid):
        cond = ParentChild()
        assert not cond.enumerable_from_t
        with pytest.raises(AlgebraError):
            list(cond.affected_keys((3, 2), base, mid))


class TestChildParent:
    def test_validate_needs_strictly_finer_t(self, base, mid):
        ChildParent().validate(mid, base)  # T finer than S
        with pytest.raises(AlgebraError):
            ChildParent().validate(base, mid)

    def test_affected_is_the_parent(self, base, mid):
        cond = ChildParent()
        assert list(cond.affected_keys((13, 9), mid, base)) == [(3, 2)]
        assert cond.matches((3, 2), (13, 9), mid, base)


class TestSibling:
    def test_validate_equal_granularity_and_windowed_dims(self, base, mid):
        Sibling({"d0": (0, 2)}).validate(base, base)
        with pytest.raises(AlgebraError):
            Sibling({"d0": (0, 2)}).validate(base, mid)
        # Window on a dimension at ALL is invalid.
        all_gran = Granularity.from_spec(base.schema, {"d1": "d1.L0"})
        with pytest.raises(AlgebraError):
            Sibling({"d0": (0, 2)}).validate(all_gran, all_gran)

    def test_empty_window_rejected(self):
        with pytest.raises(AlgebraError):
            Sibling({"d0": (1, -2)})
        with pytest.raises(AlgebraError):
            Sibling({})

    def test_matches_window_semantics(self, base):
        # T.d0 in [S.d0 - 1, S.d0 + 2]
        cond = Sibling({"d0": (1, 2)})
        s = (5, 7)
        assert cond.matches(s, (4, 7), base, base)
        assert cond.matches(s, (7, 7), base, base)
        assert not cond.matches(s, (3, 7), base, base)
        assert not cond.matches(s, (8, 7), base, base)
        assert not cond.matches(s, (5, 8), base, base)  # other dim differs

    def test_backward_only_window(self, base):
        """(3, -1) is 'the previous three steps', excluding self."""
        cond = Sibling({"d0": (3, -1)})
        s = (5, 0)
        assert cond.matches(s, (2, 0), base, base)
        assert cond.matches(s, (4, 0), base, base)
        assert not cond.matches(s, (5, 0), base, base)

    def test_affected_keys_inverts_window(self, base):
        cond = Sibling({"d0": (1, 2)})
        affected = set(cond.affected_keys((5, 7), base, base))
        assert affected == {(3, 7), (4, 7), (5, 7), (6, 7)}

    def test_affected_keys_clamped_at_zero(self, base):
        cond = Sibling({"d0": (0, 3)})
        affected = set(cond.affected_keys((1, 0), base, base))
        assert affected == {(0, 0), (1, 0)} | set()

    def test_multi_dimension_window(self, base):
        cond = Sibling({"d0": (0, 1), "d1": (0, 1)})
        affected = set(cond.affected_keys((5, 5), base, base))
        assert affected == {(4, 4), (4, 5), (5, 4), (5, 5)}

    def test_max_reach(self):
        assert Sibling({"d0": (1, 4), "d1": (2, 0)}).max_reach() == 4


@given(
    s=st.integers(min_value=0, max_value=30),
    t=st.integers(min_value=0, max_value=30),
    before=st.integers(min_value=-3, max_value=5),
    after=st.integers(min_value=-3, max_value=5),
)
def test_affected_keys_agree_with_matches(s, t, before, after):
    """t in window(s) iff s in affected_keys(t) — the duality the
    streaming engine relies on."""
    if before + after < 0:
        return
    schema = synthetic_schema(num_dimensions=1, levels=3, fanout=4)
    gran = Granularity.base(schema)
    cond = Sibling({"d0": (before, after)})
    forward = cond.matches((s,), (t,), gran, gran)
    inverse = (s,) in set(cond.affected_keys((t,), gran, gran))
    assert forward == inverse
