"""Tests for the Lags (discrete neighbour offsets) condition."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AlgebraError
from repro.algebra.conditions import Lags
from repro.algebra.sql import to_sql
from repro.cube.granularity import Granularity
from repro.engine.naive import RelationalEngine
from repro.engine.single_scan import SingleScanEngine
from repro.engine.sort_scan import SortScanEngine
from repro.schema.dataset_schema import synthetic_schema
from repro.storage.table import InMemoryDataset
from repro.workflow.workflow import AggregationWorkflow


@pytest.fixture(scope="module")
def schema():
    return synthetic_schema(num_dimensions=1, levels=2, fanout=4)


@pytest.fixture(scope="module")
def base(schema):
    return Granularity(schema, (0,))


class TestCondition:
    def test_matches_exact_offsets(self, base):
        cond = Lags({"d0": (-3, -1, 2)})
        s = (5,)
        assert cond.matches(s, (2,), base, base)
        assert cond.matches(s, (4,), base, base)
        assert cond.matches(s, (7,), base, base)
        assert not cond.matches(s, (5,), base, base)
        assert not cond.matches(s, (3,), base, base)

    def test_affected_keys_invert_offsets(self, base):
        cond = Lags({"d0": (-2, 1)})
        affected = set(cond.affected_keys((5,), base, base))
        # t = s + delta  =>  s = t - delta: {5 - (-2), 5 - 1} = {7, 4}
        assert affected == {(7,), (4,)}

    def test_affected_keys_clamp_negative(self, base):
        cond = Lags({"d0": (2,)})
        assert set(cond.affected_keys((1,), base, base)) == set()

    def test_validation(self, schema, base):
        coarse = Granularity(schema, (1,))
        with pytest.raises(AlgebraError):
            Lags({"d0": ()})
        with pytest.raises(AlgebraError):
            Lags({})
        with pytest.raises(AlgebraError):
            Lags({"d0": (-1,)}).validate(base, coarse)
        all_gran = Granularity(schema, (schema.dimensions[0].all_level,))
        with pytest.raises(AlgebraError):
            Lags({"d0": (-1,)}).validate(all_gran, all_gran)

    def test_offsets_deduplicated_and_sorted(self):
        cond = Lags({"d0": (3, -1, 3)})
        assert cond.offsets["d0"] == (-1, 3)

    def test_repr(self):
        assert "cond_lag" in repr(Lags({"d0": (-24, -168)}))


class TestEvaluation:
    @pytest.fixture(scope="class")
    def dataset(self, schema):
        values = [0, 0, 1, 4, 5, 5, 5, 12, 13]
        return InMemoryDataset(schema, [(v, 1.0) for v in values])

    def lag_workflow(self, schema, offsets):
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.match(
            "lagged", {"d0": "d0.L0"}, source="cnt",
            cond=Lags({"d0": offsets}), agg="sum",
        )
        return wf

    def test_backward_lag_ground_truth(self, schema, dataset):
        wf = self.lag_workflow(schema, (-1,))
        result = SortScanEngine(
            assert_no_late_updates=True
        ).evaluate(dataset, wf)
        # cnt: {0:2, 1:1, 4:1, 5:3, 12:1, 13:1}
        assert result["lagged"].rows == {
            (0,): None,
            (1,): 2,
            (4,): None,
            (5,): 1,
            (12,): None,
            (13,): 1,
        }

    def test_forward_lag_delays_finalization(self, schema, dataset):
        wf = self.lag_workflow(schema, (2,))
        result = SortScanEngine(
            assert_no_late_updates=True
        ).evaluate(dataset, wf)
        assert result["lagged"].rows[(12,)] is None
        assert result["lagged"].rows[(3 - 2,)] is None  # (1,) sees 3? no
        # cell 4 sees cnt[6] (absent); cell 5 sees cnt[7] (absent).
        assert result["lagged"].rows[(4,)] is None

    @pytest.mark.parametrize(
        "offsets", [(-1,), (-3, -1), (1,), (-2, 2), (0, -4, 4)]
    )
    def test_engines_agree(self, schema, dataset, offsets):
        wf = self.lag_workflow(schema, offsets)
        reference = RelationalEngine(spool=False).evaluate(dataset, wf)
        for engine in (
            SingleScanEngine(),
            SortScanEngine(assert_no_late_updates=True),
        ):
            result = engine.evaluate(dataset, wf)
            for name in wf.outputs():
                assert reference[name].equal_rows(result[name]), (
                    f"{engine.name}: {reference[name].diff(result[name])}"
                )

    def test_sql_rendering(self, schema):
        wf = self.lag_workflow(schema, (-3, -1))
        sql = to_sql(wf.to_algebra()["lagged"])
        assert "IN (-3, -1)" in sql


@given(
    values=st.lists(
        st.integers(min_value=0, max_value=15), max_size=40
    ),
    offsets=st.sets(
        st.integers(min_value=-4, max_value=4), min_size=1, max_size=3
    ),
)
def test_lag_engines_agree_property(values, offsets):
    schema = synthetic_schema(num_dimensions=1, levels=2, fanout=4)
    dataset = InMemoryDataset(schema, [(v, 1.0) for v in values])
    wf = AggregationWorkflow(schema)
    wf.basic("cnt", {"d0": "d0.L0"})
    wf.match(
        "lagged", {"d0": "d0.L0"}, source="cnt",
        cond=Lags({"d0": tuple(offsets)}), agg="avg",
    )
    reference = RelationalEngine(spool=False).evaluate(dataset, wf)
    streamed = SortScanEngine(assert_no_late_updates=True).evaluate(
        dataset, wf
    )
    assert reference["lagged"].equal_rows(streamed["lagged"]), (
        reference["lagged"].diff(streamed["lagged"])
    )
