"""Tests for the fail-point registry itself.

The registry is process-global state; the autouse conftest fixture
disarms everything after each test, and sites registered here use a
``test.``-prefixed scope so they never collide with woven production
sites.
"""

import os
import subprocess
import sys
import time

import pytest

import repro
from repro.errors import FailPointError
from repro.testkit import failpoints
from repro.testkit.failpoints import (
    CRASH_EXIT_CODE,
    ENV_VAR,
    activate,
    deactivate,
    failpoint,
    fire,
    install_from_env,
    is_armed,
    load_instrumented_sites,
    register,
    registered,
    trigger_count,
)


def _src_root() -> str:
    return os.path.dirname(os.path.dirname(repro.__file__))


def _subprocess_env(**extra) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _src_root()
    env.pop(ENV_VAR, None)
    env.update(extra)
    return env


class TestRegistry:
    def test_register_returns_name_and_lists(self):
        name = register("test.alpha", "test", doc="a doc")
        assert name == "test.alpha"
        sites = {site.name: site for site in registered("test")}
        assert "test.alpha" in sites
        assert sites["test.alpha"].doc == "a doc"

    def test_register_is_idempotent(self):
        register("test.same", "test", doc="first")
        register("test.same", "test", doc="second")
        matching = [
            site for site in registered("test")
            if site.name == "test.same"
        ]
        assert len(matching) == 1
        assert matching[0].doc == "second"

    def test_registered_sorts_and_filters_by_scope(self):
        register("test.z", "test")
        register("test.a", "test")
        names = [site.name for site in registered("test")]
        assert names == sorted(names)
        assert all(site.scope == "test" for site in registered("test"))

    def test_load_instrumented_sites_covers_all_scopes(self):
        load_instrumented_sites()
        by_scope = {}
        for site in registered():
            by_scope.setdefault(site.scope, []).append(site.name)
        assert "store.manifest-swap" in by_scope["store"]
        assert "store.segment-write" in by_scope["store"]
        assert "ingest.pre-commit" in by_scope["ingest"]
        assert "sort.spill" in by_scope["sort"]
        assert "sortscan.final-flush" in by_scope["engine"]
        assert "partitioned.worker" in by_scope["engine"]

    def test_unknown_site_rejected_without_force(self):
        with pytest.raises(FailPointError, match="unknown fail point"):
            activate("test.never-registered-xyz", "raise")
        activate("test.never-registered-xyz", "raise", force=True)
        assert is_armed("test.never-registered-xyz")

    def test_unknown_action_rejected(self):
        register("test.act", "test")
        with pytest.raises(FailPointError, match="unknown fail-point"):
            activate("test.act", "explode")

    def test_malformed_delay_parameter_rejected(self):
        register("test.act", "test")
        with pytest.raises(FailPointError, match="malformed"):
            activate("test.act", "delay:soon")


class TestFiring:
    def test_fire_is_a_noop_when_nothing_armed(self):
        register("test.quiet", "test")
        fire("test.quiet")  # must not raise
        assert trigger_count("test.quiet") == 0

    def test_fire_is_a_noop_when_another_site_armed(self):
        register("test.quiet", "test")
        register("test.loud", "test")
        with failpoint("test.loud", "delay:0"):
            fire("test.quiet")
        assert trigger_count("test.quiet") == 0

    def test_raise_action(self):
        register("test.boom", "test")
        activate("test.boom", "raise")
        with pytest.raises(FailPointError, match="test.boom"):
            fire("test.boom")
        assert trigger_count("test.boom") == 1

    def test_deactivate_disarms(self):
        register("test.boom", "test")
        activate("test.boom", "raise")
        deactivate("test.boom")
        fire("test.boom")
        assert not is_armed("test.boom")

    def test_failpoint_context_manager_disarms_on_exit(self):
        register("test.boom", "test")
        with failpoint("test.boom", "raise"):
            assert is_armed("test.boom")
            with pytest.raises(FailPointError):
                fire("test.boom")
        assert not is_armed("test.boom")
        fire("test.boom")

    def test_delay_action_sleeps(self):
        register("test.slow", "test")
        with failpoint("test.slow", "delay:0.05"):
            started = time.perf_counter()
            fire("test.slow")
            elapsed = time.perf_counter() - started
        assert elapsed >= 0.04

    def test_trigger_count_accumulates_and_clears(self):
        register("test.multi", "test")
        with failpoint("test.multi", "delay:0"):
            for __ in range(3):
                fire("test.multi")
        assert trigger_count("test.multi") == 3
        failpoints.clear()
        assert trigger_count("test.multi") == 0

    def test_trigger_increments_metrics_counter(self):
        from repro.obs import get_registry
        from repro.obs.metrics import FAILPOINT_TRIGGERS

        register("test.counted", "test")
        counter = get_registry().counter(
            FAILPOINT_TRIGGERS, labelnames=("name", "action")
        ).labels(name="test.counted", action="raise")
        before = counter.value
        with (
            failpoint("test.counted", "raise"),
            pytest.raises(FailPointError),
        ):
            fire("test.counted")
        assert counter.value == before + 1


class TestEnvironmentInstall:
    def test_install_from_spec_string(self):
        armed = install_from_env("test.env-a:raise, test.env-b:delay:0.5")
        assert armed == ["test.env-a", "test.env-b"]
        assert is_armed("test.env-a")
        assert is_armed("test.env-b")

    def test_install_empty_spec_is_a_noop(self):
        assert install_from_env("") == []

    def test_install_malformed_spec_rejected(self):
        with pytest.raises(FailPointError, match="malformed"):
            install_from_env("just-a-name-no-action")

    def test_env_var_arms_subprocess_at_import(self):
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.testkit import failpoints; "
                "assert failpoints.is_armed('test.from-env'); "
                "print('armed')",
            ],
            env=_subprocess_env(**{ENV_VAR: "test.from-env:raise"}),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "armed" in proc.stdout


class TestHardExitActions:
    """crash / torn-write end in ``os._exit``; exercised in children."""

    def test_crash_action_exits_with_crash_code(self):
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.testkit import failpoints\n"
                "failpoints.register('test.die', 'test')\n"
                "failpoints.activate('test.die', 'crash')\n"
                "failpoints.fire('test.die')\n"
                "raise SystemExit('unreachable')\n",
            ],
            env=_subprocess_env(),
            capture_output=True,
            timeout=60,
        )
        assert proc.returncode == CRASH_EXIT_CODE

    def test_torn_write_truncates_then_exits(self, tmp_path):
        victim = tmp_path / "segment.bin"
        victim.write_bytes(b"x" * 100)
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "import sys\n"
                "from repro.testkit import failpoints\n"
                "failpoints.register('test.tear', 'test')\n"
                "failpoints.activate('test.tear', 'torn-write')\n"
                "failpoints.fire('test.tear', path=sys.argv[1])\n",
                str(victim),
            ],
            env=_subprocess_env(),
            capture_output=True,
            timeout=60,
        )
        assert proc.returncode == CRASH_EXIT_CODE
        assert victim.stat().st_size == 50

    def test_torn_write_without_path_still_crashes(self):
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.testkit import failpoints\n"
                "failpoints.register('test.tear', 'test')\n"
                "failpoints.activate('test.tear', 'torn-write')\n"
                "failpoints.fire('test.tear')\n",
            ],
            env=_subprocess_env(),
            capture_output=True,
            timeout=60,
        )
        assert proc.returncode == CRASH_EXIT_CODE
