"""Tests for the crash-recovery sweeper.

The full crash sweep (every registered store/ingest site, one doomed
subprocess each) runs for real — it is the tentpole guarantee that the
store's commit protocol survives a kill at any instrumented point.
"""

import pytest

from repro.testkit.failpoints import CRASH_EXIT_CODE
from repro.testkit.sweeper import (
    SWEEP_SCOPES,
    SweepResult,
    sweep,
    sweep_sites,
)


class TestSiteEnumeration:
    def test_sites_come_from_the_registry(self):
        sites = sweep_sites()
        assert "store.manifest-swap" in sites
        assert "store.segment-write" in sites
        assert "ingest.pre-commit" in sites
        assert "ingest.post-commit" in sites
        assert "cluster.journal-write" in sites
        assert "cluster.shard-prepare" in sites
        assert "cluster.manifest-swap" in sites
        assert "cluster.post-swap" in sites
        # Only durability-protocol scopes are swept.
        assert all(
            site.split(".")[0] in SWEEP_SCOPES for site in sites
        )
        assert len(sites) >= 11


class TestCrashSweep:
    def test_every_site_fires_and_recovers(self, tmp_path):
        progress = []
        results = sweep(
            str(tmp_path), seed=0, on_result=progress.append
        )
        assert len(results) == len(sweep_sites())
        assert progress == results
        failed = [r.describe() for r in results if not r.ok]
        assert not failed, "\n".join(failed)
        assert all(r.fired for r in results)
        assert all(r.exit_code == CRASH_EXIT_CODE for r in results)
        by_site = {r.site: r for r in results}
        # Crashing before the manifest swap must lose the delta;
        # crashing after it (post-commit) must keep it.
        assert not by_site["store.segment-write"].committed
        assert not by_site["ingest.pre-commit"].committed
        assert by_site["ingest.post-commit"].committed

    def test_torn_write_during_segment_write_recovers(self, tmp_path):
        results = sweep(
            str(tmp_path),
            seed=3,
            action="torn-write",
            sites=["store.segment-write", "store.manifest-write"],
        )
        assert [r.site for r in results] == [
            "store.segment-write",
            "store.manifest-write",
        ]
        for result in results:
            assert result.fired, result.describe()
            assert result.ok, result.describe()
            assert not result.committed

    def test_unfired_site_fails_the_sweep(self, tmp_path):
        # A site name nothing fires (armed via the env's force path):
        # the child commits normally and exits 0, which the sweep must
        # flag — this is the registry-drift detector.
        results = sweep(
            str(tmp_path), seed=0, sites=["store.not-woven"]
        )
        assert len(results) == 1
        result = results[0]
        assert not result.fired
        assert not result.ok
        assert "never fired" in result.detail


class TestSweepResult:
    def test_describe_mentions_outcome_and_site(self):
        ok_line = SweepResult(
            site="store.manifest-swap",
            action="crash",
            exit_code=77,
            fired=True,
            committed=True,
            ok=True,
        ).describe()
        assert ok_line.startswith("ok")
        assert "store.manifest-swap" in ok_line
        assert "post-delta" in ok_line
        fail_line = SweepResult(
            site="ingest.fold",
            action="crash",
            exit_code=0,
            fired=False,
            committed=False,
            ok=False,
            detail="site never fired",
        ).describe()
        assert fail_line.startswith("FAIL")
        assert "pre-delta" in fail_line
        assert "site never fired" in fail_line
