"""Tests for the metamorphic oracle harness.

Clean seeds assert the six families hold on the real system; the
failure-path tests inject broken checks (monkeypatched) to verify the
harness reports seeds, reprints recipes, and shrinks workflow-shaped
failures to 1-minimal recipes.
"""

import pytest

from repro.testkit import oracles
from repro.testkit.generator import RandomCase
from repro.testkit.oracles import (
    FAMILIES,
    OracleFailure,
    _check_merge_laws,
    default_schema,
    run_batch,
    run_seed,
)


class TestCleanSeeds:
    @pytest.mark.parametrize("seed", range(5))
    def test_all_families_hold(self, seed, tmp_path):
        assert run_seed(seed, tmp_dir=str(tmp_path)) == []

    def test_family_selection(self, tmp_path):
        assert (
            run_seed(0, families=["merge"], tmp_dir=str(tmp_path)) == []
        )

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle families"):
            run_seed(0, families=["vibes"])

    def test_families_constant_matches_checks(self):
        assert set(FAMILIES) == set(oracles._CHECKS)


class TestFailureReporting:
    def test_failure_reprints_seed_and_recipe(
        self, monkeypatch, tmp_path
    ):
        def boom(case, rng, tmp):
            raise AssertionError("deliberately broken")

        monkeypatch.setitem(oracles._CHECKS, "merge", boom)
        failures = run_seed(7, families=["merge"], tmp_dir=str(tmp_path))
        assert len(failures) == 1
        failure = failures[0]
        assert failure.family == "merge"
        assert failure.seed == 7
        assert "deliberately broken" in failure.message
        assert "run_seed(7, families=['merge'])" in failure.message
        # The full recipe is reprinted, so the failure reproduces from
        # the message alone.
        case = RandomCase(7, default_schema())
        assert case.recipe_text() in failure.message

    def test_describe_includes_shrunk_recipe(self):
        failure = OracleFailure(
            family="partition",
            seed=3,
            message="boom",
            shrunk_recipe=["wf.basic('a', ...)"],
        )
        text = failure.describe()
        assert "[partition] seed=3" in text
        assert "Shrunk recipe" in text
        assert "wf.basic" in text

    def test_describe_without_shrunk_recipe(self):
        text = OracleFailure("merge", 1, "law violated").describe()
        assert "Shrunk recipe" not in text

    def test_workflow_failure_carries_minimal_recipe(
        self, monkeypatch, tmp_path
    ):
        schema = default_schema()
        case = RandomCase(11, schema)
        target = case.steps[-1].name

        def fake_mismatch(case_, workflow):
            if target in workflow.outputs():
                return f"{target} diverges (injected)"
            return None

        monkeypatch.setattr(
            oracles, "_partition_mismatch", fake_mismatch
        )
        failures = run_seed(
            11, families=["partition"], tmp_dir=str(tmp_path)
        )
        assert len(failures) == 1
        recipe = failures[0].shrunk_recipe
        assert recipe
        assert len(recipe) <= len(case.steps)
        assert any(target in line for line in recipe)

    def test_shrink_flag_off_skips_minimization(
        self, monkeypatch, tmp_path
    ):
        schema = default_schema()
        target = RandomCase(11, schema).steps[-1].name

        def fake_mismatch(case_, workflow):
            if target in workflow.outputs():
                return "diverges (injected)"
            return None

        monkeypatch.setattr(
            oracles, "_partition_mismatch", fake_mismatch
        )
        failures = run_seed(
            11,
            families=["partition"],
            tmp_dir=str(tmp_path),
            shrink=False,
        )
        assert len(failures) == 1
        assert failures[0].shrunk_recipe == []


class TestRunBatch:
    def test_on_seed_callback_sees_every_seed(self):
        seen = []
        failures = run_batch(
            range(3),
            families=["merge"],
            on_seed=lambda seed, found: seen.append((seed, len(found))),
        )
        assert failures == []
        assert seen == [(0, 0), (1, 0), (2, 0)]


class TestMergeLawChecker:
    def test_catches_merge_that_drops_a_state(self):
        class BrokenSum:
            name = "broken-sum"

            def create(self):
                return 0.0

            def update(self, state, value):
                return state + (value or 0.0)

            def merge(self, a, b):
                return a  # drops b's state entirely

            def finalize(self, state):
                return state

        with pytest.raises(AssertionError, match="broken-sum"):
            _check_merge_laws(
                BrokenSum(), ([1.0], [2.0], [3.0])
            )
