"""Tests for streaming-plan construction (orders, slack, estimates)."""

import pytest

from repro.cube.order import SortKey
from repro.engine.compile import compile_workflow
from repro.engine.plan import build_streaming_plan
from repro.engine.sort_scan import SortScanEngine
from repro.data.synthetic import synthetic_dataset
from repro.schema.dataset_schema import synthetic_schema
from repro.workflow.workflow import AggregationWorkflow


@pytest.fixture(scope="module")
def schema():
    return synthetic_schema(num_dimensions=2, levels=3, fanout=4)


def window_chain(schema):
    wf = AggregationWorkflow(schema)
    wf.basic("cnt", {"d0": "d0.L0"})
    wf.moving_window(
        "w1", {"d0": "d0.L0"}, source="cnt", windows={"d0": (0, 2)}
    )
    wf.rollup("up", {"d0": "d0.L1"}, source="w1", agg="sum")
    return wf


class TestPlanFacts:
    def test_basic_node_is_synchronous(self, schema):
        graph = compile_workflow(window_chain(schema))
        key = SortKey(schema, [(0, 0)])
        plan = build_streaming_plan(graph, key)
        assert plan.nodes["cnt"].slack.is_zero
        assert plan.nodes["cnt"].order_levels == (0,)

    def test_window_introduces_slack(self, schema):
        graph = compile_workflow(window_chain(schema))
        key = SortKey(schema, [(0, 0)])
        plan = build_streaming_plan(graph, key)
        lo, hi = plan.nodes["w1"].slack.bounds[0]
        assert lo <= -2  # waits for inputs up to +2 ahead

    def test_coarser_node_order_lifts(self, schema):
        graph = compile_workflow(window_chain(schema))
        key = SortKey(schema, [(0, 0)])
        plan = build_streaming_plan(graph, key)
        assert plan.nodes["up"].order_levels[0] == 1

    def test_total_estimate_and_explain(self, schema):
        graph = compile_workflow(window_chain(schema))
        key = SortKey(schema, [(0, 0)])
        plan = build_streaming_plan(graph, key, dataset_size=1000)
        assert plan.total_estimated_entries >= len(graph.nodes)
        text = plan.explain(graph)
        assert "sort key" in text
        for node in graph.nodes:
            assert node.name in text

    def test_estimates_rank_real_memory(self, schema):
        """Plan estimates agree with measured peaks across keys."""
        dataset = synthetic_dataset(
            3000, num_dimensions=2, levels=3, fanout=4
        )
        wf = window_chain(dataset.schema)
        graph = compile_workflow(wf)
        good = SortKey(dataset.schema, [(0, 0)])
        bad = SortKey(dataset.schema, [(1, 0)])
        plan_good = build_streaming_plan(graph, good, len(dataset))
        plan_bad = build_streaming_plan(graph, bad, len(dataset))
        assert plan_good.total_estimated_entries < (
            plan_bad.total_estimated_entries
        )
        run_good = SortScanEngine(sort_key=good).evaluate(dataset, wf)
        run_bad = SortScanEngine(sort_key=bad).evaluate(dataset, wf)
        assert run_good.stats.peak_entries < run_bad.stats.peak_entries
