"""Seeded randomized differential testing across every engine.

The deterministic generator (:mod:`repro.testkit.generator`) builds
random-but-valid workflows — random granularities, rollup chains,
sibling windows, lag sets, and a mix of distributive, algebraic, and
holistic aggregates — over the synthetic schema, plus a random
dataset, and asserts that *all* engines (the relational baselines,
single-scan, sort/scan, multi-pass, and the partitioned engine in
serial, thread, and process mode) produce identical measure tables.

Every case is reproducible from its seed alone.  On a mismatch the
failure message carries the seed and the workflow recipe (one builder
call per line); :func:`repro.testkit.generator.shrink_steps` minimizes
the recipe automatically.
"""

from __future__ import annotations

import pytest

from repro.algebra.conditions import Lags, Sibling
from repro.testkit.generator import (
    ALGEBRAIC,
    ALL_AGGS,
    DISTRIBUTIVE,
    HOLISTIC,
    RandomCase,
    build_workflow,
    shrink_steps,
)


@pytest.mark.parametrize("seed", range(12))
def test_random_workflows_differential(seed, syn_schema):
    RandomCase(seed, syn_schema).check()


@pytest.mark.parametrize("seed", range(12))
def test_random_workflows_ingestion_equivalence(
    seed, syn_schema, tmp_path
):
    """Base + K incrementally ingested deltas == one full recompute."""
    case = RandomCase(seed, syn_schema)
    case.check_ingestion(str(tmp_path / "store"))


def test_generator_is_deterministic(syn_schema):
    """Same seed → same recipe; the reproducibility contract."""
    a = RandomCase(7, syn_schema)
    b = RandomCase(7, syn_schema)
    assert a.recipe == b.recipe
    assert a.num_partitions == b.num_partitions


def test_generator_covers_all_aggregate_classes(syn_schema):
    """Across the seed range, every Gray et al. class appears."""
    used = set()
    for seed in range(12):
        for line in RandomCase(seed, syn_schema).recipe:
            for agg in ALL_AGGS:
                if repr(agg) in line:
                    used.add(agg)
    assert used & set(DISTRIBUTIVE)
    assert used & set(ALGEBRAIC)
    assert used & set(HOLISTIC)


def test_generator_covers_both_match_conditions(syn_schema):
    """Sibling windows and lag sets both appear across the seed range."""
    kinds = set()
    for seed in range(12):
        for line in RandomCase(seed, syn_schema).recipe:
            if "moving_window" in line:
                kinds.add(Sibling)
            if "Lags" in line:
                kinds.add(Lags)
    assert kinds == {Sibling, Lags}


def test_steps_rebuild_the_same_workflow(syn_schema):
    """Structured steps re-issue builder calls faithfully."""
    case = RandomCase(3, syn_schema)
    rebuilt = case.rebuild_workflow()
    assert rebuilt.outputs() == case.workflow.outputs()
    for name in case.workflow.outputs():
        assert (
            rebuilt[name].granularity == case.workflow[name].granularity
        )


def test_shrink_minimizes_while_preserving_failure(syn_schema):
    """Shrinking keeps the triggering step and drops the rest."""
    # Find a seed whose recipe has several steps, then "fail" whenever
    # a specific measure is present: shrinking must reduce to just that
    # measure's dependency chain.
    for seed in range(40):
        case = RandomCase(seed, syn_schema)
        if len(case.steps) >= 4:
            break
    target = case.steps[-1].name

    def still_fails(wf):
        return target in wf

    minimal = case.shrink(still_fails)
    names = [step.name for step in minimal]
    assert target in names
    assert len(minimal) < len(case.steps)
    # The reduced recipe must still build.
    wf = build_workflow(syn_schema, minimal)
    assert target in wf


def test_shrink_drags_dependents_along(syn_schema):
    """Deleting a source also deletes measures built on it."""
    case = RandomCase(1, syn_schema)
    base = case.steps[0]
    dependents = {
        step.name for step in case.steps if base.name in step.deps
    }

    def never_fails(wf):
        return False

    # With a never-failing predicate nothing shrinks...
    assert len(case.shrink(never_fails)) == len(case.steps)

    # ...but the closure helper itself must drop dependents.
    from repro.testkit.generator import _drop_with_dependents

    kept = _drop_with_dependents(case.steps, base)
    kept_names = {step.name for step in kept}
    assert base.name not in kept_names
    assert not (dependents & kept_names)
