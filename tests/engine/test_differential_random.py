"""Seeded randomized differential testing across every engine.

A deterministic generator builds random-but-valid workflows — random
granularities, rollup chains, sibling windows, lag sets, and a mix of
distributive, algebraic, and holistic aggregates — over the synthetic
schema, plus a random dataset, and asserts that *all* engines (the
relational baselines, single-scan, sort/scan, multi-pass, and the
partitioned engine in serial, thread, and process mode) produce
identical measure tables.

Every case is reproducible from its seed alone.  On a mismatch the
failure message carries the seed and the workflow recipe (one builder
call per line), so shrinking is a matter of re-running the seed and
deleting recipe lines.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra.conditions import Lags, Sibling
from repro.cube.granularity import Granularity
from repro.engine.partitioned import PartitionedEngine
from repro.storage.table import InMemoryDataset
from repro.workflow.workflow import AggregationWorkflow

from tests.conftest import assert_engines_agree

#: Aggregates by Gray et al. class; every class must be exercised.
DISTRIBUTIVE = ["count", "sum", "min", "max"]
ALGEBRAIC = ["avg", "var"]
HOLISTIC = ["median", "count_distinct"]
ALL_AGGS = DISTRIBUTIVE + ALGEBRAIC + HOLISTIC

#: Dimension the partitioned engine splits on; the generator keeps it
#: below ``D_ALL`` in every measure so partition planning never rejects.
PARTITION_DIM = 0


class RandomCase:
    """One differential test case, fully determined by its seed."""

    def __init__(self, seed: int, schema) -> None:
        self.seed = seed
        self.schema = schema
        self.recipe: list[str] = []
        rng = random.Random(seed)
        self.dataset = self._random_dataset(rng)
        self.workflow = self._random_workflow(rng)
        self.num_partitions = rng.randint(2, 5)

    # -- building blocks ------------------------------------------------

    def _random_dataset(self, rng: random.Random) -> InMemoryDataset:
        count = rng.randint(150, 450)
        records = [
            (
                rng.randrange(64),
                rng.randrange(64),
                rng.randrange(64),
                round(rng.random() * 100, 3),
            )
            for __ in range(count)
        ]
        self.recipe.append(f"# dataset: {count} uniform records")
        return InMemoryDataset(self.schema, records)

    def _random_granularity(self, rng: random.Random) -> Granularity:
        """A random granularity with the partition dimension non-ALL."""
        schema = self.schema
        levels = []
        for i, dim in enumerate(schema.dimensions):
            if i == PARTITION_DIM:
                # Keep the partition dimension fine enough for rollups
                # *and* strictly below ALL for partition planning.
                levels.append(rng.randint(0, dim.all_level - 2))
            else:
                levels.append(rng.randint(0, dim.all_level))
        return Granularity(schema, levels)

    def _coarsen(
        self, rng: random.Random, gran: Granularity
    ) -> Granularity | None:
        """A strictly coarser granularity (partition dim kept non-ALL)."""
        schema = self.schema
        levels = list(gran.levels)
        raisable = [
            i
            for i, level in enumerate(levels)
            if level
            < (
                schema.dimensions[i].all_level - 1
                if i == PARTITION_DIM
                else schema.dimensions[i].all_level
            )
        ]
        if not raisable:
            return None
        for i in rng.sample(raisable, rng.randint(1, len(raisable))):
            cap = schema.dimensions[i].all_level
            if i == PARTITION_DIM:
                cap -= 1
            levels[i] = rng.randint(levels[i] + 1, cap)
        return Granularity(schema, levels)

    def _windowable_dims(self, gran: Granularity) -> list[int]:
        return [
            i
            for i, level in enumerate(gran.levels)
            if level != self.schema.dimensions[i].all_level
        ]

    # -- workflow generation --------------------------------------------

    def _random_workflow(self, rng: random.Random) -> AggregationWorkflow:
        schema = self.schema
        wf = AggregationWorkflow(schema, name=f"rand{self.seed}")
        sources: list[str] = []

        def spec(gran: Granularity) -> dict:
            return {
                schema.dimensions[i].name: schema.dimensions[i]
                .hierarchy.domain(level)
                .name
                for i, level in enumerate(gran.levels)
                if level != schema.dimensions[i].all_level
            }

        for b in range(rng.randint(1, 2)):
            gran = self._random_granularity(rng)
            agg = rng.choice(ALL_AGGS)
            agg_spec = "count" if agg == "count" else (agg, "v")
            name = f"base{b}"
            wf.basic(name, gran, agg=agg_spec)
            self.recipe.append(
                f"wf.basic({name!r}, {spec(gran)}, agg={agg_spec!r})"
            )
            sources.append(name)

        for d in range(rng.randint(1, 3)):
            source = rng.choice(sources)
            gran = wf[source].granularity
            kind = rng.choice(["rollup", "window", "lags"])
            agg = rng.choice(ALL_AGGS)
            name = f"m{d}"
            if kind == "rollup":
                coarser = self._coarsen(rng, gran)
                if coarser is None:
                    continue
                wf.rollup(name, coarser, source=source, agg=agg)
                self.recipe.append(
                    f"wf.rollup({name!r}, {spec(coarser)}, "
                    f"source={source!r}, agg={agg!r})"
                )
            elif kind == "window":
                dims = self._windowable_dims(gran)
                chosen = rng.sample(
                    dims, rng.randint(1, min(2, len(dims)))
                )
                windows = {
                    schema.dimensions[i].name: (
                        rng.randint(0, 3),
                        rng.randint(0, 3),
                    )
                    for i in chosen
                }
                wf.moving_window(
                    name, gran, source=source, windows=windows, agg=agg
                )
                self.recipe.append(
                    f"wf.moving_window({name!r}, {spec(gran)}, "
                    f"source={source!r}, windows={windows}, agg={agg!r})"
                )
            else:
                dims = self._windowable_dims(gran)
                lag_dim = schema.dimensions[rng.choice(dims)].name
                deltas = tuple(
                    sorted(
                        rng.sample(range(-8, 9), rng.randint(1, 3))
                    )
                )
                cond = Lags({lag_dim: deltas})
                wf.match(name, gran, source=source, cond=cond, agg=agg)
                self.recipe.append(
                    f"wf.match({name!r}, {spec(gran)}, source={source!r}, "
                    f"cond=Lags({{{lag_dim!r}: {deltas}}}), agg={agg!r})"
                )
            sources.append(name)
        return wf

    # -- the differential assertion -------------------------------------

    def partitioned_engines(self) -> list[PartitionedEngine]:
        return [
            PartitionedEngine(
                partition_dim=PARTITION_DIM,
                num_partitions=self.num_partitions,
                parallel=mode,
            )
            for mode in ("serial", "threads", "processes")
        ]

    def check(self) -> None:
        try:
            assert_engines_agree(
                self.dataset,
                self.workflow,
                extra_engines=self.partitioned_engines(),
            )
        except AssertionError as exc:
            recipe = "\n".join(f"    {line}" for line in self.recipe)
            raise AssertionError(
                f"engines disagree for seed={self.seed} "
                f"(partitions={self.num_partitions}).\n"
                f"Reproduce with RandomCase({self.seed}, schema); "
                f"shrink by deleting recipe lines:\n{recipe}\n{exc}"
            ) from exc

    def check_ingestion(self, store_path: str) -> None:
        """Incremental ingestion mode of the differential harness.

        The case's dataset is split into a base batch plus a few
        deltas; the base is bootstrapped into a measure store and the
        deltas are ingested incrementally (holistic measures resolved
        lazily at the end).  The stored tables must equal a one-shot
        evaluation over the full dataset.
        """
        from repro.engine.sort_scan import SortScanEngine
        from repro.service import Ingestor, MeasureStore

        rng = random.Random(self.seed ^ 0x5EED)
        records = list(self.dataset.records)
        num_deltas = rng.randint(1, 3)
        delta_size = rng.randint(5, 40)
        base_count = max(1, len(records) - num_deltas * delta_size)
        base, rest = records[:base_count], records[base_count:]
        deltas = [
            rest[i : i + delta_size]
            for i in range(0, len(rest), delta_size)
        ]

        store = MeasureStore(store_path)
        ingestor = Ingestor(store, self.workflow)
        ingestor.bootstrap(InMemoryDataset(self.schema, base))
        for delta in deltas:
            ingestor.ingest(delta)
        ingestor.resolve()

        reference = SortScanEngine().evaluate(
            self.dataset, self.workflow
        )
        for name in self.workflow.outputs():
            expected = reference[name]
            got = store.measure_table(name, expected.granularity)
            if not got.equal_rows(expected):
                recipe = "\n".join(
                    f"    {line}" for line in self.recipe
                )
                raise AssertionError(
                    f"incremental ingestion diverges from one-shot "
                    f"evaluation for seed={self.seed}, measure "
                    f"{name!r} (base={len(base)}, deltas="
                    f"{[len(d) for d in deltas]}).\n"
                    f"Recipe:\n{recipe}\n{expected.diff(got)}"
                )


@pytest.mark.parametrize("seed", range(12))
def test_random_workflows_differential(seed, syn_schema):
    RandomCase(seed, syn_schema).check()


@pytest.mark.parametrize("seed", range(12))
def test_random_workflows_ingestion_equivalence(
    seed, syn_schema, tmp_path
):
    """Base + K incrementally ingested deltas == one full recompute."""
    case = RandomCase(seed, syn_schema)
    case.check_ingestion(str(tmp_path / "store"))


def test_generator_is_deterministic(syn_schema):
    """Same seed → same recipe; the reproducibility contract."""
    a = RandomCase(7, syn_schema)
    b = RandomCase(7, syn_schema)
    assert a.recipe == b.recipe
    assert a.num_partitions == b.num_partitions


def test_generator_covers_all_aggregate_classes(syn_schema):
    """Across the seed range, every Gray et al. class appears."""
    used = set()
    for seed in range(12):
        for line in RandomCase(seed, syn_schema).recipe:
            for agg in ALL_AGGS:
                if repr(agg) in line:
                    used.add(agg)
    assert used & set(DISTRIBUTIVE)
    assert used & set(ALGEBRAIC)
    assert used & set(HOLISTIC)


def test_generator_covers_both_match_conditions(syn_schema):
    """Sibling windows and lag sets both appear across the seed range."""
    kinds = set()
    for seed in range(12):
        for line in RandomCase(seed, syn_schema).recipe:
            if "moving_window" in line:
                kinds.add(Sibling)
            if "Lags" in line:
                kinds.add(Lags)
    assert kinds == {Sibling, Lags}
