"""Batch-boundary edge cases for the columnar scan path.

Each case is a shape where the batched loop's bookkeeping could
plausibly go wrong — a group span straddling a batch boundary, the
degenerate one-row batch, a final partial batch, a dataset size that
divides the batch size exactly, empty and single-row datasets — and
each asserts bit-identical tables against the scalar path (and, for
single-scan, against the naive oracle).
"""

from __future__ import annotations

import pytest

from repro.engine.naive import RelationalEngine
from repro.engine.single_scan import SingleScanEngine
from repro.engine.sort_scan import SortScanEngine
from repro.storage.table import InMemoryDataset
from repro.testkit.differential import assert_batched_equals_scalar
from repro.workflow.workflow import AggregationWorkflow


def _workflow(schema):
    """A mixed workflow: coarse + fine keys, several aggregate classes."""
    wf = AggregationWorkflow(schema, name="boundaries")
    wf.basic("sum_fine", {"d0": "d0.L0"}, agg=("sum", "v"))
    wf.basic("sum_mid", {"d0": "d0.L1", "d1": "d1.L1"}, agg=("sum", "v"))
    wf.basic("cnt", {"d1": "d1.L2"}, agg="count")
    wf.basic("avg_all", {}, agg=("avg", "v"))
    wf.basic("med", {"d2": "d2.L2"}, agg=("median", "v"))
    wf.rollup("sum_total", {}, source="sum_mid", agg=("sum", "M"))
    return wf


def _dataset(schema, count, seed=0):
    import random

    rng = random.Random(seed)
    return InMemoryDataset(
        schema,
        [
            (
                rng.randrange(64),
                rng.randrange(64),
                rng.randrange(64),
                rng.random(),
            )
            for __ in range(count)
        ],
    )


def _assert_all_paths_agree(dataset, workflow, batch_sizes):
    assert_batched_equals_scalar(dataset, workflow, batch_sizes)
    oracle = RelationalEngine().evaluate(dataset, workflow)
    for batch_size in batch_sizes:
        batched = SingleScanEngine(batch_size=batch_size).evaluate(
            dataset, workflow
        )
        for name in workflow.outputs():
            assert oracle[name].rows == batched[name].rows


class TestBoundaryShapes:
    def test_group_straddles_batch_boundary(self, syn_schema):
        # One giant group interleaved with small ones: with batch size
        # 4 the d0=0 group crosses every boundary, and sort-scan sees
        # runs of it split across consecutive batches after sorting.
        records = []
        for i in range(30):
            records.append((0, i % 3, 5, float(i)))
            if i % 5 == 0:
                records.append((7, 1, 2, 0.25 * i))
        dataset = InMemoryDataset(syn_schema, records)
        _assert_all_paths_agree(
            dataset, _workflow(syn_schema), batch_sizes=(4,)
        )

    def test_batch_size_one(self, syn_schema):
        dataset = _dataset(syn_schema, 37)
        _assert_all_paths_agree(
            dataset, _workflow(syn_schema), batch_sizes=(1,)
        )

    def test_final_partial_batch(self, syn_schema):
        # 23 = 2 full batches of 8 + a 7-row remainder.
        dataset = _dataset(syn_schema, 23)
        _assert_all_paths_agree(
            dataset, _workflow(syn_schema), batch_sizes=(8,)
        )

    def test_size_exact_multiple_of_batch(self, syn_schema):
        dataset = _dataset(syn_schema, 24)
        _assert_all_paths_agree(
            dataset, _workflow(syn_schema), batch_sizes=(8,)
        )

    def test_batch_larger_than_dataset(self, syn_schema):
        dataset = _dataset(syn_schema, 5)
        _assert_all_paths_agree(
            dataset, _workflow(syn_schema), batch_sizes=(4096,)
        )

    def test_empty_dataset(self, syn_schema):
        dataset = InMemoryDataset(syn_schema, [])
        _assert_all_paths_agree(
            dataset, _workflow(syn_schema), batch_sizes=(1, 8, 4096)
        )

    def test_single_row_dataset(self, syn_schema):
        dataset = InMemoryDataset(syn_schema, [(3, 9, 27, 1.5)])
        _assert_all_paths_agree(
            dataset, _workflow(syn_schema), batch_sizes=(1, 8, 4096)
        )


class TestBatchedStats:
    def test_stats_record_batched_run(self, syn_schema):
        dataset = _dataset(syn_schema, 40)
        result = SingleScanEngine(batch_size=8).evaluate(
            dataset, _workflow(syn_schema)
        )
        from repro.storage.columnar import HAVE_NUMPY

        if HAVE_NUMPY:
            assert result.stats.batched
            assert result.stats.batch_size == 8
        else:
            assert not result.stats.batched
            assert result.stats.batch_size == 0
        assert result.stats.rows_scanned == 40

    def test_stats_record_scalar_run(self, syn_schema):
        dataset = _dataset(syn_schema, 10)
        for engine in (
            SingleScanEngine(batch_size=0),
            SortScanEngine(batch_size=0),
        ):
            result = engine.evaluate(dataset, _workflow(syn_schema))
            assert not result.stats.batched
            assert result.stats.batch_size == 0

    def test_record_filter_applies_before_counting(self, syn_schema):
        # Filtered workflows go through the mask path; rows_in in the
        # batched path counts post-filter rows exactly like scalar.
        wf = AggregationWorkflow(syn_schema, name="filtered")
        from repro.algebra.predicates import Field

        wf.basic(
            "sum_small",
            {"d0": "d0.L1"},
            agg=("sum", "v"),
            where=Field("v") < 0.5,
        )
        dataset = _dataset(syn_schema, 60)
        assert_batched_equals_scalar(dataset, wf, batch_sizes=(1, 7, 16))
        oracle = RelationalEngine().evaluate(dataset, wf)
        batched = SingleScanEngine(batch_size=7).evaluate(dataset, wf)
        assert oracle["sum_small"].rows == batched["sum_small"].rows


@pytest.mark.parametrize("force_every", [3, 10])
def test_sort_scan_cascade_cap_respected_batched(
    syn_schema, force_every
):
    """``max_records_between_cascades`` splits batched regions too."""
    dataset = _dataset(syn_schema, 50)
    wf = _workflow(syn_schema)
    scalar = SortScanEngine(
        batch_size=0, max_records_between_cascades=force_every
    ).evaluate(dataset, wf)
    batched = SortScanEngine(
        batch_size=8, max_records_between_cascades=force_every
    ).evaluate(dataset, wf)
    for name in wf.outputs():
        assert scalar[name].rows == batched[name].rows
