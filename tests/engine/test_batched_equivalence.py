"""The batched-vs-scalar equivalence pack.

The columnar batched scan path (:mod:`repro.storage.columnar`,
:mod:`repro.engine.batch`) promises results *bit-identical* to the
row-at-a-time scalar path — not merely tolerance-equal.  This pack
holds that promise to the fire with every shipped paper query and 25
seeded generated workflows, at batch sizes covering the degenerate
(1), the non-dividing (7), and the production default (4096) cases,
with ``0`` as the scalar baseline.

Against the naive relational oracle two different bars apply:

* single-scan accumulates in scan order, exactly like the oracle's
  per-group folds, so its tables must match the oracle **bit for bit**
  at every batch size;
* sort/scan accumulates in *sorted* order, so float sums can land on
  different ulps than the oracle's scan-order folds — a pre-existing
  property of the scalar engine, unrelated to batching.  There the
  pack asserts tolerance equality (``equal_rows``) plus the strict
  bit-identity of batched-vs-scalar within the engine.
"""

from __future__ import annotations

import pytest

from repro.data.synthetic import synthetic_dataset
from repro.engine.naive import RelationalEngine
from repro.engine.single_scan import SingleScanEngine
from repro.engine.sort_scan import SortScanEngine
from repro.queries.combined import combined_workflow
from repro.queries.escalation import escalation_workflow
from repro.queries.examples import examples_workflow
from repro.queries.multi_recon import multi_recon_workflow
from repro.queries.q1_child_parent import q1_workflow
from repro.queries.q2_sibling_chain import q2_workflow
from repro.testkit.differential import (
    assert_batched_equals_scalar,
    batched_divergence,
)
from repro.testkit.generator import RandomCase

BATCH_SIZES = (0, 1, 7, 4096)

NETWORK_QUERIES = [
    examples_workflow,
    escalation_workflow,
    multi_recon_workflow,
    combined_workflow,
]

SYNTHETIC_QUERIES = [
    lambda s: q1_workflow(s, num_children=4),
    lambda s: q2_workflow(s, depth=3, num_chains=2),
]


@pytest.fixture(scope="module")
def syn4_dataset():
    """q1/q2 expect the 4-dimensional synthetic schema."""
    return synthetic_dataset(2500)


def _assert_against_oracle(dataset, workflow):
    """Shipped-query contract vs the naive relational oracle."""
    oracle = RelationalEngine().evaluate(dataset, workflow)
    for batch_size in BATCH_SIZES:
        single = SingleScanEngine(batch_size=batch_size).evaluate(
            dataset, workflow
        )
        sort = SortScanEngine(batch_size=batch_size).evaluate(
            dataset, workflow
        )
        for name in workflow.outputs():
            assert oracle[name].rows == single[name].rows, (
                f"single-scan batch_size={batch_size} differs from "
                f"the naive oracle on {name!r}: "
                f"{oracle[name].diff(single[name])}"
            )
            # Sorted-order accumulation: tolerance bar (see module
            # docstring); bit-identity of sort/scan batched-vs-scalar
            # is asserted separately below.
            assert oracle[name].equal_rows(sort[name]), (
                f"sort-scan batch_size={batch_size} differs from "
                f"the naive oracle on {name!r}: "
                f"{oracle[name].diff(sort[name])}"
            )
    assert_batched_equals_scalar(dataset, workflow)


@pytest.mark.parametrize(
    "build", NETWORK_QUERIES, ids=lambda fn: fn.__name__
)
def test_network_queries_batched_equivalence(net_dataset, build):
    _assert_against_oracle(net_dataset, build(net_dataset.schema))


@pytest.mark.parametrize(
    "build", SYNTHETIC_QUERIES, ids=["q1", "q2"]
)
def test_synthetic_queries_batched_equivalence(syn4_dataset, build):
    _assert_against_oracle(syn4_dataset, build(syn4_dataset.schema))


@pytest.mark.parametrize("seed", range(25))
def test_generated_workflows_batched_equivalence(seed, syn_schema):
    """25 seeded random workflows: batched is bit-identical to scalar.

    The generator mixes distributive, algebraic, and holistic
    aggregates with rollup chains and match joins, so this sweeps the
    vectorized fast paths *and* the per-row fallbacks.
    """
    case = RandomCase(seed, syn_schema)
    divergence = batched_divergence(
        case.dataset, case.workflow, batch_sizes=(1, 7, 4096)
    )
    assert divergence is None, (
        f"seed={seed}: {divergence}\n"
        f"Reproduce with RandomCase({seed}, schema):\n"
        f"{case.recipe_text()}"
    )
