"""Tests for the finalization-bound (watermark) machinery."""

import pytest

from repro.errors import PlanError
from repro.cube.order import SortKey
from repro.engine.compile import compile_workflow
from repro.engine.watermark import (
    NodeChecker,
    PredSpec,
    _basic_spec,
    _lift_spec,
    _shift_spec,
    build_node_specs,
)
from repro.cube.granularity import Granularity
from repro.schema.dataset_schema import synthetic_schema
from repro.workflow.workflow import AggregationWorkflow


@pytest.fixture(scope="module")
def schema():
    return synthetic_schema(num_dimensions=2, levels=3, fanout=4)


class TestBasicSpec:
    def test_same_level_kept(self, schema):
        key = SortKey(schema, [(0, 0), (1, 0)])
        gran = Granularity(schema, (0, 0))
        spec = _basic_spec(key, gran)
        assert [(d, lv) for d, lv, __, ___ in spec.parts] == [
            (0, 0),
            (1, 0),
        ]

    def test_coarser_node_lifts_and_truncates(self, schema):
        """A node at d0.L1 under a d0.L0 sort: the bound lifts to L1 and
        nothing after the lifted component survives (Table 6)."""
        key = SortKey(schema, [(0, 0), (1, 0)])
        gran = Granularity.from_spec(schema, {"d0": "d0.L1", "d1": "d1.L0"})
        spec = _basic_spec(key, gran)
        assert [(d, lv) for d, lv, __, ___ in spec.parts] == [(0, 1)]

    def test_all_dimension_ends_spec(self, schema):
        """A node at ALL for the leading sort dimension can never flush
        before the end of the scan."""
        key = SortKey(schema, [(0, 0), (1, 0)])
        gran = Granularity.from_spec(schema, {"d1": "d1.L0"})
        spec = _basic_spec(key, gran)
        assert spec.parts == ()

    def test_finer_node_keeps_scan_level(self, schema):
        """Node finer than the sort key on a dim: bound stays at the
        scan level (entries compare by their generalization)."""
        key = SortKey(schema, [(0, 1)])
        gran = Granularity(schema, (0, 3))
        spec = _basic_spec(key, gran)
        assert [(d, lv) for d, lv, __, ___ in spec.parts] == [(0, 1)]


class TestTransforms:
    def test_lift_preserves_equal_levels(self, schema):
        spec = PredSpec([(0, 0, 0, 0), (1, 0, 1, 0)])
        same = _lift_spec(spec, Granularity(schema, (0, 0)))
        assert same.parts == spec.parts

    def test_lift_truncates_at_coarsening(self, schema):
        spec = PredSpec([(0, 0, 0, 0), (1, 0, 1, 0)])
        lifted = _lift_spec(spec, Granularity(schema, (1, 0)))
        assert [(d, lv) for d, lv, __, ___ in lifted.parts] == [(0, 1)]

    def test_lift_drops_fine_shifts(self, schema):
        spec = PredSpec([(0, 0, 0, 0)], {0: (0, 2)})
        lifted = _lift_spec(spec, Granularity(schema, (1, 3)))
        assert lifted.parts == ()  # cannot re-apply a fine shift

    def test_shift_accumulates_same_level(self, schema):
        gran = Granularity(schema, (0, 3))
        spec = PredSpec([(0, 0, 0, 0)])
        once = _shift_spec(spec, {0: (0, 2)}, gran)
        twice = _shift_spec(once, {0: (1, 3)}, gran)
        assert twice.shifts[0] == (0, 5)

    def test_chained_windows_at_different_levels_rejected(self, schema):
        gran_fine = Granularity(schema, (0, 3))
        gran_coarse = Granularity(schema, (1, 3))
        spec = _shift_spec(PredSpec([(0, 0, 0, 0)]), {0: (0, 2)}, gran_fine)
        with pytest.raises(PlanError):
            _shift_spec(spec, {0: (0, 1)}, gran_coarse)

    def test_backward_window_shifts_negative(self, schema):
        gran = Granularity(schema, (0, 3))
        spec = _shift_spec(PredSpec([(0, 0, 0, 0)]), {0: (3, -1)}, gran)
        assert spec.shifts[0] == (0, -1)


class TestNodeChecker:
    def build(self, schema, windows=None):
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        if windows:
            wf.moving_window(
                "win", {"d0": "d0.L0"}, source="cnt", windows=windows
            )
        return compile_workflow(wf)

    def test_refresh_reports_movement(self, schema):
        graph = self.build(schema)
        key = SortKey(schema, [(0, 0)])
        specs = build_node_specs(graph, key)
        node = graph.nodes[0]
        checker = NodeChecker(node, specs[node.name])
        assert checker.refresh((5,))
        assert not checker.refresh((5,))  # unchanged
        assert checker.refresh((6,))

    def test_strictness_at_the_bound(self, schema):
        graph = self.build(schema)
        key = SortKey(schema, [(0, 0)])
        specs = build_node_specs(graph, key)
        node = graph.nodes[0]
        checker = NodeChecker(node, specs[node.name])
        checker.refresh((5,))
        assert checker.is_final((4, 0))
        assert not checker.is_final((5, 0))  # current group still open
        assert not checker.is_final((6, 0))

    def test_window_delays_finalization(self, schema):
        graph = self.build(schema, windows={"d0": (0, 2)})
        key = SortKey(schema, [(0, 0)])
        specs = build_node_specs(graph, key)
        win = next(n for n in graph.nodes if n.name == "win")
        checker = NodeChecker(win, specs[win.name])
        checker.refresh((5,))
        # Entry k needs inputs through k+2: final iff k+2 < 5.
        assert checker.is_final((2, 0))
        assert not checker.is_final((3, 0))

    def test_never_when_leading_dim_uncovered(self, schema):
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d1": "d1.L0"})
        graph = compile_workflow(wf)
        key = SortKey(schema, [(0, 0)])  # sorted by the other dim
        specs = build_node_specs(graph, key)
        node = graph.nodes[0]
        checker = NodeChecker(node, specs[node.name])
        assert checker.never
        checker.refresh((5,))
        assert not checker.is_final((0, 0))
