"""Engine-level telemetry: spans, stats merging, cross-process shipping."""

import time

import pytest

from repro.data.synthetic import synthetic_dataset
from repro.engine.interfaces import EvalStats
from repro.engine.partitioned import PartitionedEngine
from repro.engine.sort_scan import SortScanEngine
from repro.obs import (
    get_registry,
    get_tracer,
    reset_registry,
    set_tracing,
    telemetry_forced,
)
from repro.obs.metrics import ENGINE_RUNS
from repro.schema.dataset_schema import synthetic_schema
from repro.workflow.workflow import AggregationWorkflow


@pytest.fixture()
def tracing():
    """Enable the global tracer for one test, restoring it after."""
    tracer = get_tracer()
    tracer.reset()
    set_tracing(True)
    yield tracer
    tracer.reset()
    set_tracing(telemetry_forced())


@pytest.fixture(scope="module")
def small_schema():
    return synthetic_schema(num_dimensions=2, levels=3, fanout=4)


@pytest.fixture(scope="module")
def small_dataset():
    return synthetic_dataset(2000, num_dimensions=2, levels=3, fanout=4)


def picklable_workflow(schema):
    """No closures anywhere, so it survives the process-pool pickle."""
    wf = AggregationWorkflow(schema)
    wf.basic("cnt", {"d0": "d0.L0", "d1": "d1.L0"})
    wf.rollup("per_d0", {"d0": "d0.L0"}, source="cnt", agg="sum")
    return wf


class TestEvalStatsMerge:
    def test_passes_accumulate(self):
        total = EvalStats(passes=0)
        total.merge(EvalStats(passes=1))
        total.merge(EvalStats(passes=1))
        assert total.passes == 2

    def test_engine_adopted_when_empty(self):
        total = EvalStats(passes=0)
        total.merge(EvalStats(engine="sort-scan"))
        assert total.engine == "sort-scan"
        total.merge(EvalStats(engine="other"))
        assert total.engine == "sort-scan"

    def test_novel_notes_appended_duplicates_dropped(self):
        total = EvalStats(notes="parent summary")
        total.merge(EvalStats(notes="sort_key=<a>"))
        total.merge(EvalStats(notes="sort_key=<a>"))
        assert total.notes == "parent summary; sort_key=<a>"

    def test_peak_is_max_totals_add(self):
        total = EvalStats(passes=0)
        total.merge(EvalStats(rows_scanned=10, peak_entries=5))
        total.merge(EvalStats(rows_scanned=20, peak_entries=3))
        assert total.rows_scanned == 30
        assert total.peak_entries == 5

    def test_workers_and_nodes_extend(self):
        total = EvalStats(passes=0)
        sub = EvalStats(nodes=[{"name": "cnt", "rows_in": 4}])
        sub_outer = EvalStats(workers=[sub], nodes=list(sub.nodes))
        total.merge(sub_outer)
        assert total.workers == [sub]
        assert total.nodes == [{"name": "cnt", "rows_in": 4}]


class TestEvalStatsRoundTrip:
    def test_round_trip_including_workers(self):
        worker = EvalStats(
            engine="sort-scan",
            rows_scanned=10,
            sort_seconds=0.1,
            notes="w",
            nodes=[{"name": "cnt", "rows_in": 10}],
        )
        stats = EvalStats(
            engine="partitioned",
            rows_scanned=10,
            scans=2,
            passes=2,
            peak_entries=9,
            notes="2 partitions",
            workers=[worker],
        )
        back = EvalStats.from_dict(stats.to_dict())
        assert back == stats
        assert back.workers[0].nodes == worker.nodes

    def test_from_dict_defaults_missing_fields(self):
        back = EvalStats.from_dict({"engine": "x"})
        assert back.engine == "x"
        assert back.passes == 1
        assert back.workers == []

    def test_dict_is_json_safe(self):
        import json

        stats = EvalStats(engine="e", workers=[EvalStats(engine="w")])
        assert EvalStats.from_dict(
            json.loads(json.dumps(stats.to_dict()))
        ) == stats


class TestSortScanSpans:
    def test_run_records_phase_spans(
        self, tracing, small_schema, small_dataset
    ):
        wf = picklable_workflow(small_schema)
        SortScanEngine().evaluate(
            small_dataset, wf, publish_metrics=False
        )
        by_name = {}
        for event in tracing.events:
            by_name.setdefault(event["name"], []).append(event)
        for phase in ("evaluate:sort-scan", "compile", "plan", "sort",
                      "scan", "flush"):
            assert phase in by_name, f"missing span {phase!r}"

        def interval(event):
            return event["ts"], event["ts"] + event["dur"]

        outer_lo, outer_hi = interval(by_name["evaluate:sort-scan"][0])
        for phase in ("compile", "plan", "sort", "scan"):
            lo, hi = interval(by_name[phase][0])
            assert outer_lo <= lo and hi <= outer_hi, phase

    def test_disabled_tracer_records_nothing(
        self, small_schema, small_dataset
    ):
        tracer = get_tracer()
        saved = tracer.enabled
        set_tracing(False)
        tracer.reset()
        try:
            SortScanEngine().evaluate(
                small_dataset,
                picklable_workflow(small_schema),
                publish_metrics=False,
            )
            assert tracer.events == []
        finally:
            tracer.enabled = saved

    def test_disabled_overhead_is_small(
        self, small_schema, small_dataset
    ):
        """Telemetry off must not slow evaluation down measurably.

        Compares best-of-5 disabled-tracing runs against best-of-5
        enabled runs; the disabled path doing *extra* work would show
        up here.  The bound is generous (1.5x) to stay robust on
        loaded CI machines.
        """
        wf = picklable_workflow(small_schema)
        engine = SortScanEngine()
        graph_warmup = engine.evaluate(
            small_dataset, wf, publish_metrics=False
        )
        assert graph_warmup.stats.rows_scanned == len(small_dataset)

        def best_of(runs: int) -> float:
            best = float("inf")
            for __ in range(runs):
                started = time.perf_counter()
                engine.evaluate(small_dataset, wf, publish_metrics=False)
                best = min(best, time.perf_counter() - started)
            return best

        tracer = get_tracer()
        saved = tracer.enabled
        try:
            set_tracing(True)
            enabled = best_of(5)
            set_tracing(False)
            disabled = best_of(5)
        finally:
            tracer.reset()
            tracer.enabled = saved
        assert disabled <= enabled * 1.5 + 0.01


class TestProfiling:
    def test_profile_rows_land_in_stats(
        self, small_schema, small_dataset
    ):
        wf = picklable_workflow(small_schema)
        result = SortScanEngine(profile=True).evaluate(
            small_dataset, wf, publish_metrics=False
        )
        nodes = {row["name"]: row for row in result.stats.nodes}
        assert "cnt" in nodes and "per_d0" in nodes
        assert nodes["cnt"]["rows_in"] == len(small_dataset)
        assert nodes["cnt"]["rows_out"] > 0
        assert nodes["cnt"]["flushes"] > 0
        assert nodes["per_d0"]["rows_in"] > 0

    def test_profile_off_keeps_nodes_empty(
        self, small_schema, small_dataset
    ):
        result = SortScanEngine().evaluate(
            small_dataset,
            picklable_workflow(small_schema),
            publish_metrics=False,
        )
        assert result.stats.nodes == []


class TestCrossProcessShipping:
    def test_worker_spans_and_metrics_reach_parent(
        self, tracing, small_schema, small_dataset
    ):
        registry = reset_registry()
        engine = PartitionedEngine(num_partitions=4, parallel="processes")
        result = engine.evaluate(
            small_dataset, picklable_workflow(small_schema)
        )
        assert "mode=processes" in result.stats.notes

        partition_events = [
            e for e in tracing.events if e["name"] == "partition"
        ]
        assert len(partition_events) == 4
        import os

        worker_pids = {e["pid"] for e in partition_events}
        assert os.getpid() not in worker_pids

        # Workers published into their own registries; the parent
        # merged them and did not publish again on top.
        runs = registry.counter(ENGINE_RUNS).value
        assert runs == 4.0
        assert getattr(result.stats, "published_by_workers", False)
        assert result.stats.passes == 4
        assert len(result.stats.workers) == 4

    def test_serial_mode_publishes_once(
        self, small_schema, small_dataset
    ):
        registry = reset_registry()
        PartitionedEngine(num_partitions=4, parallel="serial").evaluate(
            small_dataset, picklable_workflow(small_schema)
        )
        assert registry.counter(ENGINE_RUNS).value == 1.0
