"""Direct tests of the reference node semantics (Tables 2-4)."""

import pytest

from repro.aggregates.base import AggSpec
from repro.algebra.conditions import (
    ChildParent,
    ParentChild,
    SelfMatch,
    Sibling,
)
from repro.engine.compile import (
    Arc,
    BasicNode,
    CombineNode,
    CompositeNode,
)
from repro.engine.semantics import (
    eval_basic,
    eval_combine,
    eval_composite,
)
from repro.algebra.expr import CombineFn
from repro.cube.granularity import Granularity
from repro.schema.dataset_schema import synthetic_schema
from repro.storage.table import InMemoryDataset


@pytest.fixture(scope="module")
def schema():
    return synthetic_schema(num_dimensions=1, levels=2, fanout=4)


@pytest.fixture(scope="module")
def fine(schema):
    return Granularity(schema, (0,))


@pytest.fixture(scope="module")
def coarse(schema):
    return Granularity(schema, (1,))


def make_composite(name, gran, agg, cond, keys_node, values_node):
    node = CompositeNode(name, gran, AggSpec(agg, "M"), cond=cond)
    if keys_node is not None:
        keys_arc = Arc(keys_node, node, "keys")
        node.in_arcs.append(keys_arc)
    values_arc = Arc(values_node, node, "values", cond=cond)
    node.in_arcs.append(values_arc)
    return node


def stub_node(name, gran):
    return BasicNode(name, gran, AggSpec("count", "*"))


class TestEvalBasic:
    def test_count_groups(self, schema, fine):
        ds = InMemoryDataset(schema, [(0, 1.0), (0, 2.0), (3, 1.0)])
        node = BasicNode("cnt", fine, AggSpec("count", "*"))
        assert eval_basic(node, ds) == {(0,): 2, (3,): 1}

    def test_value_index_and_filter(self, schema, fine):
        ds = InMemoryDataset(schema, [(0, 1.0), (0, 2.0), (3, 5.0)])
        node = BasicNode(
            "sum",
            fine,
            AggSpec("sum", "v"),
            record_filter=lambda r: r[1] > 1.0,
            value_index=1,
        )
        assert eval_basic(node, ds) == {(0,): 2.0, (3,): 5.0}


class TestEvalComposite:
    def test_rollup_groups_by_lifted_key(self, schema, fine, coarse):
        src = stub_node("src", fine)
        node = make_composite("up", coarse, "sum", None, None, src)
        tables = {"src": {(0,): 1, (1,): 2, (5,): 10}}
        assert eval_composite(node, tables) == {(0,): 3, (1,): 10}

    def test_self_match_left_outer(self, schema, fine):
        keys = stub_node("keys", fine)
        src = stub_node("src", fine)
        node = make_composite("m", fine, "max", SelfMatch(), keys, src)
        tables = {"keys": {(0,): 0, (1,): 0}, "src": {(0,): 7}}
        assert eval_composite(node, tables) == {(0,): 7, (1,): None}

    def test_parent_child_pulls_ancestor(self, schema, fine, coarse):
        keys = stub_node("keys", fine)
        src = stub_node("src", coarse)
        node = make_composite("m", fine, "max", ParentChild(), keys, src)
        tables = {"keys": {(1,): 0, (6,): 0}, "src": {(0,): 5}}
        # key (1,) has ancestor (0,): gets 5; key (6,) ancestor (1,): none.
        assert eval_composite(node, tables) == {(1,): 5, (6,): None}

    def test_child_parent_aggregates_descendants(
        self, schema, fine, coarse
    ):
        keys = stub_node("keys", coarse)
        src = stub_node("src", fine)
        node = make_composite("m", coarse, "sum", ChildParent(), keys, src)
        tables = {
            "keys": {(0,): 0, (2,): 0, (3,): 0},
            "src": {(0,): 1, (3,): 2, (9,): 4},
        }
        # Children 0,3 -> parent 0; child 9 -> parent 2; parent 3 empty.
        assert eval_composite(node, tables) == {
            (0,): 3,
            (2,): 4,
            (3,): None,
        }

    def test_sibling_window(self, schema, fine):
        keys = stub_node("keys", fine)
        src = stub_node("src", fine)
        node = make_composite(
            "m", fine, "sum", Sibling({"d0": (1, 1)}), keys, src
        )
        tables = {
            "keys": {(1,): 0, (5,): 0},
            "src": {(0,): 1, (1,): 2, (2,): 4, (6,): 8},
        }
        # window of (1,) = cells 0..2 -> 7; window of (5,) = 4..6 -> 8.
        assert eval_composite(node, tables) == {(1,): 7, (5,): 8}

    def test_arc_filter_applies_before_matching(self, schema, fine):
        keys = stub_node("keys", fine)
        src = stub_node("src", fine)
        node = make_composite("m", fine, "sum", SelfMatch(), keys, src)
        node.values_arc.filter = lambda key, value: value > 1
        tables = {"keys": {(0,): 0, (1,): 0}, "src": {(0,): 1, (1,): 5}}
        assert eval_composite(node, tables) == {(0,): None, (1,): 5}


class TestEvalCombine:
    def test_left_outer_combination(self, schema, fine):
        a, b = stub_node("a", fine), stub_node("b", fine)
        node = CombineNode(
            "c",
            fine,
            CombineFn(
                lambda x, y: (x or 0) + 10 * (y or 0), handles_null=True
            ),
            num_inputs=2,
        )
        for index, src in enumerate((a, b)):
            arc = Arc(src, node, "combine", index=index)
            node.in_arcs.append(arc)
        tables = {"a": {(0,): 1, (1,): 2}, "b": {(0,): 3}}
        # Keys come from the base (slot 0): key (1,) keeps b=None.
        assert eval_combine(node, tables) == {(0,): 31, (1,): 2}

    def test_null_shortcircuit_without_handles_null(self, schema, fine):
        a, b = stub_node("a", fine), stub_node("b", fine)
        node = CombineNode(
            "c", fine, CombineFn(lambda x, y: x + y), num_inputs=2
        )
        for index, src in enumerate((a, b)):
            node.in_arcs.append(Arc(src, node, "combine", index=index))
        tables = {"a": {(0,): 1}, "b": {}}
        assert eval_combine(node, tables) == {(0,): None}
