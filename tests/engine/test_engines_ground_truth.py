"""Hand-computed ground truth for every engine.

These cases are small enough to verify with pencil and paper — they pin
the *semantics* down so the engine-equivalence property tests aren't
just checking that four engines share a bug.
"""

import pytest

from repro.algebra.conditions import SelfMatch
from repro.algebra.predicates import Field
from repro.engine.multi_pass import MultiPassEngine
from repro.engine.naive import RelationalEngine
from repro.engine.single_scan import SingleScanEngine
from repro.engine.sort_scan import SortScanEngine
from repro.schema.dataset_schema import synthetic_schema
from repro.storage.table import InMemoryDataset
from repro.workflow.workflow import AggregationWorkflow

ENGINES = [
    RelationalEngine(),
    RelationalEngine(spool=False, reuse_subexpressions=True),
    SingleScanEngine(),
    SortScanEngine(assert_no_late_updates=True),
    SortScanEngine(optimize=True, assert_no_late_updates=True),
    MultiPassEngine(memory_budget_entries=1000),
]


@pytest.fixture(scope="module")
def schema():
    # 1 dim, 2 non-ALL levels, fanout 4: values 0..15, parents 0..3.
    return synthetic_schema(num_dimensions=1, levels=2, fanout=4)


@pytest.fixture(scope="module")
def dataset(schema):
    # d0 values: 0,0,1,4,5,5,5,12 with measure v = d0 * 10.
    values = [0, 0, 1, 4, 5, 5, 5, 12]
    return InMemoryDataset(schema, [(v, float(v * 10)) for v in values])


def run_all(dataset, wf):
    return [(e, e.evaluate(dataset, wf)) for e in ENGINES]


@pytest.mark.parametrize("engine", ENGINES, ids=lambda e: e.name)
class TestGroundTruth:
    def test_basic_count_and_sum(self, schema, dataset, engine):
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.basic("total", {"d0": "d0.L0"}, agg=("sum", "v"))
        result = engine.evaluate(dataset, wf)
        assert result["cnt"].rows == {
            (0,): 2,
            (1,): 1,
            (4,): 1,
            (5,): 3,
            (12,): 1,
        }
        assert result["total"].rows == {
            (0,): 0.0,
            (1,): 10.0,
            (4,): 40.0,
            (5,): 150.0,
            (12,): 120.0,
        }

    def test_record_filter(self, schema, dataset, engine):
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L1"}, where=Field("v") >= 50.0)
        result = engine.evaluate(dataset, wf)
        # Records with v >= 50: d0 in {5,5,5,12} -> parents 1 and 3.
        assert result["cnt"].rows == {(1,): 3, (3,): 1}

    def test_rollup_with_selection(self, schema, dataset, engine):
        """Example 2's shape: count child regions with M > 1."""
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.rollup(
            "busy", {"d0": "d0.L1"}, source="cnt",
            where=Field("M") > 1, agg="count",
        )
        result = engine.evaluate(dataset, wf)
        # Child counts: 0->2, 1->1, 4->1, 5->3, 12->1.
        # M>1 keeps {0:2, 5:3}; parents: 0->0, 5->1.
        assert result["busy"].rows == {(0,): 1, (1,): 1}

    def test_rollup_avg(self, schema, dataset, engine):
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.rollup("mean", {"d0": "d0.L1"}, source="cnt", agg="avg")
        result = engine.evaluate(dataset, wf)
        # Parent 0: children counts (2,1) -> 1.5; parent 1: (1,3) -> 2;
        # parent 3: (1,) -> 1.
        assert result["mean"].rows == {
            (0,): 1.5,
            (1,): 2.0,
            (3,): 1.0,
        }

    def test_sibling_window_left_outer(self, schema, dataset, engine):
        """Forward window [t, t+1]; cells without matches still appear."""
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.moving_window(
            "win", {"d0": "d0.L0"}, source="cnt",
            windows={"d0": (0, 1)}, agg="sum",
        )
        result = engine.evaluate(dataset, wf)
        # cnt: {0:2, 1:1, 4:1, 5:3, 12:1}
        # win(k) = cnt[k] + cnt[k+1] over existing cells only.
        assert result["win"].rows == {
            (0,): 3,  # 2 + 1
            (1,): 1,  # 1 (cell 2 empty)
            (4,): 4,  # 1 + 3
            (5,): 3,
            (12,): 1,
        }

    def test_backward_window_excluding_self(self, schema, dataset, engine):
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.moving_window(
            "prev", {"d0": "d0.L0"}, source="cnt",
            windows={"d0": (2, -1)}, agg="sum",
        )
        result = engine.evaluate(dataset, wf)
        # prev(k) = sum of cnt[k-2..k-1] over existing cells; empty -> None
        assert result["prev"].rows == {
            (0,): None,
            (1,): 2,  # cnt[0]
            (4,): None,  # cells 2,3 empty
            (5,): 1,  # cnt[4]
            (12,): None,
        }

    def test_parent_child_broadcast(self, schema, dataset, engine):
        wf = AggregationWorkflow(schema)
        wf.basic("fine", {"d0": "d0.L0"})
        wf.basic("coarse", {"d0": "d0.L1"})
        wf.broadcast(
            "inherited", {"d0": "d0.L0"}, source="coarse",
            keys="fine", agg="max",
        )
        result = engine.evaluate(dataset, wf)
        # coarse: parent 0 -> 3 records, parent 1 -> 3, parent 3 -> 2.
        # Wait: values 0,0,1 -> parent 0 (3); 4,5,5,5 -> parent 1 (4);
        # 12 -> parent 3 (1).
        assert result["inherited"].rows == {
            (0,): 3,
            (1,): 3,
            (4,): 4,
            (5,): 4,
            (12,): 1,
        }

    def test_self_match(self, schema, dataset, engine):
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.match(
            "same", {"d0": "d0.L0"}, source="cnt",
            cond=SelfMatch(), agg="max", keys="cnt",
        )
        result = engine.evaluate(dataset, wf)
        assert result["same"].rows == result["cnt"].rows

    def test_combine_with_nulls(self, schema, dataset, engine):
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.moving_window(
            "prev", {"d0": "d0.L0"}, source="cnt",
            windows={"d0": (1, -1)}, agg="sum",
        )
        wf.combine(
            "ratio", ["cnt", "prev"],
            fn=lambda c, p: None if not p else c / p,
            handles_null=True,
        )
        result = engine.evaluate(dataset, wf)
        # prev: 0->None, 1->2, 4->None, 5->1, 12->None.
        assert result["ratio"].rows == {
            (0,): None,
            (1,): 0.5,
            (4,): None,
            (5,): 3.0,
            (12,): None,
        }

    def test_filter_output(self, schema, dataset, engine):
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.filter("big", source="cnt", where=Field("M") >= 2)
        result = engine.evaluate(dataset, wf)
        assert result["big"].rows == {(0,): 2, (5,): 3}

    def test_global_aggregate(self, schema, dataset, engine):
        wf = AggregationWorkflow(schema)
        wf.basic("all_cnt", {})
        result = engine.evaluate(dataset, wf)
        assert result["all_cnt"].rows == {(0,): 8}

    def test_empty_dataset(self, schema, engine):
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.rollup("up", {"d0": "d0.L1"}, source="cnt")
        empty = InMemoryDataset(schema, [])
        result = engine.evaluate(empty, wf)
        assert result["cnt"].rows == {}
        assert result["up"].rows == {}

    def test_single_record(self, schema, engine):
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.moving_window(
            "win", {"d0": "d0.L0"}, source="cnt",
            windows={"d0": (0, 2)}, agg="avg",
        )
        one = InMemoryDataset(schema, [(7, 1.0)])
        result = engine.evaluate(one, wf)
        assert result["cnt"].rows == {(7,): 1}
        assert result["win"].rows == {(7,): 1.0}
