"""The central correctness property: all engines agree.

Random datasets × random composite-measure workflows, evaluated by the
relational baseline, the single-scan engine, the sort/scan engine (with
the late-update assertion armed, so watermark safety is checked on
every example), and the multi-pass engine under a tight budget.
"""

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.algebra.conditions import SelfMatch
from repro.errors import PlanError
from repro.algebra.predicates import Field
from repro.cube.order import SortKey
from repro.engine.multi_pass import MultiPassEngine
from repro.engine.naive import RelationalEngine
from repro.engine.single_scan import SingleScanEngine
from repro.engine.sort_scan import SortScanEngine
from repro.schema.dataset_schema import synthetic_schema
from repro.storage.table import InMemoryDataset
from repro.workflow.workflow import AggregationWorkflow

SCHEMA = synthetic_schema(num_dimensions=2, levels=3, fanout=3)
#: Base domain has 27 values per dimension.
BASE_CARD = 27

AGGS = ["count", "sum", "min", "max", "avg"]


@st.composite
def datasets(draw):
    n = draw(st.integers(min_value=0, max_value=120))
    records = [
        (
            draw(st.integers(0, BASE_CARD - 1)),
            draw(st.integers(0, BASE_CARD - 1)),
            float(draw(st.integers(-5, 5))),
        )
        for __ in range(n)
    ]
    return InMemoryDataset(SCHEMA, records)


@st.composite
def granularities(draw, min_level=0):
    l0 = draw(st.integers(min_level, 3))
    l1 = draw(st.integers(min_level, 3))
    if l0 == 3 and l1 == 3:
        l0 = draw(st.integers(min_level, 2))
    from repro.cube.granularity import Granularity

    return Granularity(SCHEMA, (l0, l1))


@st.composite
def workflows(draw):
    wf = AggregationWorkflow(SCHEMA, "random")
    counter = [0]

    def fresh(prefix):
        counter[0] += 1
        return f"{prefix}{counter[0]}"

    num_basics = draw(st.integers(1, 3))
    for __ in range(num_basics):
        gran = draw(granularities())
        agg = draw(st.sampled_from(AGGS))
        where = draw(
            st.sampled_from([None, Field("v") >= 0.0, Field("v") < 3.0])
        )
        wf.basic(
            fresh("b"),
            gran,
            agg=(agg, "v") if agg != "count" else "count",
            where=where,
        )

    num_composites = draw(st.integers(0, 4))
    for __ in range(num_composites):
        sources = list(wf.measures)
        source = draw(st.sampled_from(sources))
        src_measure = wf[source]
        src_gran = src_measure.granularity
        kind = draw(
            st.sampled_from(["rollup", "window", "self", "combine",
                             "filter", "broadcast"])
        )
        agg = draw(st.sampled_from(AGGS))
        where = draw(st.sampled_from([None, Field("M") > 0]))
        if kind == "rollup":
            coarser_levels = tuple(
                min(level + draw(st.integers(0, 2)), 3)
                for level in src_gran.levels
            )
            from repro.cube.granularity import Granularity

            gran = Granularity(SCHEMA, coarser_levels)
            if not src_gran.strictly_finer(gran):
                continue
            wf.rollup(fresh("r"), gran, source=source, agg=agg, where=where)
        elif kind == "window":
            window_dims = [
                i for i in src_gran.key_dims
            ]
            if not window_dims:
                continue
            dim = draw(st.sampled_from(window_dims))
            before = draw(st.integers(0, 2))
            after = draw(st.integers(-1, 2))
            if before + after < 0:
                continue
            wf.moving_window(
                fresh("w"),
                src_gran,
                source=source,
                windows={SCHEMA.dimensions[dim].name: (before, after)},
                agg=agg,
                where=where,
            )
        elif kind == "self":
            wf.match(
                fresh("s"),
                src_gran,
                source=source,
                cond=SelfMatch(),
                agg=agg,
                where=where,
            )
        elif kind == "broadcast":
            finer_levels = tuple(
                max(level - draw(st.integers(0, 2)), 0)
                for level in src_gran.levels
            )
            from repro.cube.granularity import Granularity

            gran = Granularity(SCHEMA, finer_levels)
            if not gran.strictly_finer(src_gran):
                continue
            wf.broadcast(
                fresh("p"), gran, source=source, agg=agg, where=where
            )
        elif kind == "combine":
            peers = [
                name
                for name in wf.measures
                if wf[name].granularity == src_gran
                and not wf[name].hidden
            ]
            chosen = [source] + peers[: draw(st.integers(0, 2))]
            wf.combine(
                fresh("c"),
                chosen,
                fn=lambda *vs: sum(v or 0 for v in vs),
                handles_null=True,
            )
        elif kind == "filter":
            wf.filter(fresh("f"), source=source, where=Field("M") >= 1)
    return wf


@st.composite
def sort_keys(draw):
    """A random (possibly suboptimal) sort key over the schema."""
    dims = draw(st.permutations([0, 1]))
    length = draw(st.integers(1, 2))
    parts = [(d, draw(st.integers(0, 2))) for d in dims[:length]]
    return SortKey(SCHEMA, parts)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(dataset=datasets(), wf=workflows(), sort_key=sort_keys())
def test_all_engines_agree(dataset, wf, sort_key):
    engines = [
        RelationalEngine(spool=False),
        RelationalEngine(spool=False, reuse_subexpressions=True),
        SingleScanEngine(),
        SortScanEngine(assert_no_late_updates=True),
        SortScanEngine(sort_key=sort_key, assert_no_late_updates=True),
        SortScanEngine(
            assert_no_late_updates=True, cascade_prefix=2,
            max_records_between_cascades=7,
        ),
        MultiPassEngine(memory_budget_entries=40),
    ]
    try:
        results = [engine.evaluate(dataset, wf) for engine in engines]
    except PlanError as exc:
        # The streaming planner has one documented unsupported shape —
        # sibling windows chained at *different* levels of one dimension
        # (e.g. window -> rollup -> window) — and the generator can
        # occasionally build it.  Discard such examples; any other
        # PlanError is a real bug and must surface.
        assume("chained sibling windows" not in str(exc))
        raise
    reference = results[0]
    for engine, result in zip(engines[1:], results[1:]):
        for name in wf.outputs():
            assert reference[name].equal_rows(result[name]), (
                f"{engine.name} disagrees on {name}: "
                f"{reference[name].diff(result[name])}"
            )


@settings(max_examples=25, deadline=None)
@given(dataset=datasets())
def test_paper_examples_on_random_data(dataset):
    """The Examples 1-5 pipeline shape, over the synthetic schema."""
    wf = AggregationWorkflow(SCHEMA)
    wf.basic("Count", {"d0": "d0.L0", "d1": "d1.L0"})
    wf.rollup(
        "sCount", {"d0": "d0.L0"}, source="Count",
        where=Field("M") > 1, agg="count",
    )
    wf.rollup(
        "sTraffic", {"d0": "d0.L0"}, source="Count",
        where=Field("M") > 1, agg=("sum", "M"),
    )
    wf.moving_window(
        "avgCount", {"d0": "d0.L0"}, source="sCount",
        windows={"d0": (0, 2)}, agg="avg",
    )
    wf.combine(
        "ratio",
        ["avgCount", "sTraffic", "sCount"],
        fn=lambda a, t, c: None if (a is None or not t or not c) else (
            a / (t / c)
        ),
        handles_null=True,
    )
    reference = RelationalEngine(spool=False).evaluate(dataset, wf)
    streaming = SortScanEngine(assert_no_late_updates=True).evaluate(
        dataset, wf
    )
    for name in wf.outputs():
        assert reference[name].equal_rows(streaming[name]), (
            reference[name].diff(streaming[name])
        )
