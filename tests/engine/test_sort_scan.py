"""Focused tests for the one-pass sort/scan engine."""

import pytest

from repro.errors import MemoryBudgetExceeded
from repro.algebra.predicates import Field
from repro.cube.order import SortKey
from repro.engine.compile import compile_workflow
from repro.engine.single_scan import SingleScanEngine
from repro.engine.sort_scan import SortScanEngine, default_sort_key
from repro.data.synthetic import synthetic_dataset
from repro.schema.dataset_schema import synthetic_schema
from repro.storage.flatfile import FlatFileDataset, write_flatfile
from repro.storage.table import InMemoryDataset
from repro.workflow.workflow import AggregationWorkflow


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(4000, num_dimensions=2, levels=3, fanout=4)


def chain_workflow(schema):
    wf = AggregationWorkflow(schema)
    wf.basic("cnt", {"d0": "d0.L0"})
    wf.rollup("up", {"d0": "d0.L1"}, source="cnt", agg="sum")
    wf.moving_window(
        "trend", {"d0": "d0.L1"}, source="up",
        windows={"d0": (0, 2)}, agg="avg",
    )
    return wf


class TestEarlyFlushing:
    def test_peak_far_below_single_scan(self, dataset):
        wf = chain_workflow(dataset.schema)
        streamed = SortScanEngine().evaluate(dataset, wf)
        resident = SingleScanEngine().evaluate(dataset, wf)
        assert streamed.stats.peak_entries < resident.stats.peak_entries / 4

    def test_flushed_entries_counted(self, dataset):
        wf = chain_workflow(dataset.schema)
        stats = SortScanEngine().evaluate(dataset, wf).stats
        assert stats.flushed_entries > 0
        assert stats.rows_scanned == len(dataset)
        assert stats.scans == 1

    def test_ablation_no_early_flush_uses_more_memory(self, dataset):
        """Disable mid-scan cascades (the paper's early-flush idea) by
        setting an enormous cascade interval: memory balloons."""
        wf = chain_workflow(dataset.schema)
        eager = SortScanEngine().evaluate(dataset, wf)
        lazy = SortScanEngine(
            cascade_prefix=1,
            max_records_between_cascades=10**9,
            sort_key=SortKey(dataset.schema, [(1, 0)]),  # useless key
        ).evaluate(dataset, wf)
        assert eager.stats.peak_entries < lazy.stats.peak_entries


class TestSortKeys:
    def test_default_key_covers_used_dims(self, dataset):
        wf = chain_workflow(dataset.schema)
        graph = compile_workflow(wf)
        key = default_sort_key(graph)
        assert key.parts == ((0, 0),)

    def test_bad_key_still_correct(self, dataset):
        """A sort key that never helps flushing must not break results."""
        wf = chain_workflow(dataset.schema)
        good = SortScanEngine().evaluate(dataset, wf)
        bad = SortScanEngine(
            sort_key=SortKey(dataset.schema, [(1, 2)]),
            assert_no_late_updates=True,
        ).evaluate(dataset, wf)
        for name in wf.outputs():
            assert good[name].equal_rows(bad[name])

    def test_optimize_flag_picks_a_key(self, dataset):
        wf = chain_workflow(dataset.schema)
        result = SortScanEngine(optimize=True).evaluate(dataset, wf)
        assert "sort_key" in result.stats.notes


class TestBudget:
    def test_budget_violation_raises(self, dataset):
        wf = chain_workflow(dataset.schema)
        engine = SortScanEngine(
            sort_key=SortKey(dataset.schema, [(1, 2)]),
            memory_budget_entries=50,
            max_records_between_cascades=16,
        )
        with pytest.raises(MemoryBudgetExceeded):
            engine.evaluate(dataset, wf)

    def test_within_budget_succeeds(self, dataset):
        wf = chain_workflow(dataset.schema)
        result = SortScanEngine(memory_budget_entries=5000).evaluate(
            dataset, wf
        )
        assert result.stats.peak_entries <= 5000


class TestExternalSortPath:
    def test_small_run_size_forces_external_sort(self, dataset, tmp_path):
        wf = chain_workflow(dataset.schema)
        reference = SortScanEngine().evaluate(dataset, wf)
        external = SortScanEngine(
            run_size=500, assert_no_late_updates=True
        ).evaluate(dataset, wf)
        assert external.stats.sort_seconds > 0
        for name in wf.outputs():
            assert reference[name].equal_rows(external[name])

    def test_flat_file_input(self, dataset, tmp_path):
        wf = chain_workflow(dataset.schema)
        path = str(tmp_path / "facts.bin")
        write_flatfile(path, dataset.schema, dataset.records)
        on_disk = FlatFileDataset(path, dataset.schema)
        reference = SortScanEngine().evaluate(dataset, wf)
        from_disk = SortScanEngine().evaluate(on_disk, wf)
        for name in wf.outputs():
            assert reference[name].equal_rows(from_disk[name])


class TestCascadeTuning:
    @pytest.mark.parametrize("prefix", [1, 2])
    @pytest.mark.parametrize("interval", [8, 4096])
    def test_cascade_policy_never_changes_results(
        self, dataset, prefix, interval
    ):
        wf = chain_workflow(dataset.schema)
        reference = SortScanEngine().evaluate(dataset, wf)
        tuned = SortScanEngine(
            cascade_prefix=prefix,
            max_records_between_cascades=interval,
            assert_no_late_updates=True,
        ).evaluate(dataset, wf)
        for name in wf.outputs():
            assert reference[name].equal_rows(tuned[name])

    def test_finer_cascades_use_less_memory(self, dataset):
        schema = dataset.schema
        wf = AggregationWorkflow(schema)
        wf.basic("pair", {"d0": "d0.L0", "d1": "d1.L0"})
        frequent = SortScanEngine(
            cascade_prefix=2, max_records_between_cascades=64
        ).evaluate(dataset, wf)
        rare = SortScanEngine(
            cascade_prefix=1, max_records_between_cascades=10**9
        ).evaluate(dataset, wf)
        assert frequent.stats.peak_entries <= rare.stats.peak_entries


class TestMeasureAttributesAndFilters:
    def test_sum_of_measure_attribute(self):
        schema = synthetic_schema(num_dimensions=1, levels=2, fanout=4)
        records = [(i % 8, float(i)) for i in range(32)]
        ds = InMemoryDataset(schema, records)
        wf = AggregationWorkflow(schema)
        wf.basic("total", {"d0": "d0.L0"}, agg=("sum", "v"))
        wf.filter("positive", source="total", where=Field("M") > 60)
        result = SortScanEngine(
            assert_no_late_updates=True
        ).evaluate(ds, wf)
        assert sum(result["total"].rows.values()) == sum(r[1] for r in records)
        assert all(v > 60 for v in result["positive"].rows.values())
