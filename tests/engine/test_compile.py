"""Tests for compiling AW-RA expressions into evaluation graphs."""

import pytest

from repro.errors import PlanError
from repro.algebra.conditions import Sibling
from repro.algebra.predicates import Field
from repro.engine.compile import (
    BasicNode,
    CombineNode,
    CompositeNode,
    compile_measures,
    compile_workflow,
)
from repro.queries.examples import examples_workflow
from repro.schema.dataset_schema import network_log_schema
from repro.workflow.workflow import AggregationWorkflow


@pytest.fixture(scope="module")
def net():
    return network_log_schema()


@pytest.fixture(scope="module")
def graph(net):
    return compile_workflow(examples_workflow(net))


class TestGraphShape:
    def test_nodes_topologically_ordered(self, graph):
        seen = set()
        for node in graph.nodes:
            for arc in node.in_arcs:
                assert arc.src.name in seen
            seen.add(node.name)

    def test_selects_become_arc_filters_not_nodes(self, graph):
        """sigma(Count) feeds sCount through a filtered arc."""
        names = [type(n).__name__ for n in graph.nodes]
        assert "Select" not in names
        scount = next(n for n in graph.nodes if n.name == "sCount")
        assert scount.values_arc.filter is not None

    def test_shared_count_compiled_once(self, graph):
        basics = [
            n
            for n in graph.nodes
            if isinstance(n, BasicNode) and n.name == "Count"
        ]
        assert len(basics) == 1
        # Count feeds both sCount and sTraffic.
        count = basics[0]
        assert len(count.out_arcs) == 2

    def test_match_join_has_keys_and_values_arcs(self, graph):
        avg = next(n for n in graph.nodes if n.name == "avgCount")
        assert isinstance(avg, CompositeNode)
        assert isinstance(avg.cond, Sibling)
        assert avg.keys_arc is not None
        assert avg.values_arc.src.name == "sCount"

    def test_combine_node_slots(self, graph):
        ratio = next(n for n in graph.nodes if n.name == "ratio")
        assert isinstance(ratio, CombineNode)
        assert ratio.num_inputs == 3
        assert sorted(arc.index for arc in ratio.in_arcs) == [0, 1, 2]

    def test_outputs_map_public_measures(self, graph):
        assert set(graph.outputs) == {
            "Count",
            "sCount",
            "sTraffic",
            "avgCount",
            "ratio",
        }

    def test_describe_lists_every_node(self, graph):
        text = graph.describe()
        for node in graph.nodes:
            assert node.name in text


class TestOutputFilters:
    def test_top_level_select_becomes_output_filter(self, net):
        wf = AggregationWorkflow(net)
        wf.basic("cnt", {"t": "Hour"})
        wf.filter("big", source="cnt", where=Field("M") > 3)
        graph = compile_workflow(wf)
        node, out_filter = graph.outputs["big"]
        assert node.name == "cnt"
        assert out_filter is not None
        assert graph.output_names_of(node) == ["cnt", "big"]


class TestErrors:
    def test_empty_measures_rejected(self):
        with pytest.raises(PlanError):
            compile_measures({})

    def test_unknown_outputs_rejected(self, net):
        wf = AggregationWorkflow(net)
        wf.basic("cnt", {"t": "Hour"})
        exprs = wf.to_algebra()
        with pytest.raises(PlanError):
            compile_measures(exprs, outputs=["ghost"])

    def test_bare_fact_table_rejected(self, net):
        from repro.algebra.expr import FactTable

        with pytest.raises(PlanError):
            compile_measures({"d": FactTable(net)})
