"""Property test of Proposition 2 over the watermark machinery.

"All update streams are ordered by an order vector in which the
attribute vector is identical to the sort key for the dataset being
scanned."  In spec terms: every finalization predicate's parts are a
*prefix* of the scan key's attribute sequence, at levels no finer than
the scan key provides.
"""

from hypothesis import given, settings, strategies as st

from repro.cube.order import SortKey
from repro.engine.compile import compile_workflow
from repro.engine.watermark import build_node_specs
from repro.schema.dataset_schema import synthetic_schema
from repro.workflow.workflow import AggregationWorkflow

SCHEMA = synthetic_schema(num_dimensions=3, levels=3, fanout=4)


@st.composite
def random_workflow(draw):
    from repro.cube.granularity import Granularity

    wf = AggregationWorkflow(SCHEMA)
    names = []
    for i in range(draw(st.integers(1, 3))):
        levels = tuple(draw(st.integers(0, 3)) for __ in range(3))
        if all(level == 3 for level in levels):
            levels = (0,) + levels[1:]
        name = f"b{i}"
        wf.basic(name, Granularity(SCHEMA, levels))
        names.append(name)
    for i in range(draw(st.integers(0, 2))):
        source = draw(st.sampled_from(names))
        gran = wf[source].granularity
        coarser = tuple(
            min(level + draw(st.integers(0, 2)), 3)
            for level in gran.levels
        )
        from repro.cube.granularity import Granularity as G

        target = G(SCHEMA, coarser)
        if gran.strictly_finer(target):
            name = f"r{i}"
            wf.rollup(name, target, source=source, agg="sum")
            names.append(name)
    return wf


@st.composite
def random_sort_key(draw):
    dims = draw(st.permutations([0, 1, 2]))
    length = draw(st.integers(1, 3))
    return SortKey(
        SCHEMA,
        [(d, draw(st.integers(0, 2))) for d in dims[:length]],
    )


@settings(max_examples=80, deadline=None)
@given(wf=random_workflow(), key=random_sort_key())
def test_specs_follow_scan_key_attribute_order(wf, key):
    graph = compile_workflow(wf)
    specs = build_node_specs(graph, key)
    scan_attrs = [dim for dim, __ in key.parts]
    scan_levels = dict(key.parts)
    for node in graph.nodes:
        for spec in specs[node.name]:
            part_dims = [dim for dim, __, ___, ____ in spec.parts]
            # Prefix of the scan key's attribute sequence...
            assert part_dims == scan_attrs[: len(part_dims)]
            for dim, level, scan_index, scan_level in spec.parts:
                # ...at levels no finer than the scan key carries...
                assert level >= scan_levels[dim]
                assert scan_level == scan_levels[dim]
                assert scan_attrs[scan_index] == dim
                # ...and never finer than the node's own keys.
                assert level >= node.granularity.levels[dim] or (
                    node.granularity.levels[dim]
                    > scan_levels[dim]
                )
