"""Focused tests for the relational baseline engine."""

import pytest

from repro.engine.naive import RelationalEngine
from repro.data.synthetic import synthetic_dataset
from repro.workflow.workflow import AggregationWorkflow


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(2000, num_dimensions=2, levels=3, fanout=4)


def shared_base_workflow(schema):
    """Two outputs sharing one basic measure — the sharing testbed."""
    wf = AggregationWorkflow(schema)
    wf.basic("cnt", {"d0": "d0.L0"}, hidden=True)
    wf.rollup("up_sum", {"d0": "d0.L1"}, source="cnt", agg="sum")
    wf.rollup("up_max", {"d0": "d0.L1"}, source="cnt", agg="max")
    return wf


class TestExecutionModes:
    def test_spool_and_memory_agree(self, dataset):
        # Spooling applies to the shared-subexpression mode (one
        # materialized table per measure); per-output query blocks keep
        # their intermediates block-local.
        wf = shared_base_workflow(dataset.schema)
        spooled = RelationalEngine(
            spool=True, reuse_subexpressions=True
        ).evaluate(dataset, wf)
        in_memory = RelationalEngine(
            spool=False, reuse_subexpressions=True
        ).evaluate(dataset, wf)
        for name in wf.outputs():
            assert spooled[name].equal_rows(in_memory[name])
        assert spooled.stats.spooled_entries > 0
        assert in_memory.stats.spooled_entries == 0

    def test_reuse_modes_agree_on_results(self, dataset):
        wf = shared_base_workflow(dataset.schema)
        nested = RelationalEngine(spool=False).evaluate(dataset, wf)
        shared = RelationalEngine(
            spool=False, reuse_subexpressions=True
        ).evaluate(dataset, wf)
        for name in wf.outputs():
            assert nested[name].equal_rows(shared[name])

    def test_per_output_mode_rescans_shared_measures(self, dataset):
        """The nested-SQL cost model: shared sub-measures are paid per
        output query block."""
        wf = shared_base_workflow(dataset.schema)
        nested = RelationalEngine(spool=False).evaluate(dataset, wf)
        shared = RelationalEngine(
            spool=False, reuse_subexpressions=True
        ).evaluate(dataset, wf)
        assert nested.stats.scans == 2  # cnt evaluated per output
        assert shared.stats.scans == 1  # cnt evaluated once

    def test_sort_group_fallback_is_exact(self, dataset):
        wf = shared_base_workflow(dataset.schema)
        unconstrained = RelationalEngine(spool=False).evaluate(
            dataset, wf
        )
        budgeted = RelationalEngine(
            spool=False, memory_budget_entries=10, run_size=64
        )
        result = budgeted.evaluate(dataset, wf)
        assert "sort-group" in result.stats.notes
        for name in wf.outputs():
            assert unconstrained[name].equal_rows(result[name])

    def test_budget_larger_than_groups_keeps_hash_path(self, dataset):
        wf = shared_base_workflow(dataset.schema)
        result = RelationalEngine(
            spool=False, memory_budget_entries=10**6
        ).evaluate(dataset, wf)
        assert "sort-group" not in result.stats.notes

    def test_record_filter_respected_in_sort_group(self, dataset):
        from repro.algebra.predicates import Field

        schema = dataset.schema
        wf = AggregationWorkflow(schema)
        wf.basic(
            "half", {"d0": "d0.L0"}, where=Field("v") >= 0.5
        )
        plain = RelationalEngine(spool=False).evaluate(dataset, wf)
        grouped = RelationalEngine(
            spool=False, memory_budget_entries=5, run_size=64
        ).evaluate(dataset, wf)
        assert plain["half"].equal_rows(grouped["half"])
