"""Streaming over the real calendar hierarchy — the §5.3.1 example.

The paper's slack example is a day-level measure that depends on its
month's aggregate (a parent/child match join): "its value depends on
the aggregation of the corresponding month, which will only be
available at the end of the month", giving slack −31..0 on a
day-sorted axis.  Months genuinely vary in length (leap Februaries
included), which stresses the watermark arithmetic far harder than the
uniform synthetic hierarchy — that's exactly what these tests cover.
"""

import datetime

import pytest

from repro.engine.naive import RelationalEngine
from repro.engine.single_scan import SingleScanEngine
from repro.engine.sort_scan import SortScanEngine
from repro.cube.order import SortKey
from repro.schema.dataset_schema import network_log_schema
from repro.storage.table import InMemoryDataset
from repro.workflow.workflow import AggregationWorkflow


def ts(year, month, day, hour=0):
    epoch = datetime.datetime(1970, 1, 1)
    return int(
        (datetime.datetime(year, month, day, hour) - epoch).total_seconds()
    )


@pytest.fixture(scope="module")
def schema():
    return network_log_schema()


@pytest.fixture(scope="module")
def dataset(schema):
    """Traffic spanning month and leap-year boundaries."""
    moments = [
        # December -> January (year boundary)
        ts(1999, 12, 30, 5),
        ts(1999, 12, 31, 23),
        ts(2000, 1, 1, 0),
        ts(2000, 1, 15, 12),
        ts(2000, 1, 31, 23),
        # Leap February 2000 (29 days)
        ts(2000, 2, 1, 1),
        ts(2000, 2, 28, 9),
        ts(2000, 2, 29, 18),
        ts(2000, 3, 1, 0),
        # A sparse later month
        ts(2000, 6, 10, 10),
    ]
    source = (10 << 24) | 1
    target = (192 << 24) | (168 << 16) | (1 << 8) | 1
    records = [
        (t, source, target, 80) for t in moments for __ in range(2)
    ]
    return InMemoryDataset(schema, records)


def ratio_workflow(schema):
    """The paper's S1/S2/S_ratio query: day count / month count."""
    wf = AggregationWorkflow(schema)
    wf.basic("daily", {"t": "Day"}, agg="count")
    wf.basic("monthly", {"t": "Month"}, agg="count")
    wf.broadcast(
        "month_at_day", {"t": "Day"}, source="monthly",
        keys="daily", agg="max",
    )
    wf.combine(
        "ratio", ["daily", "month_at_day"],
        fn=lambda day, month: None if not month else day / month,
        handles_null=True,
    )
    return wf


class TestMonthDayRatio:
    def test_engines_agree_across_boundaries(self, schema, dataset):
        wf = ratio_workflow(schema)
        reference = RelationalEngine(spool=False).evaluate(dataset, wf)
        for engine in (
            SingleScanEngine(),
            SortScanEngine(assert_no_late_updates=True),
            SortScanEngine(
                sort_key=SortKey.from_spec(schema, [("t", "Hour")]),
                assert_no_late_updates=True,
            ),
        ):
            result = engine.evaluate(dataset, wf)
            for name in wf.outputs():
                assert reference[name].equal_rows(result[name]), (
                    f"{engine.name}: "
                    f"{reference[name].diff(result[name])}"
                )

    def test_ratios_sum_to_one_per_month(self, schema, dataset):
        wf = ratio_workflow(schema)
        result = SortScanEngine(
            assert_no_late_updates=True
        ).evaluate(dataset, wf)
        per_month: dict = {}
        time_dim = schema.dimensions[0]
        for key, value in result["ratio"].rows.items():
            month = time_dim.generalize(key[0], 2, 3)  # Day -> Month
            per_month[month] = per_month.get(month, 0.0) + value
        for month, total in per_month.items():
            assert total == pytest.approx(1.0), month

    def test_day_measure_flushes_before_scan_end(self, schema, dataset):
        """Daily counts are finalized day by day — peak state must stay
        near the slack bound, not the dataset's day count."""
        wf = AggregationWorkflow(schema)
        wf.basic("daily", {"t": "Day"}, agg="count")
        result = SortScanEngine(
            sort_key=SortKey.from_spec(schema, [("t", "Day")]),
        ).evaluate(dataset, wf)
        assert result.stats.peak_entries <= 3


class TestMonthWindows:
    def test_sibling_window_over_months(self, schema, dataset):
        """Moving averages at Month level cross year boundaries."""
        wf = AggregationWorkflow(schema)
        wf.basic("monthly", {"t": "Month"}, agg="count")
        wf.moving_window(
            "trailing", {"t": "Month"}, source="monthly",
            windows={"t": (1, 0)}, agg="sum",
        )
        reference = RelationalEngine(spool=False).evaluate(dataset, wf)
        streamed = SortScanEngine(
            assert_no_late_updates=True
        ).evaluate(dataset, wf)
        assert reference["trailing"].equal_rows(streamed["trailing"])
        # Dec 1999 (month 359) + Jan 2000 (month 360) actually chain.
        dec, jan = 359, 360
        rows = streamed["trailing"].rows
        jan_key = next(k for k in rows if k[0] == jan)
        assert rows[jan_key] == (
            reference["monthly"].rows[(dec, 0, 0, 0)]
            + reference["monthly"].rows[(jan, 0, 0, 0)]
        )
