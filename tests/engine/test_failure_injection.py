"""Failure injection: malformed inputs, edge conditions, fail points.

Errors should surface as typed exceptions at the earliest sensible
point, never as silently wrong measures.  Engine-internal faults are
injected through the same :mod:`repro.testkit.failpoints` registry the
store's crash sweeper uses, so engine and store fault tests share one
mechanism (and ``repro faults list`` shows every site either exercises).
"""

import math

import pytest

from repro.errors import DomainError, SchemaError
from repro.algebra.predicates import RawPredicate
from repro.engine.naive import RelationalEngine
from repro.engine.single_scan import SingleScanEngine
from repro.engine.sort_scan import SortScanEngine
from repro.schema.dataset_schema import (
    network_log_schema,
    synthetic_schema,
)
from repro.storage.table import InMemoryDataset
from repro.workflow.workflow import AggregationWorkflow

ENGINES = [
    RelationalEngine(spool=False),
    SingleScanEngine(),
    SortScanEngine(assert_no_late_updates=True),
]


@pytest.fixture()
def schema():
    return synthetic_schema(num_dimensions=1, levels=2, fanout=4)


def count_workflow(schema, **basic_kwargs):
    wf = AggregationWorkflow(schema)
    wf.basic("cnt", {"d0": "d0.L0"}, **basic_kwargs)
    return wf


class TestMalformedRecords:
    def test_validation_catches_short_records(self, schema):
        with pytest.raises(SchemaError):
            InMemoryDataset(schema, [(1, 2.0), (3,)], validate=True)

    def test_validation_catches_float_dimensions(self, schema):
        with pytest.raises(SchemaError):
            InMemoryDataset(schema, [(1.5, 2.0)], validate=True)

    def test_negative_timestamp_raises_during_evaluation(self):
        net = network_log_schema()
        ds = InMemoryDataset(net, [(-5, 1, 2, 80)])
        wf = AggregationWorkflow(net)
        wf.basic("cnt", {"t": "Hour"})
        for engine in ENGINES:
            with pytest.raises(DomainError):
                engine.evaluate(ds, wf)


class TestAwkwardMeasureValues:
    def test_none_measure_values_are_sql_nulls(self, schema):
        ds = InMemoryDataset(schema, [(1, None), (1, 4.0), (2, None)])
        wf = AggregationWorkflow(schema)
        wf.basic("total", {"d0": "d0.L0"}, agg=("sum", "v"))
        wf.basic("n", {"d0": "d0.L0"}, agg=("count", "v"))
        for engine in ENGINES:
            result = engine.evaluate(ds, wf)
            assert result["total"].rows == {(1,): 4.0, (2,): None}
            assert result["n"].rows == {(1,): 1, (2,): 0}

    def test_nan_measures_propagate_not_crash(self, schema):
        ds = InMemoryDataset(schema, [(1, float("nan")), (1, 1.0)])
        wf = AggregationWorkflow(schema)
        wf.basic("total", {"d0": "d0.L0"}, agg=("sum", "v"))
        for engine in ENGINES:
            result = engine.evaluate(ds, wf)
            assert math.isnan(result["total"].rows[(1,)])

    def test_infinite_measures(self, schema):
        ds = InMemoryDataset(schema, [(1, float("inf")), (1, 1.0)])
        wf = AggregationWorkflow(schema)
        wf.basic("peak", {"d0": "d0.L0"}, agg=("max", "v"))
        for engine in ENGINES:
            result = engine.evaluate(ds, wf)
            assert result["peak"].rows[(1,)] == float("inf")


class TestHostilePredicates:
    def test_raising_predicate_surfaces(self, schema):
        def boom(record):
            raise ValueError("predicate exploded")

        ds = InMemoryDataset(schema, [(1, 1.0)])
        wf = count_workflow(
            schema, where=RawPredicate(fact_fn=boom, label="boom")
        )
        for engine in ENGINES:
            with pytest.raises(ValueError, match="exploded"):
                engine.evaluate(ds, wf)

    def test_combine_fn_exception_surfaces(self, schema):
        ds = InMemoryDataset(schema, [(1, 1.0)])
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})

        def bad(value):
            raise ZeroDivisionError

        wf.combine("broken", ["cnt"], fn=bad)
        for engine in ENGINES:
            with pytest.raises(ZeroDivisionError):
                engine.evaluate(ds, wf)


class TestDegenerateDatasets:
    def test_all_identical_records(self, schema):
        ds = InMemoryDataset(schema, [(7, 1.0)] * 500)
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.moving_window(
            "win", {"d0": "d0.L0"}, source="cnt",
            windows={"d0": (1, 1)}, agg="sum",
        )
        for engine in ENGINES:
            result = engine.evaluate(ds, wf)
            assert result["cnt"].rows == {(7,): 500}
            assert result["win"].rows == {(7,): 500}

    def test_single_region_whole_domain(self, schema):
        ds = InMemoryDataset(
            schema, [(v, 1.0) for v in range(16)]
        )
        wf = AggregationWorkflow(schema)
        wf.basic("total", {})  # everything in one ALL region
        for engine in ENGINES:
            result = engine.evaluate(ds, wf)
            assert result["total"].rows == {(0,): 16}


class TestFailPointInjection:
    """Engine faults injected through the shared fail-point registry."""

    def _dataset_and_workflow(self, schema):
        ds = InMemoryDataset(
            schema, [(v % 16, float(v)) for v in range(200)]
        )
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.basic("total", {"d0": "d0.L0"}, agg=("sum", "v"))
        return ds, wf

    def test_cascade_failpoint_aborts_sort_scan(self, schema):
        from repro.testkit import FailPointError, failpoint

        ds, wf = self._dataset_and_workflow(schema)
        with (
            failpoint("sortscan.cascade", "raise"),
            pytest.raises(FailPointError, match="sortscan.cascade"),
        ):
            SortScanEngine().evaluate(ds, wf)

    def test_final_flush_fires_exactly_once_per_run(self, schema):
        from repro.testkit import failpoint, trigger_count

        ds, wf = self._dataset_and_workflow(schema)
        with (
            failpoint("sortscan.final-flush", "delay:0"),
            failpoint("sortscan.cascade", "delay:0"),
        ):
            result = SortScanEngine().evaluate(ds, wf)
        # The delay action is benign: the run completes correctly ...
        assert result["cnt"].rows[(0,)] == 13
        # ... and the end-of-scan flush happened exactly once, while
        # ordinary cascades ran at least as often.
        assert trigger_count("sortscan.final-flush") == 1
        assert trigger_count("sortscan.cascade") >= 1

    def test_worker_failpoint_surfaces_from_process_pool(
        self, schema, monkeypatch
    ):
        from repro.engine.partitioned import PartitionedEngine
        from repro.testkit import FailPointError, activate
        from repro.testkit.failpoints import ENV_VAR

        ds, wf = self._dataset_and_workflow(schema)
        # Armed both programmatically (inherited under fork) and via
        # the environment (parsed at import under spawn), so the
        # workers are armed whatever the start method.
        activate("partitioned.worker", "raise")
        monkeypatch.setenv(ENV_VAR, "partitioned.worker:raise")
        engine = PartitionedEngine(
            partition_dim=0, num_partitions=2, parallel="processes"
        )
        with pytest.raises(FailPointError, match="partitioned.worker"):
            engine.evaluate(ds, wf)

    def test_worker_failpoint_is_silent_in_serial_mode(self, schema):
        from repro.engine.partitioned import PartitionedEngine
        from repro.testkit import failpoint, trigger_count

        ds, wf = self._dataset_and_workflow(schema)
        engine = PartitionedEngine(
            partition_dim=0, num_partitions=2, parallel="serial"
        )
        with failpoint("partitioned.worker", "raise"):
            result = engine.evaluate(ds, wf)
        # Serial evaluation never enters a process worker, so the site
        # must not fire — it guards exactly the shared-nothing path.
        assert trigger_count("partitioned.worker") == 0
        assert result["cnt"].rows[(0,)] == 13
