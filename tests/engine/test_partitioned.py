"""Tests for range-partitioned (parallelizable) evaluation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlanError
from repro.algebra.conditions import Lags
from repro.engine.compile import compile_workflow
from repro.engine.naive import RelationalEngine
from repro.engine.partitioned import (
    PartitionedEngine,
    partition_level,
    window_reach,
)
from repro.data.synthetic import synthetic_dataset
from repro.schema.dataset_schema import synthetic_schema
from repro.storage.table import InMemoryDataset
from repro.workflow.workflow import AggregationWorkflow


@pytest.fixture(scope="module")
def schema():
    return synthetic_schema(num_dimensions=2, levels=3, fanout=4)


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(4000, num_dimensions=2, levels=3, fanout=4)


def windowed_workflow(schema, window=(1, 2)):
    wf = AggregationWorkflow(schema)
    wf.basic("cnt", {"d0": "d0.L0", "d1": "d1.L0"})
    wf.rollup("per_d0", {"d0": "d0.L0"}, source="cnt", agg="sum")
    wf.moving_window(
        "trend", {"d0": "d0.L0"}, source="per_d0",
        windows={"d0": window}, agg="avg",
    )
    wf.rollup("coarse", {"d0": "d0.L1"}, source="trend", agg="max")
    return wf


class TestPlanningHelpers:
    def test_partition_level_is_coarsest(self, schema):
        graph = compile_workflow(windowed_workflow(schema))
        assert partition_level(graph, 0) == 1  # 'coarse' uses d0.L1

    def test_all_dimension_rejected(self, schema):
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d1": "d1.L0"})  # d0 at ALL
        graph = compile_workflow(wf)
        with pytest.raises(PlanError, match="span"):
            partition_level(graph, 0)

    def test_window_reach_accumulates_chains(self, schema):
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.moving_window(
            "w1", {"d0": "d0.L0"}, source="cnt", windows={"d0": (1, 2)}
        )
        wf.moving_window(
            "w2", {"d0": "d0.L0"}, source="w1", windows={"d0": (3, 1)}
        )
        graph = compile_workflow(wf)
        before, after = window_reach(graph, 0, 0)
        assert before >= 4 and after >= 3

    def test_window_reach_converts_levels(self, schema):
        graph = compile_workflow(windowed_workflow(schema, window=(4, 8)))
        before, after = window_reach(graph, 0, 1)
        # 8 fine steps / fanout 4 = 2 coarse steps (+1 slop).
        assert 1 <= after <= 4
        assert 1 <= before <= 3


class TestCorrectness:
    @pytest.mark.parametrize("num_partitions", [1, 2, 3, 7])
    def test_matches_reference(self, dataset, num_partitions):
        wf = windowed_workflow(dataset.schema)
        reference = RelationalEngine(spool=False).evaluate(dataset, wf)
        engine = PartitionedEngine(num_partitions=num_partitions)
        result = engine.evaluate(dataset, wf)
        for name in wf.outputs():
            assert reference[name].equal_rows(result[name]), (
                f"partitions={num_partitions}: "
                f"{reference[name].diff(result[name])}"
            )

    def test_parallel_matches_sequential(self, dataset):
        wf = windowed_workflow(dataset.schema)
        sequential = PartitionedEngine(num_partitions=4).evaluate(
            dataset, wf
        )
        threaded = PartitionedEngine(
            num_partitions=4, parallel=True
        ).evaluate(dataset, wf)
        for name in wf.outputs():
            assert sequential[name].equal_rows(threaded[name])

    def test_lag_condition_margins(self, schema):
        values = list(range(30)) * 3
        dataset = InMemoryDataset(
            schema, [(v, v % 7, 1.0) for v in values]
        )
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.match(
            "lagged", {"d0": "d0.L0"}, source="cnt",
            cond=Lags({"d0": (-5, 4)}), agg="sum",
        )
        reference = RelationalEngine(spool=False).evaluate(dataset, wf)
        result = PartitionedEngine(num_partitions=5).evaluate(dataset, wf)
        assert reference["lagged"].equal_rows(result["lagged"]), (
            reference["lagged"].diff(result["lagged"])
        )

    def test_empty_dataset(self, schema):
        wf = windowed_workflow(schema)
        empty = InMemoryDataset(schema, [])
        result = PartitionedEngine(num_partitions=3).evaluate(empty, wf)
        assert all(len(result[name]) == 0 for name in wf.outputs())

    def test_more_partitions_than_values(self, schema):
        dataset = InMemoryDataset(
            schema, [(0, 0, 1.0), (1, 1, 1.0), (16, 2, 1.0)]
        )
        wf = windowed_workflow(schema)
        reference = RelationalEngine(spool=False).evaluate(dataset, wf)
        result = PartitionedEngine(num_partitions=50).evaluate(
            dataset, wf
        )
        for name in wf.outputs():
            assert reference[name].equal_rows(result[name])

    def test_stats_report_partition_structure(self, dataset):
        wf = windowed_workflow(dataset.schema)
        result = PartitionedEngine(num_partitions=4).evaluate(dataset, wf)
        assert result.stats.passes == 4
        assert "partitions" in result.stats.notes
        # Margins make partitions re-read some records.
        assert result.stats.rows_scanned >= len(dataset)

    def test_invalid_partition_count(self):
        with pytest.raises(PlanError):
            PartitionedEngine(num_partitions=0)

    def test_partition_dim_by_name(self, dataset):
        wf = windowed_workflow(dataset.schema)
        reference = RelationalEngine(spool=False).evaluate(dataset, wf)
        result = PartitionedEngine(
            partition_dim="d0", num_partitions=3
        ).evaluate(dataset, wf)
        for name in wf.outputs():
            assert reference[name].equal_rows(result[name])


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.integers(0, 63), max_size=80),
    num_partitions=st.integers(1, 6),
    window=st.tuples(st.integers(0, 3), st.integers(0, 3)),
)
def test_partitioned_equivalence_property(values, num_partitions, window):
    schema = synthetic_schema(num_dimensions=1, levels=3, fanout=4)
    dataset = InMemoryDataset(schema, [(v, 1.0) for v in values])
    wf = AggregationWorkflow(schema)
    wf.basic("cnt", {"d0": "d0.L0"})
    if window != (0, 0):
        wf.moving_window(
            "win", {"d0": "d0.L0"}, source="cnt",
            windows={"d0": window}, agg="sum",
        )
    reference = RelationalEngine(spool=False).evaluate(dataset, wf)
    result = PartitionedEngine(num_partitions=num_partitions).evaluate(
        dataset, wf
    )
    for name in wf.outputs():
        assert reference[name].equal_rows(result[name]), (
            reference[name].diff(result[name])
        )
