"""Tests for range-partitioned (parallelizable) evaluation."""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlanError
from repro.algebra.conditions import Lags
from repro.cube.granularity import Granularity
from repro.cube.order import SortKey
from repro.engine.compile import compile_measures, compile_workflow
from repro.engine.naive import RelationalEngine
from repro.engine.partitioned import (
    PartitionedEngine,
    default_partition_count,
    normalize_parallel_mode,
    partition_level,
    window_reach,
)
from repro.engine.sort_scan import SortScanEngine
from repro.data.synthetic import synthetic_dataset
from repro.schema.dataset_schema import synthetic_schema
from repro.storage.table import InMemoryDataset
from repro.workflow.workflow import AggregationWorkflow


@pytest.fixture(scope="module")
def schema():
    return synthetic_schema(num_dimensions=2, levels=3, fanout=4)


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(4000, num_dimensions=2, levels=3, fanout=4)


def windowed_workflow(schema, window=(1, 2)):
    wf = AggregationWorkflow(schema)
    wf.basic("cnt", {"d0": "d0.L0", "d1": "d1.L0"})
    wf.rollup("per_d0", {"d0": "d0.L0"}, source="cnt", agg="sum")
    wf.moving_window(
        "trend", {"d0": "d0.L0"}, source="per_d0",
        windows={"d0": window}, agg="avg",
    )
    wf.rollup("coarse", {"d0": "d0.L1"}, source="trend", agg="max")
    return wf


class TestPlanningHelpers:
    def test_partition_level_is_coarsest(self, schema):
        graph = compile_workflow(windowed_workflow(schema))
        assert partition_level(graph, 0) == 1  # 'coarse' uses d0.L1

    def test_all_dimension_rejected(self, schema):
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d1": "d1.L0"})  # d0 at ALL
        graph = compile_workflow(wf)
        with pytest.raises(PlanError, match="span"):
            partition_level(graph, 0)

    def test_window_reach_accumulates_chains(self, schema):
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.moving_window(
            "w1", {"d0": "d0.L0"}, source="cnt", windows={"d0": (1, 2)}
        )
        wf.moving_window(
            "w2", {"d0": "d0.L0"}, source="w1", windows={"d0": (3, 1)}
        )
        graph = compile_workflow(wf)
        before, after = window_reach(graph, 0, 0)
        assert before >= 4 and after >= 3

    def test_window_reach_converts_levels(self, schema):
        graph = compile_workflow(windowed_workflow(schema, window=(4, 8)))
        before, after = window_reach(graph, 0, 1)
        # 8 fine steps / fanout 4 = 2 coarse steps (+1 slop).
        assert 1 <= after <= 4
        assert 1 <= before <= 3


class TestCorrectness:
    @pytest.mark.parametrize("num_partitions", [1, 2, 3, 7])
    def test_matches_reference(self, dataset, num_partitions):
        wf = windowed_workflow(dataset.schema)
        reference = RelationalEngine(spool=False).evaluate(dataset, wf)
        engine = PartitionedEngine(num_partitions=num_partitions)
        result = engine.evaluate(dataset, wf)
        for name in wf.outputs():
            assert reference[name].equal_rows(result[name]), (
                f"partitions={num_partitions}: "
                f"{reference[name].diff(result[name])}"
            )

    def test_parallel_matches_sequential(self, dataset):
        wf = windowed_workflow(dataset.schema)
        sequential = PartitionedEngine(num_partitions=4).evaluate(
            dataset, wf
        )
        threaded = PartitionedEngine(
            num_partitions=4, parallel=True
        ).evaluate(dataset, wf)
        for name in wf.outputs():
            assert sequential[name].equal_rows(threaded[name])

    def test_lag_condition_margins(self, schema):
        values = list(range(30)) * 3
        dataset = InMemoryDataset(
            schema, [(v, v % 7, 1.0) for v in values]
        )
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.match(
            "lagged", {"d0": "d0.L0"}, source="cnt",
            cond=Lags({"d0": (-5, 4)}), agg="sum",
        )
        reference = RelationalEngine(spool=False).evaluate(dataset, wf)
        result = PartitionedEngine(num_partitions=5).evaluate(dataset, wf)
        assert reference["lagged"].equal_rows(result["lagged"]), (
            reference["lagged"].diff(result["lagged"])
        )

    def test_empty_dataset(self, schema):
        wf = windowed_workflow(schema)
        empty = InMemoryDataset(schema, [])
        result = PartitionedEngine(num_partitions=3).evaluate(empty, wf)
        assert all(len(result[name]) == 0 for name in wf.outputs())

    def test_more_partitions_than_values(self, schema):
        dataset = InMemoryDataset(
            schema, [(0, 0, 1.0), (1, 1, 1.0), (16, 2, 1.0)]
        )
        wf = windowed_workflow(schema)
        reference = RelationalEngine(spool=False).evaluate(dataset, wf)
        result = PartitionedEngine(num_partitions=50).evaluate(
            dataset, wf
        )
        for name in wf.outputs():
            assert reference[name].equal_rows(result[name])

    def test_stats_report_partition_structure(self, dataset):
        wf = windowed_workflow(dataset.schema)
        result = PartitionedEngine(num_partitions=4).evaluate(dataset, wf)
        assert result.stats.passes == 4
        assert "partitions" in result.stats.notes
        # Margins make partitions re-read some records.
        assert result.stats.rows_scanned >= len(dataset)

    def test_invalid_partition_count(self):
        with pytest.raises(PlanError):
            PartitionedEngine(num_partitions=0)

    def test_partition_dim_by_name(self, dataset):
        wf = windowed_workflow(dataset.schema)
        reference = RelationalEngine(spool=False).evaluate(dataset, wf)
        result = PartitionedEngine(
            partition_dim="d0", num_partitions=3
        ).evaluate(dataset, wf)
        for name in wf.outputs():
            assert reference[name].equal_rows(result[name])


class TestParallelKnob:
    def test_bool_back_compat(self):
        assert normalize_parallel_mode(True) == "threads"
        assert normalize_parallel_mode(False) == "serial"
        assert normalize_parallel_mode(None) == "serial"
        assert normalize_parallel_mode("processes") == "processes"

    def test_invalid_mode_rejected(self):
        with pytest.raises(PlanError, match="parallel"):
            PartitionedEngine(parallel="gpu")

    def test_partition_count_heuristic_bounds(self):
        assert 2 <= default_partition_count() <= 16
        assert default_partition_count(cap=4) <= 4

    def test_auto_partition_count_used(self, dataset):
        wf = windowed_workflow(dataset.schema)
        result = PartitionedEngine().evaluate(dataset, wf)
        assert result.stats.passes == min(
            default_partition_count(), 16  # 16 distinct d0.L1 values
        )


class TestMultiprocess:
    """Shared-nothing process evaluation: the paper's deferred step."""

    def test_processes_match_serial_and_threads(self, dataset):
        wf = windowed_workflow(dataset.schema)
        by_mode = {
            mode: PartitionedEngine(
                num_partitions=4, parallel=mode
            ).evaluate(dataset, wf)
            for mode in ("serial", "threads", "processes")
        }
        assert "mode=processes" in by_mode["processes"].stats.notes
        for name in wf.outputs():
            for mode in ("threads", "processes"):
                assert by_mode["serial"][name].equal_rows(
                    by_mode[mode][name]
                ), f"{mode}: {by_mode['serial'][name].diff(by_mode[mode][name])}"

    def test_matches_sort_scan_reference(self, dataset):
        wf = windowed_workflow(dataset.schema)
        reference = SortScanEngine().evaluate(dataset, wf)
        result = PartitionedEngine(
            num_partitions=3, parallel="processes"
        ).evaluate(dataset, wf)
        for name in wf.outputs():
            assert reference[name].equal_rows(result[name]), (
                reference[name].diff(result[name])
            )

    def test_d_all_rejection_raises_plan_error(self, schema, dataset):
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d1": "d1.L0"})  # d0 (partition dim) at ALL
        engine = PartitionedEngine(
            partition_dim=0, num_partitions=2, parallel="processes"
        )
        with pytest.raises(PlanError, match="span"):
            engine.evaluate(dataset, wf)

    def test_sibling_margins_across_boundaries(self, schema):
        # Values straddle every partition boundary; windows must see
        # across them via margin replication.
        values = list(range(32)) * 4
        dataset = InMemoryDataset(
            schema, [(v, v % 5, float(v)) for v in values]
        )
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.moving_window(
            "win", {"d0": "d0.L0"}, source="cnt",
            windows={"d0": (3, 3)}, agg="sum",
        )
        reference = RelationalEngine(spool=False).evaluate(dataset, wf)
        result = PartitionedEngine(
            num_partitions=4, parallel="processes"
        ).evaluate(dataset, wf)
        assert "mode=processes" in result.stats.notes
        for name in wf.outputs():
            assert reference[name].equal_rows(result[name]), (
                reference[name].diff(result[name])
            )

    def test_lags_margins_across_boundaries(self, schema):
        values = list(range(30)) * 3
        dataset = InMemoryDataset(
            schema, [(v, v % 7, 1.0) for v in values]
        )
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.match(
            "lagged", {"d0": "d0.L0"}, source="cnt",
            cond=Lags({"d0": (-6, 5)}), agg="sum",
        )
        reference = RelationalEngine(spool=False).evaluate(dataset, wf)
        result = PartitionedEngine(
            num_partitions=5, parallel="processes"
        ).evaluate(dataset, wf)
        assert "mode=processes" in result.stats.notes
        for name in wf.outputs():
            assert reference[name].equal_rows(result[name]), (
                reference[name].diff(result[name])
            )

    def test_single_partition_degenerate(self, dataset):
        # One partition needs no pool; processes degrades to serial
        # without losing correctness.
        wf = windowed_workflow(dataset.schema)
        reference = SortScanEngine().evaluate(dataset, wf)
        result = PartitionedEngine(
            num_partitions=1, parallel="processes"
        ).evaluate(dataset, wf)
        assert result.stats.passes == 1
        assert "mode=serial" in result.stats.notes
        for name in wf.outputs():
            assert reference[name].equal_rows(result[name])

    def test_stats_merge_totals(self, dataset):
        from repro.engine.interfaces import EvalStats

        wf = windowed_workflow(dataset.schema)
        result = PartitionedEngine(
            num_partitions=4, parallel="processes"
        ).evaluate(dataset, wf)
        stats = result.stats
        workers = stats.workers
        assert len(workers) == stats.passes == 4
        assert stats.rows_scanned == sum(w.rows_scanned for w in workers)
        assert stats.scans == sum(w.scans for w in workers)
        assert stats.flushed_entries == sum(
            w.flushed_entries for w in workers
        )
        assert stats.peak_entries == max(w.peak_entries for w in workers)
        assert stats.sort_seconds == pytest.approx(
            sum(w.sort_seconds for w in workers)
        )
        assert stats.scan_seconds == pytest.approx(
            sum(w.scan_seconds for w in workers)
        )
        # EvalStats.merge reproduces the engine's own accumulation.
        merged = EvalStats()
        for w in workers:
            merged.merge(w)
        assert merged.rows_scanned == stats.rows_scanned
        assert merged.peak_entries == stats.peak_entries
        assert merged.flushed_entries == stats.flushed_entries
        # Margin replication re-reads boundary records.
        assert stats.rows_scanned >= len(dataset)

    def test_fallback_on_unpicklable_plan(self, dataset):
        # A lambda combine function cannot cross a process boundary:
        # the engine must degrade to serial, note why, and stay correct.
        wf = AggregationWorkflow(dataset.schema)
        wf.basic("a", {"d0": "d0.L0"})
        wf.basic("b", {"d0": "d0.L0"}, agg=("sum", "v"))
        wf.combine("ratio", ["a", "b"], fn=lambda a, b: b / a)
        reference = RelationalEngine(spool=False).evaluate(dataset, wf)
        result = PartitionedEngine(
            num_partitions=3, parallel="processes"
        ).evaluate(dataset, wf)
        assert "fell back to serial" in result.stats.notes
        for name in wf.outputs():
            assert reference[name].equal_rows(result[name])

    def test_fallback_without_source_workflow(self, dataset):
        # A graph compiled straight from algebra has no workflow to
        # ship; process mode must fall back, not crash.
        wf = windowed_workflow(dataset.schema)
        graph = compile_measures(wf.to_algebra(), outputs=wf.outputs())
        assert graph.workflow is None
        reference = SortScanEngine().evaluate(dataset, wf)
        result = PartitionedEngine(
            num_partitions=3, parallel="processes"
        ).evaluate(dataset, graph)
        assert "no source workflow" in result.stats.notes
        for name in wf.outputs():
            assert reference[name].equal_rows(result[name])


class TestPicklability:
    """The serialization layer process workers depend on."""

    def test_granularity_roundtrip_with_warm_caches(self, schema):
        g = Granularity(schema, (0, 1))
        g.record_key_fn()  # warm the unpicklable closure caches
        g.lift_fn(Granularity(schema, (0, 0)))
        clone = pickle.loads(pickle.dumps(g))
        assert clone.levels == g.levels
        record = (5, 7, 1.0)
        assert clone.record_key_fn()(record) == g.record_key_fn()(record)

    def test_sort_key_roundtrip_with_warm_mapper(self, schema):
        key = SortKey(schema, [(0, 0), (1, 1)])
        key.record_mapper()  # warm the unpicklable mapper cache
        clone = pickle.loads(pickle.dumps(key))
        assert clone.parts == key.parts
        record = (5, 7, 1.0)
        assert clone.map_record(record) == key.map_record(record)

    def test_workflow_roundtrip_evaluates_identically(self, dataset):
        wf = windowed_workflow(dataset.schema)
        clone = pickle.loads(pickle.dumps(wf))
        reference = SortScanEngine().evaluate(dataset, wf)
        got = SortScanEngine().evaluate(dataset, clone)
        for name in wf.outputs():
            assert reference[name].equal_rows(got[name])

    def test_sink_result_tables_roundtrip(self, dataset):
        wf = windowed_workflow(dataset.schema)
        result = SortScanEngine().evaluate(dataset, wf)
        for name in wf.outputs():
            clone = pickle.loads(pickle.dumps(result[name]))
            assert clone.rows == result[name].rows
            assert clone.granularity.levels == (
                result[name].granularity.levels
            )

    def test_flat_file_dataset_roundtrip(self, tmp_path):
        from repro.data.synthetic import SyntheticGenerator
        from repro.storage.flatfile import (
            FlatFileDataset,
            write_flatfile,
        )

        generator = SyntheticGenerator(
            num_dimensions=2, levels=3, fanout=4, seed=3
        )
        path = str(tmp_path / "facts.bin")
        write_flatfile(path, generator.schema, generator.records(100))
        original = FlatFileDataset(path, generator.schema)
        clone = pickle.loads(pickle.dumps(original))
        assert list(clone.scan()) == list(original.scan())
        assert len(clone) == len(original)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.integers(0, 63), max_size=80),
    num_partitions=st.integers(1, 6),
    window=st.tuples(st.integers(0, 3), st.integers(0, 3)),
)
def test_partitioned_equivalence_property(values, num_partitions, window):
    schema = synthetic_schema(num_dimensions=1, levels=3, fanout=4)
    dataset = InMemoryDataset(schema, [(v, 1.0) for v in values])
    wf = AggregationWorkflow(schema)
    wf.basic("cnt", {"d0": "d0.L0"})
    if window != (0, 0):
        wf.moving_window(
            "win", {"d0": "d0.L0"}, source="cnt",
            windows={"d0": window}, agg="sum",
        )
    reference = RelationalEngine(spool=False).evaluate(dataset, wf)
    result = PartitionedEngine(num_partitions=num_partitions).evaluate(
        dataset, wf
    )
    for name in wf.outputs():
        assert reference[name].equal_rows(result[name]), (
            reference[name].diff(result[name])
        )
