"""Tests for the multi-pass Sort/Scan engine."""

import pytest

from repro.cube.order import SortKey
from repro.engine.compile import compile_workflow
from repro.engine.multi_pass import MultiPassEngine, extract_subgraph
from repro.engine.naive import RelationalEngine
from repro.optimizer.greedy import MultiPassPlan, PassPlan, plan_passes
from repro.data.synthetic import synthetic_dataset
from repro.workflow.workflow import AggregationWorkflow


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(3000, num_dimensions=3, levels=3, fanout=4)


def two_region_workflow(schema):
    """Two basic measures over *different* dimensions plus a combine
    that needs both — the paper's motivating multi-pass shape."""
    wf = AggregationWorkflow(schema)
    wf.basic("by_d0", {"d0": "d0.L0"})
    wf.basic("by_d1", {"d1": "d1.L0"})
    wf.rollup("up0", {"d0": "d0.L2"}, source="by_d0", agg="sum")
    wf.rollup("up1", {"d1": "d1.L2"}, source="by_d1", agg="sum")
    return wf


class TestPlanning:
    def test_tight_budget_splits_passes(self, dataset):
        graph = compile_workflow(two_region_workflow(dataset.schema))
        plan = plan_passes(
            graph, memory_budget_entries=60, dataset_size=len(dataset)
        )
        assert plan.num_passes >= 2

    def test_loose_budget_single_pass(self, dataset):
        graph = compile_workflow(two_region_workflow(dataset.schema))
        plan = plan_passes(graph, memory_budget_entries=None)
        assert plan.num_passes == 1
        assert plan.deferred == []

    def test_every_node_assigned_or_deferred(self, dataset):
        graph = compile_workflow(two_region_workflow(dataset.schema))
        plan = plan_passes(graph, memory_budget_entries=60)
        planned = {
            name for p in plan.passes for name in p.node_names
        } | set(plan.deferred)
        assert planned == {node.name for node in graph.nodes}


class TestExecution:
    def test_matches_relational_under_tight_budget(self, dataset):
        wf = two_region_workflow(dataset.schema)
        reference = RelationalEngine(spool=False).evaluate(dataset, wf)
        multi = MultiPassEngine(memory_budget_entries=60)
        result = multi.evaluate(dataset, wf)
        assert result.stats.passes >= 2
        for name in wf.outputs():
            assert reference[name].equal_rows(result[name]), (
                reference[name].diff(result[name])
            )

    def test_deferred_combine_across_passes(self, dataset):
        """A combine whose inputs land in different passes is evaluated
        afterwards from materialized tables."""
        schema = dataset.schema
        wf = AggregationWorkflow(schema)
        wf.basic("a", {"d0": "d0.L2"})
        wf.basic("b", {"d1": "d1.L2"})
        wf.rollup("ga", {}, source="a", agg="sum")
        wf.rollup("gb", {}, source="b", agg="sum")
        wf.combine(
            "both", ["ga", "gb"],
            fn=lambda x, y: (x or 0) + (y or 0), handles_null=True,
        )
        graph = compile_workflow(wf)
        # Force a plan with each basic in its own pass.
        by_name = {n.name: n for n in graph.nodes}
        plan = MultiPassPlan(
            passes=[
                PassPlan(SortKey(schema, [(0, 0)]), ["a", "ga"]),
                PassPlan(SortKey(schema, [(1, 0)]), ["b", "gb"]),
            ],
            deferred=["both"],
        )
        del by_name
        engine = MultiPassEngine(plan=plan)
        result = engine.evaluate(dataset, wf)
        reference = RelationalEngine(spool=False).evaluate(dataset, wf)
        assert reference["both"].equal_rows(result["both"])
        assert result.stats.passes == 2

    def test_stats_accumulate_across_passes(self, dataset):
        wf = two_region_workflow(dataset.schema)
        result = MultiPassEngine(memory_budget_entries=60).evaluate(
            dataset, wf
        )
        assert result.stats.rows_scanned >= 2 * len(dataset)
        assert "passes" in result.stats.notes


class TestExtractSubgraph:
    def test_subgraph_is_self_contained(self, dataset):
        graph = compile_workflow(two_region_workflow(dataset.schema))
        names = [n.name for n in graph.nodes if "0" in n.name]
        sub = extract_subgraph(graph, names)
        assert {n.name for n in sub.nodes} == set(names)
        for node in sub.nodes:
            for arc in node.in_arcs:
                assert arc.src.name in set(names)
        # Every subgraph node is reported as an output.
        assert set(sub.outputs) == set(names)

    def test_clones_do_not_alias_originals(self, dataset):
        graph = compile_workflow(two_region_workflow(dataset.schema))
        names = [n.name for n in graph.nodes]
        sub = extract_subgraph(graph, names)
        original = {id(n) for n in graph.nodes}
        assert all(id(n) not in original for n in sub.nodes)
