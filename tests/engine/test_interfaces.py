"""Tests for the engine front door (interfaces, stats, sinks)."""

import pytest

from repro.engine.compile import compile_workflow
from repro.engine.interfaces import EvalStats
from repro.engine.sort_scan import SortScanEngine
from repro.data.synthetic import synthetic_dataset
from repro.storage.sink import FileSink, NullSink
from repro.workflow.workflow import AggregationWorkflow


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset(1000, num_dimensions=2, levels=2, fanout=4)


@pytest.fixture(scope="module")
def workflow(dataset):
    wf = AggregationWorkflow(dataset.schema)
    wf.basic("cnt", {"d0": "d0.L0"})
    wf.rollup("up", {"d0": "d0.L1"}, source="cnt", agg="sum")
    return wf


class TestEvaluateFrontDoor:
    def test_accepts_workflow_or_compiled_graph(self, dataset, workflow):
        engine = SortScanEngine()
        from_workflow = engine.evaluate(dataset, workflow)
        graph = compile_workflow(workflow)
        from_graph = engine.evaluate(dataset, graph)
        for name in workflow.outputs():
            assert from_workflow[name].equal_rows(from_graph[name])

    def test_null_sink_returns_no_tables(self, dataset, workflow):
        result = SortScanEngine().evaluate(
            dataset, workflow, sink=NullSink()
        )
        assert result.tables == {}
        assert result.stats.rows_scanned == len(dataset)

    def test_file_sink_writes_sorted_streams(
        self, dataset, workflow, tmp_path
    ):
        sink = FileSink(str(tmp_path))
        SortScanEngine().evaluate(dataset, workflow, sink=sink)
        lines = (tmp_path / "cnt.tsv").read_text().splitlines()
        keys = [int(line.split("\t")[0]) for line in lines]
        assert keys == sorted(keys)  # finalized in stream order
        assert len(keys) == 16

    def test_total_seconds_populated(self, dataset, workflow):
        result = SortScanEngine().evaluate(dataset, workflow)
        assert result.stats.total_seconds > 0
        assert result.stats.engine == "sort-scan"

    def test_result_getitem(self, dataset, workflow):
        result = SortScanEngine().evaluate(dataset, workflow)
        assert result["cnt"] is result.tables["cnt"]


class TestEvalStatsMerge:
    def test_merge_accumulates(self):
        a = EvalStats(
            engine="x",
            rows_scanned=10,
            scans=1,
            sort_seconds=1.0,
            scan_seconds=2.0,
            total_seconds=3.5,
            peak_entries=100,
            flushed_entries=5,
            spooled_entries=7,
        )
        b = EvalStats(
            rows_scanned=20,
            scans=2,
            sort_seconds=0.5,
            scan_seconds=0.5,
            total_seconds=1.0,
            peak_entries=40,
            flushed_entries=3,
            spooled_entries=1,
        )
        a.merge(b)
        assert a.rows_scanned == 30
        assert a.scans == 3
        assert a.sort_seconds == 1.5
        assert a.peak_entries == 100  # max, not sum
        assert a.flushed_entries == 8
        assert a.spooled_entries == 8


class TestEvalStatsSerialization:
    def _stats(self):
        worker = EvalStats(
            engine="sort-scan",
            rows_scanned=500,
            scans=1,
            peak_entries=64,
            notes="partition 0",
            nodes=[{"node": "cnt", "entries": 12}],
        )
        return EvalStats(
            engine="partitioned[processes]",
            rows_scanned=1000,
            scans=2,
            passes=3,
            sort_seconds=0.25,
            scan_seconds=0.5,
            total_seconds=1.0,
            peak_entries=128,
            flushed_entries=9,
            spooled_entries=4,
            notes="fell back to serial: example",
            workers=[worker],
            nodes=[{"node": "cnt", "entries": 30}],
        )

    def test_round_trip_preserves_every_field(self):
        stats = self._stats()
        restored = EvalStats.from_dict(stats.to_dict())
        assert restored == stats
        # The nested worker rides along recursively.
        assert restored.workers[0].notes == "partition 0"
        assert restored.workers[0].nodes == [
            {"node": "cnt", "entries": 12}
        ]

    def test_to_dict_is_json_safe(self):
        import json

        payload = json.dumps(self._stats().to_dict())
        restored = EvalStats.from_dict(json.loads(payload))
        assert restored == self._stats()

    def test_from_dict_defaults_for_sparse_payloads(self):
        restored = EvalStats.from_dict({"rows_scanned": 5})
        assert restored.rows_scanned == 5
        assert restored.engine == ""
        assert restored.passes == 1
        assert restored.notes == ""
        assert restored.workers == []
        assert restored.nodes == []
