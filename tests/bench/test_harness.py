"""Tests for the benchmark harness and figure drivers."""

import pytest

from repro.bench.figures import (
    ALL_FIGURES,
    fig6e,
    fig7a,
)
from repro.bench.harness import BenchRow, format_table, time_engine
from repro.engine.single_scan import SingleScanEngine
from repro.engine.sort_scan import SortScanEngine
from repro.data.synthetic import synthetic_dataset
from repro.workflow.workflow import AggregationWorkflow


def tiny_workflow(schema):
    wf = AggregationWorkflow(schema)
    wf.basic("cnt", {"d0": "d0.L0"})
    return wf


class TestTimeEngine:
    def test_successful_run_row(self):
        ds = synthetic_dataset(500)
        row = time_engine(
            SortScanEngine(), ds, tiny_workflow(ds.schema), "figX", "c"
        )
        assert row.engine == "sort-scan"
        assert row.seconds is not None and row.seconds > 0
        assert row.peak_entries > 0

    def test_budget_failure_becomes_na_row(self):
        ds = synthetic_dataset(2000)
        row = time_engine(
            SingleScanEngine(memory_budget_entries=5),
            ds,
            tiny_workflow(ds.schema),
            "figX",
            "c",
            label="SingleScan",
        )
        assert row.seconds is None
        assert row.seconds_text == "n/a"
        assert "exceeded budget" in row.note


class TestFormatting:
    def test_table_includes_every_row(self):
        rows = [
            BenchRow("f", "cfg1", "DB", 1.5),
            BenchRow("f", "cfg1", "SortScan", None, note="oom"),
        ]
        text = format_table("title", rows)
        assert "== title ==" in text
        assert "cfg1" in text and "DB" in text
        assert "n/a" in text and "oom" in text


class TestFigureDrivers:
    """Smoke-run every figure driver at a minuscule scale."""

    @pytest.mark.parametrize("name", sorted(ALL_FIGURES))
    def test_driver_produces_rows(self, name):
        driver = ALL_FIGURES[name]
        if name in ("fig6c", "fig6d"):
            rows = driver(scale=0.01, size=1500)
        elif name in ("fig6f", "fig7a", "fig7b"):
            rows = driver(scale=0.01, background=1500)
        else:
            rows = driver(scale=0.01)
        assert rows
        assert all(row.figure == name for row in rows)

    def test_fig6e_reports_breakdown(self):
        rows = fig6e(scale=0.01)
        assert all(
            row.sort_seconds >= 0 and row.scan_seconds > 0 for row in rows
        )

    def test_fig7a_single_scan_competitive(self):
        """Figure 7(a)'s qualitative claim at small scale: the simple
        scan is at least as fast as sort/scan (sort cost dominates
        when the intermediate state is tiny)."""
        rows = fig7a(scale=0.02, background=4000)
        by_engine = {row.engine: row for row in rows}
        assert by_engine["SimpleScan"].seconds <= (
            by_engine["SortScan"].seconds
        )
