"""Schema guard for the BENCH_sql.json engine-vs-engine artifact.

CI uploads the payload ``repro bench --figure sql --json`` writes; the
docs quote its metrics, so the shape is pinned here: top-level keys,
per-point fields, the engine-availability block, JSON-serializability,
and the committed artifact's verification flag.  Any intentional change
must bump ``SCHEMA_VERSION`` and update this guard.

The live run uses a tiny scale — enough to pin the payload shape and
re-verify every family without paying the full sweep.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.sql import (
    METRIC_DEFINITIONS,
    QUERY_SWEEP,
    SCHEMA_VERSION,
    sql_bench,
)
from repro.testkit.differential import SQL_ORACLE_TOLERANCE

TOP_LEVEL_KEYS = {
    "bench",
    "schema_version",
    "scale",
    "families",
    "engines",
    "metrics",
    "definitions",
    "points",
}

METRIC_KEYS = {
    "geomean_sqlite_vs_sortscan",
    "all_verified",
    "sql_oracle_tolerance",
}

POINT_KEYS = {
    "family",
    "engine",
    "records",
    "seconds",
    "load_seconds",
    "sortscan_seconds",
    "db_seconds",
    "measures",
    "skipped",
    "verified",
}


@pytest.fixture(scope="module")
def run():
    return sql_bench(scale=0.02)


def test_schema_version_pinned():
    assert SCHEMA_VERSION == 1


def test_top_level_keys_stable(run):
    __, payload = run
    assert set(payload) == TOP_LEVEL_KEYS
    assert payload["bench"] == "sql"
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["families"] == sorted(QUERY_SWEEP)


def test_metrics_keys_stable(run):
    __, payload = run
    assert set(payload["metrics"]) == METRIC_KEYS
    assert payload["metrics"]["sql_oracle_tolerance"] == SQL_ORACLE_TOLERANCE
    assert payload["definitions"] == METRIC_DEFINITIONS
    assert set(METRIC_DEFINITIONS) == METRIC_KEYS


def test_every_point_verified(run):
    """The sheet's core promise: no timing is recorded for an engine
    that disagrees with the sort/scan reference."""
    __, payload = run
    assert payload["metrics"]["all_verified"] is True
    assert all(point["verified"] for point in payload["points"])


def test_engines_block_and_points_shape(run):
    rows, payload = run
    engines = payload["engines"]
    assert set(engines) == {"sqlite", "duckdb"}
    assert engines["sqlite"]["available"] is True
    assert engines["sqlite"]["reason"] is None
    for info in engines.values():
        assert set(info) == {"available", "reason"}
        assert info["available"] == (info["reason"] is None)

    available = [name for name, info in engines.items() if info["available"]]
    points = payload["points"]
    assert len(points) == len(QUERY_SWEEP) * len(available)
    for point in points:
        assert set(point) == POINT_KEYS
        assert point["engine"] in available
        assert point["family"] in QUERY_SWEEP
        assert point["seconds"] > 0
        assert point["measures"] > 0
    # Two reference rows (SortScan, DB) per family plus one per point.
    assert len(rows) == 2 * len(QUERY_SWEEP) + len(points)
    assert all(row.figure == "sql" for row in rows)


def test_payload_is_json_serializable(run):
    __, payload = run
    rebuilt = json.loads(json.dumps(payload))
    assert set(rebuilt) == TOP_LEVEL_KEYS


def test_committed_artifact_matches_schema_and_is_verified():
    path = os.path.join(
        os.path.dirname(__file__), "..", "..", "BENCH_sql.json"
    )
    with open(path) as fh:
        committed = json.load(fh)
    assert set(committed) == TOP_LEVEL_KEYS
    assert committed["schema_version"] == SCHEMA_VERSION
    assert set(committed["metrics"]) == METRIC_KEYS
    assert committed["metrics"]["all_verified"] is True
    assert committed["metrics"]["geomean_sqlite_vs_sortscan"] > 0
    assert sorted({p["family"] for p in committed["points"]}) == sorted(
        QUERY_SWEEP
    )
