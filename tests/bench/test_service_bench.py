"""Schema guard for the BENCH_service.json perf-sheet artifact.

CI uploads the payload ``repro bench --figure service --json`` writes;
docs/metrics_targets.md reads its keys, so the shape is pinned here:
top-level ``metrics`` / ``definitions`` / ``points`` keys, per-point
fields, and JSON-serializability.  Any intentional change must bump
``SCHEMA_VERSION`` and update this guard.

The live run here uses a tiny scale and only the 1- and 2-shard
configs — enough to pin the payload shape without paying the full
sweep; the committed full-scale artifact at the repo root is guarded
separately against the 2.5x headline target.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.service import (
    METRIC_DEFINITIONS,
    SCHEMA_VERSION,
    TARGET_READ_SCALING,
    service_bench,
)

TOP_LEVEL_KEYS = {
    "bench",
    "schema_version",
    "scale",
    "bootstrap_records",
    "delta_records",
    "reader_threads",
    "window_seconds",
    "metrics",
    "definitions",
    "points",
}

METRIC_KEYS = {
    "read_scaling_4x",
    "target_read_scaling_4x",
    "baseline_read_qps",
    "four_shard_read_qps",
    "p99_improvement_4x",
}

POINT_KEYS = {
    "shards",
    "reads",
    "read_qps",
    "p50_ms",
    "p99_ms",
    "max_ms",
    "ingests",
    "ingest_seconds_avg",
    "window_seconds",
}


@pytest.fixture(scope="module")
def run():
    return service_bench(scale=0.02, shard_counts=(1, 2), readers=2)


def test_schema_version_pinned():
    assert SCHEMA_VERSION == 1


def test_top_level_keys_stable(run):
    __, payload = run
    assert set(payload) == TOP_LEVEL_KEYS
    assert payload["bench"] == "service"
    assert payload["schema_version"] == SCHEMA_VERSION


def test_metrics_keys_stable(run):
    __, payload = run
    assert set(payload["metrics"]) == METRIC_KEYS
    assert (
        payload["metrics"]["target_read_scaling_4x"]
        == TARGET_READ_SCALING
        == 2.5
    )
    # No 4-shard config in this short sweep: the ratio is honestly
    # absent, not fabricated from whatever configs did run.
    assert payload["metrics"]["read_scaling_4x"] is None


def test_definitions_cover_the_headline_metrics(run):
    __, payload = run
    assert payload["definitions"] == METRIC_DEFINITIONS
    assert set(METRIC_DEFINITIONS) == {
        "read_qps",
        "p99_ms",
        "read_scaling_4x",
        "ingest_seconds_avg",
    }


def test_points_shape_and_rows(run):
    rows, payload = run
    points = payload["points"]
    assert [point["shards"] for point in points] == [1, 2]
    for point in points:
        assert set(point) == POINT_KEYS
        assert point["reads"] > 0
        assert point["read_qps"] > 0
        assert point["ingests"] >= 1
    assert len(rows) == len(points)
    assert all(row.figure == "service" for row in rows)


def test_payload_is_json_serializable(run):
    __, payload = run
    rebuilt = json.loads(json.dumps(payload))
    assert set(rebuilt) == TOP_LEVEL_KEYS


def test_committed_artifact_matches_schema_and_target():
    """The repo-root BENCH_service.json must stay loadable, on-schema,
    and at or above the sheet's 2.5x read-scaling target."""
    path = os.path.join(
        os.path.dirname(__file__), "..", "..", "BENCH_service.json"
    )
    with open(path) as fh:
        committed = json.load(fh)
    assert set(committed) == TOP_LEVEL_KEYS
    assert committed["schema_version"] == SCHEMA_VERSION
    assert set(committed["metrics"]) == METRIC_KEYS
    scaling = committed["metrics"]["read_scaling_4x"]
    assert scaling is not None and scaling >= TARGET_READ_SCALING
    assert [p["shards"] for p in committed["points"]] == [1, 2, 4]
