"""Schema guard for the BENCH_columnar.json perf-sheet artifact.

CI uploads the payload ``repro bench --figure columnar --json`` writes;
downstream tooling (and docs/metrics_targets.md) reads its keys, so
the shape is pinned here: top-level ``metrics`` / ``definitions`` /
``speedups`` keys, per-point fields, and JSON-serializability.  Any
intentional change must bump ``SCHEMA_VERSION`` and update this guard.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.columnar import (
    BENCH_BATCH_SIZE,
    METRIC_DEFINITIONS,
    SCHEMA_VERSION,
    columnar_bench,
    skip_reason,
)

TOP_LEVEL_KEYS = {
    "bench",
    "schema_version",
    "scale",
    "rows_per_workload",
    "batch_size",
    "skipped",
    "metrics",
    "definitions",
    "speedups",
}

METRIC_KEYS = {
    "geometric_mean_speedup",
    "total_runtime_reduction",
    "zero_regression_count",
    "target_geometric_mean_speedup",
}

POINT_KEYS = {
    "workload",
    "engine",
    "rows",
    "headline",
    "scalar_seconds",
    "batched_seconds",
    "speedup",
}


@pytest.fixture(scope="module")
def payload():
    __, payload = columnar_bench(scale=0.02)
    return payload


def test_schema_version_pinned():
    assert SCHEMA_VERSION == 1


def test_top_level_keys_stable(payload):
    assert set(payload) == TOP_LEVEL_KEYS
    assert payload["bench"] == "columnar"
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["batch_size"] == BENCH_BATCH_SIZE


def test_metrics_keys_stable(payload):
    assert set(payload["metrics"]) == METRIC_KEYS
    assert payload["metrics"]["target_geometric_mean_speedup"] == 10.0


def test_definitions_cover_every_metric_and_the_headline_flag(payload):
    assert payload["definitions"] == METRIC_DEFINITIONS
    assert (
        set(METRIC_DEFINITIONS)
        == (METRIC_KEYS - {"target_geometric_mean_speedup"})
        | {"headline"}
    )


def test_speedup_points_shape(payload):
    points = payload["speedups"]
    # 3 workloads x 2 engines, headline flags as declared.
    assert len(points) == 6
    for point in points:
        assert set(point) == POINT_KEYS
    assert sum(1 for p in points if p["headline"]) == 4


def test_payload_is_json_serializable(payload):
    rebuilt = json.loads(json.dumps(payload))
    assert set(rebuilt) == TOP_LEVEL_KEYS


def test_measured_or_skipped_consistently(payload):
    if skip_reason() is None:
        assert payload["skipped"] is None
        for point in payload["speedups"]:
            assert point["scalar_seconds"] is not None
            assert point["batched_seconds"] is not None
        assert payload["metrics"]["geometric_mean_speedup"] is not None
    else:
        assert payload["skipped"]
        assert payload["metrics"]["geometric_mean_speedup"] is None


def test_committed_artifact_matches_schema_and_target():
    """The repo-root BENCH_columnar.json must stay loadable, on-schema,
    and at or above the sheet's 10x headline target."""
    import os

    path = os.path.join(
        os.path.dirname(__file__), "..", "..", "BENCH_columnar.json"
    )
    with open(path) as fh:
        committed = json.load(fh)
    assert set(committed) == TOP_LEVEL_KEYS
    assert committed["schema_version"] == SCHEMA_VERSION
    assert set(committed["metrics"]) == METRIC_KEYS
    geomean = committed["metrics"]["geometric_mean_speedup"]
    assert geomean is not None and geomean >= 10.0
    assert committed["metrics"]["zero_regression_count"] == 0
