"""Tests for the HyperLogLog approximate-distinct aggregate."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AlgebraError
from repro.aggregates.base import get_aggregate
from repro.aggregates.sketches import HyperLogLog


class TestBasics:
    def test_empty_is_zero(self):
        assert HyperLogLog().over([]) == 0

    def test_nulls_ignored(self):
        assert HyperLogLog().over([None, None]) == 0
        assert HyperLogLog().over([None, "a", None]) == 1

    def test_small_counts_exact_via_linear_counting(self):
        hll = HyperLogLog(12)
        for n in (1, 2, 5, 10, 50):
            estimate = hll.over(range(n))
            assert estimate == n

    def test_duplicates_not_double_counted(self):
        hll = HyperLogLog(12)
        assert hll.over([7] * 1000) == 1
        assert hll.over(list(range(20)) * 50) == 20

    def test_accuracy_at_scale(self):
        hll = HyperLogLog(12)
        true_count = 50_000
        estimate = hll.over(range(true_count))
        assert abs(estimate - true_count) / true_count < 0.05

    def test_precision_bounds(self):
        with pytest.raises(AlgebraError):
            HyperLogLog(3)
        with pytest.raises(AlgebraError):
            HyperLogLog(17)

    def test_lower_precision_less_memory(self):
        assert len(HyperLogLog(4).create()) == 16
        assert len(HyperLogLog(12).create()) == 4096

    def test_registered_by_name(self):
        fn = get_aggregate("approx_distinct")
        assert fn.over(["a", "b", "a"]) == 2

    def test_deterministic_across_instances(self):
        values = [random.Random(1).random() for __ in range(500)]
        assert HyperLogLog(10).over(values) == HyperLogLog(10).over(
            values
        )


@settings(max_examples=30)
@given(
    left=st.lists(st.integers(0, 10**6), max_size=300),
    right=st.lists(st.integers(0, 10**6), max_size=300),
)
def test_merge_equals_union(left, right):
    """merge(sketch(A), sketch(B)) == sketch(A ∪ B) exactly — the
    property that makes the sketch usable in every engine."""
    hll = HyperLogLog(10)

    def sketch(values):
        state = hll.create()
        for value in values:
            state = hll.update(state, value)
        return state

    merged = hll.merge(sketch(left), sketch(right))
    assert bytes(merged) == bytes(sketch(left + right))


def test_streaming_q1_with_sketches():
    """Q1's child-region counting via sketches: one bounded-size state
    per parent instead of a distinct-set — all engines agree on the
    (deterministic) estimates."""
    from repro.engine.naive import RelationalEngine
    from repro.engine.sort_scan import SortScanEngine
    from repro.data.synthetic import synthetic_dataset
    from repro.workflow.workflow import AggregationWorkflow

    dataset = synthetic_dataset(3000)
    wf = AggregationWorkflow(dataset.schema)
    wf.basic("child", {"d0": "d0.L0", "d1": "d1.L0"}, hidden=True)
    wf.rollup(
        "approx_regions", {"d0": "d0.L1"}, source="child",
        agg="count",
    )
    wf.basic(
        "approx_sources", {"d0": "d0.L1"}, agg=("approx_distinct", "v")
    )
    reference = RelationalEngine(spool=False).evaluate(dataset, wf)
    streamed = SortScanEngine(assert_no_late_updates=True).evaluate(
        dataset, wf
    )
    for name in wf.outputs():
        assert reference[name].equal_rows(streamed[name])
