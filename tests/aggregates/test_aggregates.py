"""Tests for the aggregate-function library."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import AlgebraError
from repro.aggregates.base import AggSpec, Kind, get_aggregate
from repro.aggregates.algebraic import Average, StdDev, Variance
from repro.aggregates.distributive import (
    ConstantAggregate,
    Count,
    Max,
    Min,
    Sum,
)
from repro.aggregates.holistic import CountDistinct, Median

ALL_FUNCTIONS = [
    Count(),
    Sum(),
    Min(),
    Max(),
    Average(),
    Variance(),
    StdDev(),
    CountDistinct(),
    Median(),
]


class TestRegistry:
    def test_lookup_by_name_case_insensitive(self):
        assert get_aggregate("SUM").name == "sum"
        assert get_aggregate("Count_Distinct").name == "count_distinct"

    def test_unknown_name(self):
        with pytest.raises(AlgebraError):
            get_aggregate("percentile99")

    def test_agg_spec_accepts_names_and_instances(self):
        assert AggSpec("sum").function.name == "sum"
        assert AggSpec(Sum(), "v").input_field == "v"
        with pytest.raises(AlgebraError):
            AggSpec(42)

    def test_agg_spec_equality(self):
        fn = get_aggregate("sum")
        assert AggSpec(fn, "M") == AggSpec(fn, "M")
        assert AggSpec(fn, "M") != AggSpec(fn, "*")


class TestBasicResults:
    def test_count(self):
        assert Count().over([1, 2, 3]) == 3
        assert Count().over([]) == 0
        assert Count().over([1, None, 2]) == 2  # SQL: NULLs not counted

    def test_sum(self):
        assert Sum().over([1, 2, 3]) == 6
        assert Sum().over([]) is None  # SQL NULL on empty
        assert Sum().over([None, 4]) == 4

    def test_min_max(self):
        assert Min().over([5, 2, 9]) == 2
        assert Max().over([5, 2, 9]) == 9
        assert Min().over([]) is None
        assert Max().over([None]) is None

    def test_avg(self):
        assert Average().over([1, 2, 3, 4]) == 2.5
        assert Average().over([]) is None
        assert Average().over([None, 3]) == 3

    def test_variance_and_stddev(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        assert Variance().over(values) == pytest.approx(4.0)
        assert StdDev().over(values) == pytest.approx(2.0)
        assert Variance().over([]) is None

    def test_count_distinct(self):
        assert CountDistinct().over([1, 1, 2, None, 2]) == 2
        assert CountDistinct().over([]) == 0

    def test_median(self):
        assert Median().over([5, 1, 3]) == 3
        assert Median().over([1, 2, 3, 4]) == 2.5
        assert Median().over([]) is None

    def test_constant(self):
        c = ConstantAggregate(7)
        assert c.over([]) == 7
        assert c.over([1, 2, 3]) == 7
        assert get_aggregate("cells").over([9]) == 0


class TestKinds:
    def test_classification(self):
        assert Sum().kind is Kind.DISTRIBUTIVE
        assert Average().kind is Kind.ALGEBRAIC
        assert Median().kind is Kind.HOLISTIC


def _fold(fn, values):
    state = fn.create()
    for value in values:
        state = fn.update(state, value)
    return state


@pytest.mark.parametrize("fn", ALL_FUNCTIONS, ids=lambda f: f.name)
@given(
    left=st.lists(st.integers(min_value=-100, max_value=100), max_size=20),
    right=st.lists(st.integers(min_value=-100, max_value=100), max_size=20),
)
def test_merge_equals_concatenation(fn, left, right):
    """merge(fold(A), fold(B)) == fold(A + B) — the property that makes
    single-register streaming evaluation legal (Section 5.1)."""
    merged = fn.merge(_fold(fn, left), _fold(fn, right))
    expected = fn.finalize(_fold(fn, left + right))
    got = fn.finalize(merged)
    if expected is None or got is None:
        assert expected is got
    else:
        assert got == pytest.approx(expected)


@given(values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
def test_variance_nonnegative_and_matches_naive(values):
    var = Variance().over(values)
    mean = sum(values) / len(values)
    naive = sum((v - mean) ** 2 for v in values) / len(values)
    assert var >= -1e-9
    assert math.isclose(var, naive, rel_tol=1e-6, abs_tol=1e-6)
