"""The batched-update contract, for every registered aggregate.

``update_many(state, values)`` must return a state *bit-identical* to
folding ``values`` left-to-right through N scalar ``update`` calls
(same arithmetic, same order), and ``update_repeat`` likewise for
repeated values.  This holds for the vectorized implementations
(sum/count/min/max/avg, via strictly sequential ``add.accumulate``)
and trivially for the per-row fallbacks (holistic aggregates and the
HyperLogLog sketch).  The resulting states must hold plain Python
scalars — never numpy types, which leak into serialized stores and
change ``repr``-based sketch hashing.
"""

from __future__ import annotations

import random

import pytest

from repro.aggregates.base import all_aggregates
from repro.storage.columnar import HAVE_NUMPY

ALL = sorted(all_aggregates())

#: Value batches chosen to stress float accumulation order (wildly
#: different magnitudes make pairwise vs sequential summation visibly
#: different) and duplicate-heavy inputs (sketches, count_distinct).
BATCHES = [
    [],
    [1.5],
    [1e16, 1.0, -1e16, 2.5, 3.25, 1e-8] * 3,
    [round(random.Random(5).random() * 100, 3) for __ in range(57)],
    [2.0, 2.0, 7.0, 2.0, 7.0] * 9,
]


def _scalar_fold(fn, state, values):
    for value in values:
        state = fn.update(state, value)
    return state


def _bits(value):
    """Identity that distinguishes 0.0 from -0.0 and NaN payloads."""
    if isinstance(value, float):
        import struct

        return struct.pack("<d", value)
    return value


def _assert_states_identical(name, got, expected):
    assert type(got) is type(expected), (
        f"{name}: update_many state type {type(got)} != scalar "
        f"{type(expected)}"
    )
    if isinstance(got, tuple):
        assert len(got) == len(expected)
        for a, b in zip(got, expected):
            assert _bits(a) == _bits(b), (
                f"{name}: component {a!r} != {b!r}"
            )
    elif isinstance(got, (set, list, dict)):
        assert got == expected, f"{name}: {got!r} != {expected!r}"
    else:
        assert _bits(got) == _bits(expected), (
            f"{name}: {got!r} != {expected!r}"
        )


@pytest.mark.parametrize("name", ALL)
@pytest.mark.parametrize("batch_index", range(len(BATCHES)))
def test_update_many_equals_scalar_fold_on_lists(name, batch_index):
    fn = all_aggregates()[name]
    values = BATCHES[batch_index]
    expected = _scalar_fold(fn, fn.create(), values)
    got = fn.update_many(fn.create(), list(values))
    _assert_states_identical(name, got, expected)
    assert _bits(fn.finalize(got)) == _bits(fn.finalize(expected))


@pytest.mark.skipif(not HAVE_NUMPY, reason="vectorized path needs numpy")
@pytest.mark.parametrize("name", ALL)
@pytest.mark.parametrize("batch_index", range(len(BATCHES)))
def test_update_many_equals_scalar_fold_on_arrays(name, batch_index):
    import numpy as np

    fn = all_aggregates()[name]
    values = BATCHES[batch_index]
    expected = _scalar_fold(fn, fn.create(), values)
    got = fn.update_many(
        fn.create(), np.asarray(values, dtype=np.float64)
    )
    _assert_states_identical(name, got, expected)
    assert _bits(fn.finalize(got)) == _bits(fn.finalize(expected))


@pytest.mark.parametrize("name", ALL)
def test_update_many_resumes_from_prior_state(name):
    """Splitting a fold across two update_many calls changes nothing."""
    fn = all_aggregates()[name]
    values = BATCHES[3]
    expected = _scalar_fold(fn, fn.create(), values)
    mid = fn.update_many(fn.create(), values[:20])
    got = fn.update_many(mid, values[20:])
    _assert_states_identical(name, got, expected)


@pytest.mark.parametrize("name", ALL)
@pytest.mark.parametrize("count", [0, 1, 13])
def test_update_repeat_equals_scalar_loop(name, count):
    fn = all_aggregates()[name]
    expected = fn.create()
    for __ in range(count):
        expected = fn.update(expected, 3.5)
    got = fn.update_repeat(fn.create(), 3.5, count)
    _assert_states_identical(name, got, expected)


@pytest.mark.parametrize("name", ALL)
def test_update_many_skips_nones_in_lists(name):
    """SQL semantics: NULLs are ignored; list batches may carry them."""
    fn = all_aggregates()[name]
    values = [1.0, None, 2.5, None, 4.0]
    expected = _scalar_fold(fn, fn.create(), values)
    got = fn.update_many(fn.create(), list(values))
    _assert_states_identical(name, got, expected)


@pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")
@pytest.mark.parametrize("name", ALL)
def test_update_many_states_hold_no_numpy_scalars(name):
    """States must stay JSON/pickle-safe plain Python values."""
    import numpy as np

    fn = all_aggregates()[name]
    got = fn.update_many(
        fn.create(), np.asarray([1.0, 2.0, 3.0], dtype=np.float64)
    )

    def walk(value):
        if isinstance(value, (tuple, list, set, frozenset)):
            for item in value:
                walk(item)
        elif isinstance(value, dict):
            for k, v in value.items():
                walk(k)
                walk(v)
        else:
            assert not isinstance(value, np.generic), (
                f"{name}: numpy scalar {value!r} leaked into state"
            )

    walk(got)


@pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")
def test_hll_array_batches_hash_like_scalars():
    """The sketch hashes ``repr(value)``; ``repr(np.float64(x))`` is
    not ``repr(x)`` under numpy 2, so the fallback must detour through
    ``tolist`` before hashing."""
    import numpy as np

    from repro.aggregates.base import get_aggregate

    fn = get_aggregate("approx_distinct")
    values = [random.Random(9).random() for __ in range(200)]
    scalar_state = _scalar_fold(fn, fn.create(), values)
    array_state = fn.update_many(
        fn.create(), np.asarray(values, dtype=np.float64)
    )
    assert scalar_state == array_state
    assert fn.finalize(scalar_state) == fn.finalize(array_state)
