"""Tests for the Table 6 order/slack algorithm."""

import pytest

from repro.errors import PlanError
from repro.cube.order import SortKey
from repro.cube.slack import Slack, StreamInfo, compute_order_slack
from repro.schema.dataset_schema import network_log_schema


@pytest.fixture(scope="module")
def net():
    return network_log_schema()


def hour_day_key(net):
    return SortKey.from_spec(net, [("t", "Day"), ("T", "IP"), ("U", "IP")])


class TestSlackVector:
    def test_zero(self):
        s = Slack.zero(3)
        assert s.is_zero
        assert str(s) == "<(0,0), (0,0), (0,0)>"

    def test_widened_is_bounding_box(self):
        a = Slack(((-2, 0), (0, 1)))
        b = Slack(((-1, 3), (-4, 0)))
        assert a.widened(b).bounds == ((-2, 3), (-4, 1))

    def test_widened_width_mismatch(self):
        with pytest.raises(PlanError):
            Slack.zero(2).widened(Slack.zero(3))

    def test_shifted(self):
        s = Slack.zero(2).shifted(1, -3, 2)
        assert s.bounds == ((0, 0), (-3, 2))
        assert not s.is_zero


class TestComputeOrderSlack:
    def test_synchronized_same_level_passthrough(self, net):
        """All inputs agree and are synchronous: order passes through."""
        key = hour_day_key(net)
        day, ip_level = 2, 0
        info = StreamInfo((day, ip_level, ip_level), Slack.zero(3))
        out = compute_order_slack(
            net, key, [day, 4, ip_level, ip_level][:1] + [4, ip_level, 2],
            [info],
        )
        # region: (t at Day, U at IP) -> first attr kept at Day.
        assert out.order_levels[0] == day

    def test_paper_month_day_slack_example(self, net):
        """Section 5.3.1: S1 at Month, S2 at Day, data sorted by Day.

        The parent/child stream's slack on a Day-ordered axis rescales
        by card(Day, Month) ~ 31; the output order coarsens to Month
        and truncates.
        """
        key = SortKey.from_spec(net, [("t", "Day")])
        month_level = net.dimensions[0].level_of("Month")
        day_level = net.dimensions[0].level_of("Day")
        input_stream = StreamInfo((day_level,), Slack(((0, 0),)))
        region_levels = [month_level] + [
            d.all_level for d in net.dimensions[1:]
        ]
        out = compute_order_slack(net, key, region_levels, [input_stream])
        assert out.order_levels == (month_level,)
        # Synchronous input rescaled: lower bound -1, upper 0.
        assert out.slack.bounds[0] == (-1, 0)

    def test_disagreeing_inputs_truncate_order(self, net):
        key = SortKey.from_spec(net, [("t", "Day"), ("U", "IP")])
        day = net.dimensions[0].level_of("Day")
        month = net.dimensions[0].level_of("Month")
        a = StreamInfo((day, 0), Slack.zero(2))
        b = StreamInfo((month, 0), Slack.zero(2))
        region = [day, net.dimensions[1].all_level,
                  net.dimensions[2].all_level, net.dimensions[3].all_level]
        out = compute_order_slack(net, key, region, [a, b])
        # Disagreement at the first attribute: the order is empty
        # (padded with ALL).
        assert out.order_levels[0] == net.dimensions[0].all_level

    def test_asynchronous_attribute_stops_order(self, net):
        """Differing slack bounds at an attribute end the common order."""
        key = SortKey.from_spec(net, [("t", "Day"), ("U", "IP")])
        day = net.dimensions[0].level_of("Day")
        lagging = StreamInfo((day, 0), Slack(((-3, 0), (0, 0))))
        region = [day, 0, net.dimensions[2].all_level,
                  net.dimensions[3].all_level]
        out = compute_order_slack(net, key, region, [lagging])
        assert out.order_levels[0] == day
        assert out.slack.bounds[0] == (-3, 0)
        # Second attribute padded out (slack was asynchronous at t).
        assert out.order_levels[1] == net.dimensions[1].all_level

    def test_bounding_box_across_inputs(self, net):
        key = SortKey.from_spec(net, [("t", "Day")])
        day = net.dimensions[0].level_of("Day")
        a = StreamInfo((day,), Slack(((-2, 0),)))
        b = StreamInfo((day,), Slack(((0, 1),)))
        region = [day] + [d.all_level for d in net.dimensions[1:]]
        out = compute_order_slack(net, key, region, [a, b])
        assert out.slack.bounds[0] == (-2, 1)

    def test_no_inputs_rejected(self, net):
        key = SortKey.from_spec(net, [("t", "Day")])
        with pytest.raises(PlanError):
            compute_order_slack(net, key, [0, 0, 0, 0], [])

    def test_width_mismatch_rejected(self, net):
        key = SortKey.from_spec(net, [("t", "Day")])
        with pytest.raises(PlanError):
            compute_order_slack(
                net, key, [0, 0, 0, 0], [StreamInfo((0, 0), Slack.zero(2))]
            )
