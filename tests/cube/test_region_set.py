"""Tests for region sets (the paper's [X1:D1, ...] notation)."""

import pytest

from repro.cube.region_set import RegionSet
from repro.schema.dataset_schema import synthetic_schema


@pytest.fixture(scope="module")
def schema():
    return synthetic_schema(num_dimensions=2, levels=3, fanout=4)


RECORDS = [
    (0, 0, 1.0),
    (1, 5, 1.0),
    (4, 5, 1.0),
    (13, 9, 1.0),
    (13, 9, 2.0),
]


def test_keys_are_distinct_region_keys(schema):
    rs = RegionSet.from_spec(schema, {"d0": "d0.L1"})
    assert rs.keys(RECORDS) == {(0, 0), (1, 0), (3, 0)}


def test_regions_sorted_and_typed(schema):
    rs = RegionSet.from_spec(schema, {"d0": "d0.L1"})
    regions = list(rs.regions(RECORDS))
    assert [r.values for r in regions] == [(0, 0), (1, 0), (3, 0)]
    assert all(r.granularity == rs.granularity for r in regions)


def test_partition_gives_coverage(schema):
    rs = RegionSet.from_spec(schema, {"d0": "d0.L1"})
    groups = rs.partition(RECORDS)
    assert groups[(3, 0)] == [(13, 9, 1.0), (13, 9, 2.0)]
    assert sum(len(v) for v in groups.values()) == len(RECORDS)


def test_empty_dataset(schema):
    rs = RegionSet.from_spec(schema, {"d0": "d0.L0"})
    assert rs.keys([]) == set()
    assert list(rs.regions([])) == []
    assert rs.partition([]) == {}


def test_repr_uses_square_brackets(schema):
    rs = RegionSet.from_spec(schema, {"d0": "d0.L1"})
    assert repr(rs) == "[d0:d0.L1]"
