"""Tests for granularity vectors and the <_G partial order."""

import pytest

from repro.errors import GranularityError
from repro.cube.granularity import Granularity
from repro.schema.dataset_schema import (
    network_log_schema,
    synthetic_schema,
)


@pytest.fixture(scope="module")
def schema():
    return synthetic_schema(num_dimensions=3, levels=3, fanout=4)


class TestConstruction:
    def test_from_spec_defaults_to_all(self, schema):
        g = Granularity.from_spec(schema, {"d0": "d0.L1"})
        assert g.levels == (1, 3, 3)

    def test_from_spec_by_abbrev(self):
        net = network_log_schema()
        g = Granularity.from_spec(net, {"t": "Hour", "U": "IP"})
        assert g.levels[0] == 1 and g.levels[1] == 0

    def test_base_and_all(self, schema):
        assert Granularity.base(schema).levels == (0, 0, 0)
        assert Granularity.all(schema).levels == (3, 3, 3)

    def test_wrong_width_rejected(self, schema):
        with pytest.raises(GranularityError):
            Granularity(schema, (0, 0))

    def test_bad_level_rejected(self, schema):
        with pytest.raises(GranularityError):
            Granularity(schema, (0, 0, 9))

    def test_repr_omits_all_dims(self, schema):
        g = Granularity.from_spec(schema, {"d0": "d0.L1"})
        assert repr(g) == "(d0:d0.L1)"
        assert repr(Granularity.all(schema)) == "(ALL)"


class TestPartialOrder:
    def test_finer_or_equal_reflexive(self, schema):
        g = Granularity.from_spec(schema, {"d0": "d0.L1"})
        assert g.finer_or_equal(g)
        assert not g.strictly_finer(g)

    def test_base_is_finest(self, schema):
        base = Granularity.base(schema)
        top = Granularity.all(schema)
        assert base.finer_or_equal(top)
        assert base.strictly_finer(top)
        assert not top.finer_or_equal(base)

    def test_incomparable_pair(self, schema):
        g1 = Granularity.from_spec(schema, {"d0": "d0.L0"})
        g2 = Granularity.from_spec(schema, {"d1": "d1.L0"})
        assert not g1.finer_or_equal(g2)
        assert not g2.finer_or_equal(g1)

    def test_cross_schema_rejected(self, schema):
        other = synthetic_schema(num_dimensions=3, levels=3, fanout=4)
        with pytest.raises(GranularityError):
            Granularity.base(schema).finer_or_equal(
                Granularity.base(other)
            )

    def test_equality_and_hash(self, schema):
        g1 = Granularity.from_spec(schema, {"d0": "d0.L1"})
        g2 = Granularity(schema, (1, 3, 3))
        assert g1 == g2
        assert hash(g1) == hash(g2)
        assert g1 != Granularity.base(schema)


class TestKeys:
    def test_key_dims_excludes_all(self, schema):
        g = Granularity.from_spec(schema, {"d0": "d0.L1", "d2": "d2.L0"})
        assert g.key_dims == (0, 2)

    def test_key_of_record(self, schema):
        g = Granularity.from_spec(schema, {"d0": "d0.L1", "d1": "d1.L0"})
        # fanout 4: value 13 at L1 is 13 // 4 == 3.
        assert g.key_of_record((13, 7, 22, 0.5)) == (3, 7, 0)

    def test_generalize_key_up(self, schema):
        fine = Granularity.from_spec(schema, {"d0": "d0.L0", "d1": "d1.L0"})
        coarse = Granularity.from_spec(schema, {"d0": "d0.L1"})
        assert coarse.generalize_key((13, 7, 0), fine) == (3, 0, 0)

    def test_generalize_key_rejects_coarser_input(self, schema):
        fine = Granularity.base(schema)
        coarse = Granularity.all(schema)
        with pytest.raises(GranularityError):
            fine.generalize_key((0, 0, 0), coarse)

    def test_lift_fn_cached(self, schema):
        fine = Granularity.base(schema)
        coarse = Granularity.from_spec(schema, {"d0": "d0.L2"})
        assert coarse.lift_fn(fine) is coarse.lift_fn(fine)

    def test_record_key_fn_matches_key_of_record(self, schema):
        g = Granularity.from_spec(schema, {"d0": "d0.L2", "d2": "d2.L1"})
        record = (63, 1, 17, 0.0)
        assert g.record_key_fn()(record) == g.key_of_record(record)
