"""Tests for sort keys / ordering vectors (Section 5.2)."""

import pytest

from repro.errors import GranularityError, PlanError
from repro.cube.granularity import Granularity
from repro.cube.order import SortKey
from repro.schema.dataset_schema import (
    network_log_schema,
    synthetic_schema,
)


@pytest.fixture(scope="module")
def schema():
    return synthetic_schema(num_dimensions=3, levels=3, fanout=4)


class TestConstruction:
    def test_from_spec(self):
        net = network_log_schema()
        key = SortKey.from_spec(net, [("t", "Day"), ("T", "/24")])
        assert key.parts == ((0, 2), (2, 1))

    def test_duplicate_dim_rejected(self, schema):
        with pytest.raises(GranularityError):
            SortKey(schema, [(0, 0), (0, 1)])

    def test_bad_indices_rejected(self, schema):
        with pytest.raises(GranularityError):
            SortKey(schema, [(9, 0)])
        with pytest.raises(GranularityError):
            SortKey(schema, [(0, 9)])

    def test_repr_matches_paper_notation(self):
        net = network_log_schema()
        key = SortKey.from_spec(net, [("t", "Hour"), ("U", "IP")])
        assert repr(key) == "<t:Hour, U:IP>"


class TestMapping:
    def test_map_record_generalizes(self, schema):
        key = SortKey(schema, [(0, 1), (1, 0)])
        assert key.map_record((13, 7, 3, 0.1)) == (3, 7)

    def test_sort_records(self, schema):
        key = SortKey(schema, [(1, 0)])
        records = [(0, 9, 0, 0.0), (0, 1, 0, 0.0), (0, 4, 0, 0.0)]
        assert [r[1] for r in key.sort_records(records)] == [1, 4, 9]

    def test_map_key_from_finer_granularity(self, schema):
        key = SortKey(schema, [(0, 2)])
        fine = Granularity.base(schema)
        assert key.map_key((13, 0, 0), fine) == (0,)

    def test_map_key_rejects_coarser_key(self, schema):
        key = SortKey(schema, [(0, 0)])
        coarse = Granularity.from_spec(schema, {"d0": "d0.L2"})
        with pytest.raises(PlanError):
            key.map_key((1, 0, 0), coarse)

    def test_record_mapper_cached(self, schema):
        key = SortKey(schema, [(0, 0)])
        assert key.record_mapper() is key.record_mapper()


class TestStructure:
    def test_prefix(self, schema):
        key = SortKey(schema, [(0, 0), (1, 0), (2, 0)])
        assert key.prefix(2).parts == ((0, 0), (1, 0))

    def test_more_general_than(self, schema):
        fine = SortKey(schema, [(0, 0), (1, 0)])
        coarse_prefix = SortKey(schema, [(0, 1)])
        assert coarse_prefix.more_general_than(fine)
        assert not fine.more_general_than(coarse_prefix)

    def test_more_general_requires_same_attrs(self, schema):
        a = SortKey(schema, [(0, 0)])
        b = SortKey(schema, [(1, 0)])
        assert not a.more_general_than(b)

    def test_coarsened_to_lifts_and_truncates(self, schema):
        key = SortKey(schema, [(0, 0), (1, 0), (2, 0)])
        gran = Granularity.from_spec(schema, {"d0": "d0.L1", "d2": "d2.L0"})
        # d1 is at ALL in the granularity: the order truncates there.
        coarsened = key.coarsened_to(gran)
        assert coarsened.parts == ((0, 1),)

    def test_equality_and_hash(self, schema):
        assert SortKey(schema, [(0, 0)]) == SortKey(schema, [(0, 0)])
        assert hash(SortKey(schema, [(0, 0)])) == hash(
            SortKey(schema, [(0, 0)])
        )
        assert SortKey(schema, [(0, 0)]) != SortKey(schema, [(0, 1)])
