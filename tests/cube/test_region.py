"""Tests for regions, coverage, and region containment (Section 2.2)."""

import pytest

from repro.errors import GranularityError
from repro.cube.granularity import Granularity
from repro.cube.region import Region, coverage, is_parent_region
from repro.schema.dataset_schema import synthetic_schema


@pytest.fixture(scope="module")
def schema():
    return synthetic_schema(num_dimensions=2, levels=3, fanout=4)


RECORDS = [
    (0, 0, 1.0),
    (1, 5, 1.0),
    (4, 5, 1.0),
    (13, 9, 1.0),
    (13, 9, 2.0),
]


class TestRegion:
    def test_width_checked(self, schema):
        g = Granularity.base(schema)
        with pytest.raises(GranularityError):
            Region(g, (1,))

    def test_contains_record(self, schema):
        g = Granularity.from_spec(schema, {"d0": "d0.L1"})
        region = Region(g, (0, 0))  # d0 in [0..3]
        assert region.contains_record((1, 5, 1.0))
        assert not region.contains_record((4, 5, 1.0))

    def test_coverage_filters_records(self, schema):
        g = Granularity.from_spec(schema, {"d0": "d0.L1"})
        region = Region(g, (3, 0))  # d0 in [12..15]
        assert list(coverage(region, RECORDS)) == [
            (13, 9, 1.0),
            (13, 9, 2.0),
        ]

    def test_parent_at(self, schema):
        base = Granularity.base(schema)
        coarse = Granularity.from_spec(schema, {"d0": "d0.L2"})
        region = Region(base, (13, 9))
        parent = region.parent_at(coarse)
        assert parent.values == (0, 0)
        assert parent.granularity == coarse

    def test_str_rendering(self, schema):
        g = Granularity.from_spec(schema, {"d0": "d0.L0"})
        assert str(Region(g, (7, 0))) == "<d0=7>"
        assert str(Region(Granularity.all(schema), (0, 0))) == "<ALL>"


class TestContainment:
    def test_parent_child_relation(self, schema):
        base = Granularity.base(schema)
        coarse = Granularity.from_spec(schema, {"d0": "d0.L1"})
        child = Region(base, (13, 9))
        parent = Region(coarse, (3, 0))
        assert is_parent_region(parent, child)

    def test_not_parent_when_values_mismatch(self, schema):
        base = Granularity.base(schema)
        coarse = Granularity.from_spec(schema, {"d0": "d0.L1"})
        child = Region(base, (13, 9))
        wrong = Region(coarse, (2, 0))
        assert not is_parent_region(wrong, child)

    def test_not_parent_at_same_granularity(self, schema):
        g = Granularity.base(schema)
        a, b = Region(g, (1, 1)), Region(g, (1, 1))
        assert not is_parent_region(a, b)
