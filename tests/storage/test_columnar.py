"""Unit tests for the columnar batch substrate (repro.storage.columnar)."""

from __future__ import annotations

import pytest

from repro.cube.granularity import Granularity
from repro.schema.dataset_schema import synthetic_schema
from repro.storage.columnar import (
    HAVE_NUMPY,
    RecordBatch,
    batches_from_records,
    default_batch_size,
    group_runs,
    key_columns,
    map_column,
    resolve_batch_size,
)
from repro.storage.flatfile import FlatFileDataset, write_flatfile
from repro.storage.table import InMemoryDataset

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="vectorized path requires numpy"
)


@pytest.fixture(scope="module")
def schema():
    return synthetic_schema(num_dimensions=3, levels=3, fanout=4)


def _records(schema, count, seed=0):
    import random

    rng = random.Random(seed)
    return [
        (
            rng.randrange(64),
            rng.randrange(64),
            rng.randrange(64),
            rng.random(),
        )
        for __ in range(count)
    ]


class TestResolveBatchSize:
    def test_none_is_auto(self):
        assert resolve_batch_size(None) == default_batch_size()

    def test_zero_and_negative_force_scalar(self):
        assert resolve_batch_size(0) == 0
        assert resolve_batch_size(-5) == 0

    @needs_numpy
    def test_positive_is_honored(self):
        assert resolve_batch_size(123) == 123

    @needs_numpy
    def test_auto_is_vectorized_with_numpy(self):
        assert default_batch_size() > 0


class TestRecordBatch:
    def test_round_trips_records(self, schema):
        records = _records(schema, 10)
        batch = RecordBatch.from_records(schema, records)
        assert len(batch) == 10
        assert batch.python_rows() == records

    def test_empty(self, schema):
        batch = RecordBatch.from_records(schema, [])
        assert len(batch) == 0
        assert batch.python_rows() == []
        assert list(batch.iter_records()) == []

    @needs_numpy
    def test_numeric_records_become_vectors(self, schema):
        batch = RecordBatch.from_records(schema, _records(schema, 8))
        assert batch.vector

    def test_none_measures_stay_list_backed(self, schema):
        # SQL NULL measures must survive — numpy would coerce to NaN.
        records = [(1, 2, 3, None), (4, 5, 6, 1.5)]
        batch = RecordBatch.from_records(schema, records)
        assert not batch.vector
        assert batch.python_rows() == records

    def test_slice(self, schema):
        records = _records(schema, 10)
        batch = RecordBatch.from_records(schema, records)
        part = batch.slice(3, 7)
        assert part.python_rows() == records[3:7]
        # Sliced past the end clamps; the full slice is the batch.
        assert batch.slice(0, 99) is batch
        assert len(batch.slice(8, 99)) == 2

    def test_python_rows_are_plain_scalars(self, schema):
        batch = RecordBatch.from_records(schema, _records(schema, 4))
        for row in batch.python_rows():
            assert all(
                type(value) in (int, float) for value in row
            )


class TestBatchesFromRecords:
    @pytest.mark.parametrize("count", [0, 1, 7, 8, 9])
    def test_chunking_covers_everything(self, schema, count):
        records = _records(schema, count)
        batches = list(batches_from_records(schema, records, 4))
        assert sum(len(b) for b in batches) == count
        flattened = [
            row for b in batches for row in b.python_rows()
        ]
        assert flattened == records

    def test_generator_input(self, schema):
        records = _records(schema, 10)
        batches = list(
            batches_from_records(schema, iter(records), 3)
        )
        assert [len(b) for b in batches] == [3, 3, 3, 1]

    def test_rejects_nonpositive_size(self, schema):
        with pytest.raises(ValueError):
            list(batches_from_records(schema, [], 0))


@needs_numpy
class TestMapColumn:
    def test_matches_scalar_generalize(self, schema):
        import numpy as np

        dim = schema.dimensions[0]
        column = np.arange(64, dtype=np.int64)
        for to_level in range(dim.all_level + 1):
            mapped = map_column(dim.hierarchy, 0, to_level, column)
            expected = [
                dim.hierarchy.generalize(int(v), 0, to_level)
                for v in column
            ]
            assert mapped.tolist() == expected

    def test_generic_lut_fallback(self, schema):
        import numpy as np

        dim = schema.dimensions[0]

        class NoFastPath:
            all_level = dim.hierarchy.all_level

            def array_mapper(self, from_level, to_level):
                return None

            def mapper(self, from_level, to_level):
                return dim.hierarchy.mapper(from_level, to_level)

        column = np.array([5, 5, 63, 0, 5], dtype=np.int64)
        mapped = map_column(NoFastPath(), 0, 1, column)
        scalar = dim.hierarchy.mapper(0, 1)
        assert mapped.tolist() == [scalar(int(v)) for v in column]

    def test_key_columns_all_slots_are_none(self, schema):
        batch = RecordBatch.from_records(schema, _records(schema, 6))
        gran = Granularity(
            schema,
            [1, schema.dimensions[1].all_level, 0],
        )
        cols = key_columns(gran, batch)
        assert cols[1] is None
        assert cols[0] is not None and cols[2] is not None


@needs_numpy
class TestGroupRuns:
    def test_first_appearance_order(self, schema):
        import numpy as np

        keys = [np.array([2, 1, 2, 3, 1, 2], dtype=np.int64)]
        order, sorted_keys, starts, ends = group_runs(keys, 6)
        seen = [int(sorted_keys[0][s]) for s in starts]
        # Scalar scan sees 2 first, then 1, then 3.
        assert seen == [2, 1, 3]
        # Runs cover every row exactly once.
        assert sorted(
            (int(s), int(e)) for s, e in zip(starts, ends)
        ) == [(0, 2), (2, 5), (5, 6)]

    def test_rows_within_run_keep_scan_order(self, schema):
        import numpy as np

        keys = [np.array([1, 1, 0, 1], dtype=np.int64)]
        values = np.array([10.0, 20.0, 30.0, 40.0])
        order, sorted_keys, starts, ends = group_runs(keys, 4)
        ordered = values[order]
        runs = {
            int(sorted_keys[0][s]): ordered[s:e].tolist()
            for s, e in zip(starts, ends)
        }
        assert runs == {1: [10.0, 20.0, 40.0], 0: [30.0]}


class TestScanBatches:
    @pytest.mark.parametrize("batch_size", [1, 7, 4096])
    def test_inmemory_matches_scan(self, schema, batch_size):
        dataset = InMemoryDataset(schema, _records(schema, 23))
        rows = [
            row
            for batch in dataset.scan_batches(batch_size)
            for row in batch.python_rows()
        ]
        assert rows == list(dataset.scan())

    @pytest.mark.parametrize("batch_size", [1, 7, 4096])
    def test_flatfile_matches_scan(self, schema, tmp_path, batch_size):
        records = _records(schema, 23)
        path = str(tmp_path / "facts.bin")
        write_flatfile(path, schema, records)
        dataset = FlatFileDataset(path, schema)
        rows = [
            row
            for batch in dataset.scan_batches(batch_size)
            for row in batch.python_rows()
        ]
        assert rows == list(dataset.scan())

    @needs_numpy
    def test_flatfile_batches_are_vectors(self, schema, tmp_path):
        path = str(tmp_path / "facts.bin")
        write_flatfile(path, schema, _records(schema, 10))
        for batch in FlatFileDataset(path, schema).scan_batches(4):
            assert batch.vector
