"""Tests for the external merge sort."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage.external_sort import external_sort


def test_in_memory_path_when_input_fits():
    records = [(3,), (1,), (2,)]
    assert list(external_sort(records, lambda r: r, run_size=10)) == [
        (1,),
        (2,),
        (3,),
    ]


def test_spill_path_multiple_runs(tmp_path):
    records = [(i % 7, i) for i in range(100)]
    out = list(
        external_sort(
            records, lambda r: r[0], run_size=8, tmp_dir=str(tmp_path)
        )
    )
    assert [r[0] for r in out] == sorted(r[0] for r in records)
    # Spill files are cleaned up afterwards.
    assert [p for p in os.listdir(tmp_path) if p.startswith("run-")] == []


def test_exact_run_boundary():
    records = [(i,) for i in range(20, 0, -1)]
    out = list(external_sort(records, lambda r: r, run_size=10))
    assert out == sorted(records)


def test_empty_input():
    assert list(external_sort([], lambda r: r)) == []


def test_invalid_run_size():
    with pytest.raises(StorageError):
        list(external_sort([(1,)], lambda r: r, run_size=0))


def test_early_abandonment_cleans_up(tmp_path):
    records = [(i,) for i in range(50)]
    iterator = external_sort(
        records, lambda r: r, run_size=5, tmp_dir=str(tmp_path)
    )
    next(iterator)
    iterator.close()  # abandon mid-stream
    assert [p for p in os.listdir(tmp_path) if p.startswith("run-")] == []


def test_duplicate_keys_all_preserved():
    records = [(1, "a"), (1, "b"), (0, "c"), (1, "d")]
    out = list(external_sort(records, lambda r: r[0], run_size=2))
    assert len(out) == 4
    assert [r[0] for r in out] == [0, 1, 1, 1]
    assert {r[1] for r in out} == {"a", "b", "c", "d"}


@settings(max_examples=50)
@given(
    values=st.lists(st.integers(-1000, 1000), max_size=200),
    run_size=st.integers(min_value=1, max_value=50),
)
def test_matches_builtin_sorted(values, run_size):
    records = [(v,) for v in values]
    out = list(external_sort(records, lambda r: r, run_size=run_size))
    assert out == sorted(records)


class TestInjectedFailures:
    """A spill or merge that dies must not leak temp run files."""

    def _records(self):
        return [(i % 9, i) for i in range(50)]

    def test_failed_spill_leaves_no_run_files(self, tmp_path):
        from repro.testkit import FailPointError, failpoint

        with (
            failpoint("sort.spill", "raise"),
            pytest.raises(FailPointError),
        ):
            list(
                external_sort(
                    self._records(),
                    lambda r: r[0],
                    run_size=5,
                    tmp_dir=str(tmp_path),
                )
            )
        assert os.listdir(tmp_path) == []

    def test_failed_merge_leaves_no_run_files(self, tmp_path):
        from repro.testkit import FailPointError, failpoint

        with (
            failpoint("sort.merge", "raise"),
            pytest.raises(FailPointError),
        ):
            list(
                external_sort(
                    self._records(),
                    lambda r: r[0],
                    run_size=5,
                    tmp_dir=str(tmp_path),
                )
            )
        assert os.listdir(tmp_path) == []

    def test_failed_spill_removes_owned_temp_directory(self):
        import tempfile

        from repro.testkit import FailPointError, failpoint

        base = tempfile.gettempdir()

        def sort_dirs():
            return {
                name
                for name in os.listdir(base)
                if name.startswith("awra-sort-")
            }

        before = sort_dirs()
        with (
            failpoint("sort.spill", "raise"),
            pytest.raises(FailPointError),
        ):
            list(
                external_sort(
                    self._records(), lambda r: r[0], run_size=5
                )
            )
        assert sort_dirs() == before
