"""Tests for binary flat files and CSV I/O."""

import struct

import pytest

from repro.errors import StorageError
from repro.schema.dataset_schema import (
    network_log_schema,
    synthetic_schema,
)
from repro.storage.flatfile import (
    FlatFileDataset,
    read_csv,
    write_csv,
    write_flatfile,
)

RECORDS = [
    (1, 2, 0.5),
    (3, 4, 1.5),
    (5, 6, -2.0),
]


@pytest.fixture()
def schema():
    return synthetic_schema(num_dimensions=2, levels=2, fanout=4)


class TestBinaryRoundtrip:
    def test_write_read(self, schema, tmp_path):
        path = str(tmp_path / "data.bin")
        assert write_flatfile(path, schema, RECORDS) == 3
        ds = FlatFileDataset(path, schema)
        assert len(ds) == 3
        assert list(ds.scan()) == RECORDS

    def test_scan_is_repeatable(self, schema, tmp_path):
        path = str(tmp_path / "data.bin")
        write_flatfile(path, schema, RECORDS)
        ds = FlatFileDataset(path, schema)
        assert list(ds.scan()) == list(ds.scan())

    def test_empty_file(self, schema, tmp_path):
        path = str(tmp_path / "empty.bin")
        write_flatfile(path, schema, [])
        ds = FlatFileDataset(path, schema)
        assert len(ds) == 0
        assert list(ds.scan()) == []

    def test_large_batch_boundary(self, schema, tmp_path):
        """Cross the internal write/read batch size."""
        records = [(i % 16, i % 16, float(i)) for i in range(5000)]
        path = str(tmp_path / "big.bin")
        write_flatfile(path, schema, records)
        assert list(FlatFileDataset(path, schema).scan()) == records

    def test_no_measure_schema(self, tmp_path):
        net = network_log_schema()
        records = [(10, 20, 30, 40), (11, 21, 31, 41)]
        path = str(tmp_path / "net.bin")
        write_flatfile(path, net, records)
        assert list(FlatFileDataset(path, net).scan()) == records


class TestBinaryValidation:
    def test_missing_file(self, schema):
        with pytest.raises(StorageError):
            FlatFileDataset("/nonexistent/file.bin", schema)

    def test_bad_magic(self, schema, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 20)
        with pytest.raises(StorageError, match="not an AWRA"):
            FlatFileDataset(str(path), schema)

    def test_truncated_header(self, schema, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(b"AW")
        with pytest.raises(StorageError, match="truncated"):
            FlatFileDataset(str(path), schema)

    def test_schema_mismatch(self, schema, tmp_path):
        other = synthetic_schema(num_dimensions=3, levels=2, fanout=4)
        path = str(tmp_path / "data.bin")
        write_flatfile(path, other, [(1, 2, 3, 0.0)])
        with pytest.raises(StorageError, match="does not match"):
            FlatFileDataset(path, schema)

    def test_torn_record_detected(self, schema, tmp_path):
        path = str(tmp_path / "data.bin")
        write_flatfile(path, schema, RECORDS)
        with open(path, "ab") as fh:
            fh.write(struct.pack("<q", 7))  # half a record
        with pytest.raises(StorageError, match="truncated record"):
            FlatFileDataset(path, schema)


class TestCsv:
    def test_roundtrip(self, schema, tmp_path):
        path = str(tmp_path / "data.csv")
        assert write_csv(path, schema, RECORDS) == 3
        assert list(read_csv(path, schema)) == RECORDS

    def test_header_validated(self, schema, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y,z\n1,2,3\n")
        with pytest.raises(StorageError, match="header"):
            list(read_csv(str(path), schema))

    def test_malformed_value_reported_with_line(self, schema, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("d0,d1,v\n1,2,0.5\n1,oops,0.5\n")
        with pytest.raises(StorageError, match=":3"):
            list(read_csv(str(path), schema))

    def test_wrong_field_count_reported(self, schema, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("d0,d1,v\n1,2\n")
        with pytest.raises(StorageError, match="fields"):
            list(read_csv(str(path), schema))
