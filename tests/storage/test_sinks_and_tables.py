"""Tests for result sinks and measure tables."""

import pytest

from repro.cube.granularity import Granularity
from repro.schema.dataset_schema import synthetic_schema
from repro.storage.sink import (
    DirectorySink,
    FileSink,
    MemorySink,
    NullSink,
    Sink,
    TeeSink,
)
from repro.storage.table import InMemoryDataset, MeasureTable


@pytest.fixture()
def gran():
    schema = synthetic_schema(num_dimensions=2, levels=2, fanout=4)
    return Granularity.from_spec(schema, {"d0": "d0.L0"})


class TestMemorySink:
    def test_collects_tables(self, gran):
        sink = MemorySink()
        sink.open_measure("m", gran)
        sink.emit("m", (1, 0), 5)
        sink.emit("m", (2, 0), 7)
        tables = sink.result()
        assert tables["m"].rows == {(1, 0): 5, (2, 0): 7}

    def test_reopen_keeps_rows(self, gran):
        sink = MemorySink()
        sink.open_measure("m", gran)
        sink.emit("m", (1, 0), 5)
        sink.open_measure("m", gran)
        assert sink.result()["m"].rows == {(1, 0): 5}


class TestNullSink:
    def test_counts_only(self, gran):
        sink = NullSink()
        sink.open_measure("m", gran)
        sink.emit("m", (1, 0), 5)
        sink.emit("m", (2, 0), 5)
        assert sink.counts == {"m": 2}
        assert sink.result() is None


class TestFileSink:
    def test_writes_tsv_per_measure(self, gran, tmp_path):
        sink = FileSink(str(tmp_path))
        sink.open_measure("m", gran)
        sink.emit("m", (1, 0), 5)
        sink.emit("m", (2, 0), None)
        sink.close()
        content = (tmp_path / "m.tsv").read_text().splitlines()
        assert content == ["1\t0\t5", "2\t0\tNone"]


class TestDirectorySink:
    def test_is_a_file_sink(self, gran, tmp_path):
        sink = DirectorySink(str(tmp_path))
        sink.open_measure("m", gran)
        sink.emit("m", (1, 0), 5)
        sink.close()
        assert (tmp_path / "m.tsv").read_text() == "1\t0\t5\n"


class _StateWanter(Sink):
    """Test double that records the state-capture callbacks."""

    wants_states = True

    def __init__(self):
        self.opened = []
        self.states = []
        self.closed = False

    def emit(self, name, key, value):
        pass

    def open_states(self, name, granularity):
        self.opened.append(name)

    def emit_state(self, name, key, state):
        self.states.append((name, key, state))

    def close(self):
        self.closed = True


class TestTeeSink:
    def test_fans_out_and_returns_first_result(self, gran, tmp_path):
        memory = MemorySink()
        files = DirectorySink(str(tmp_path))
        tee = TeeSink(memory, files)
        tee.open_measure("m", gran)
        tee.emit("m", (1, 0), 5)
        tee.close()
        assert tee.result() is memory.result()
        assert tee.result()["m"].rows == {(1, 0): 5}
        assert (tmp_path / "m.tsv").read_text() == "1\t0\t5\n"

    def test_result_skips_resultless_children(self, gran):
        memory = MemorySink()
        tee = TeeSink(NullSink(), memory)
        tee.open_measure("m", gran)
        tee.emit("m", (1, 0), 5)
        assert tee.result() is memory.result()

    def test_wants_states_follows_children(self, gran):
        assert not TeeSink(MemorySink(), NullSink()).wants_states
        wanter = _StateWanter()
        tee = TeeSink(MemorySink(), wanter)
        assert tee.wants_states
        tee.open_states("b", gran)
        tee.emit_state("b", (1, 0), 7)
        tee.close()
        assert wanter.opened == ["b"]
        assert wanter.states == [("b", (1, 0), 7)]
        assert wanter.closed


class TestMeasureTable:
    def test_mapping_protocol(self, gran):
        t = MeasureTable("m", gran, {(1, 0): 5})
        assert len(t) == 1
        assert t[(1, 0)] == 5
        assert t.get((9, 9)) is None
        assert (1, 0) in t

    def test_items_sorted(self, gran):
        t = MeasureTable("m", gran, {(2, 0): 1, (1, 0): 2})
        assert t.items_sorted() == [((1, 0), 2), ((2, 0), 1)]

    def test_items_keys_and_iter_are_key_sorted(self, gran):
        t = MeasureTable("m", gran, {(2, 0): 1, (1, 0): 2, (0, 3): 9})
        assert t.items() == [((0, 3), 9), ((1, 0), 2), ((2, 0), 1)]
        assert t.keys() == [(0, 3), (1, 0), (2, 0)]
        assert list(t) == t.keys()

    def test_equal_rows_with_tolerance(self, gran):
        a = MeasureTable("m", gran, {(1, 0): 1.0})
        b = MeasureTable("m", gran, {(1, 0): 1.0 + 1e-12})
        c = MeasureTable("m", gran, {(1, 0): 1.1})
        assert a.equal_rows(b)
        assert not a.equal_rows(c)

    def test_equal_rows_none_handling(self, gran):
        a = MeasureTable("m", gran, {(1, 0): None})
        b = MeasureTable("m", gran, {(1, 0): None})
        c = MeasureTable("m", gran, {(1, 0): 0})
        assert a.equal_rows(b)
        assert not a.equal_rows(c)
        assert not c.equal_rows(a)

    def test_diff_describes_differences(self, gran):
        a = MeasureTable("m", gran, {(1, 0): 1, (2, 0): 2})
        b = MeasureTable("m", gran, {(2, 0): 3, (3, 0): 4})
        text = a.diff(b)
        assert "missing" in text and "extra" in text and "changed" in text
        assert a.diff(a) == "identical"

    def test_pretty_renders_and_truncates(self, gran):
        rows = {(i, 0): i for i in range(30)}
        t = MeasureTable("m", gran, rows)
        text = t.pretty(limit=3)
        assert "m (" in text
        assert "... 27 more" in text


class TestInMemoryDataset:
    def test_len_and_scan(self, gran):
        ds = InMemoryDataset(gran.schema, [(1, 2, 0.0), (3, 4, 1.0)])
        assert len(ds) == 2
        assert list(ds.scan()) == [(1, 2, 0.0), (3, 4, 1.0)]

    def test_validation_flag(self, gran):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            InMemoryDataset(gran.schema, [(1,)], validate=True)

    def test_sorted_copy(self, gran):
        ds = InMemoryDataset(gran.schema, [(3, 0, 0.0), (1, 0, 0.0)])
        out = ds.sorted_copy(lambda r: r[0])
        assert [r[0] for r in out.records] == [1, 3]
        assert [r[0] for r in ds.records] == [3, 1]  # original intact
