"""The ``sql`` metamorphic-oracle family: seeded batch + shrinking.

The batch is the PR's acceptance gate — 25 generator seeds through the
sqlite differential oracle with zero mismatches.  The shrink test pins
the other half of the contract: when the oracle *does* fail, the
failure arrives with a minimized recipe, not a 15-step workflow dump.
"""

from __future__ import annotations

import pytest

from repro.backends.sqlite_backend import SqliteBackend
from repro.testkit.oracles import FAMILIES, run_batch, run_seed


def test_sql_family_registered():
    assert "sql" in FAMILIES


def test_sql_oracle_25_seed_batch_clean():
    failures = run_batch(range(25), families=["sql"])
    assert failures == [], "\n".join(f.describe() for f in failures)


def test_sql_oracle_failure_shrinks(monkeypatch):
    """A deterministic backend corruption must surface as a shrunk
    recipe.

    The corruption nudges the first row of every non-empty decoded
    table, so *any* workflow with at least one non-empty output still
    fails during shrinking — the property the shrinker's
    ``still_fails`` probe relies on to converge.
    """
    original = SqliteBackend._decode_table

    def corrupted(self, query, rows):
        table = original(self, query, rows)
        for key, value in table.rows.items():
            table.rows[key] = (value or 0.0) + 1000.0
            break
        return table

    monkeypatch.setattr(SqliteBackend, "_decode_table", corrupted)
    failures = run_seed(17, families=["sql"])
    assert failures, "corrupted backend went undetected"
    failure = failures[0]
    assert failure.family == "sql"
    assert failure.seed == 17
    assert failure.shrunk_recipe, "failure did not shrink to a recipe"
    # The shrunk recipe is a real reproduction, not prose.
    assert any("measure" in line or "=" in line for line in failure.shrunk_recipe)


@pytest.mark.parametrize("seed", [3, 11])
def test_sql_oracle_individual_seeds(seed):
    assert run_seed(seed, families=["sql"]) == []
