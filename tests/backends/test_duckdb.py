"""DuckDB engine coverage — skipped with a reason when not installed.

The suite must stay green with or without duckdb: the always-run tests
pin the graceful-absence contract, the ``requires_duckdb`` mirrors run
the same differential checks as the sqlite file when the driver is
importable (CI's conditional step).
"""

from __future__ import annotations

import pytest

from repro.backends import (
    BackendError,
    backend_unavailable_reason,
    get_backend,
)
from repro.backends.duckdb_backend import duckdb_unavailable_reason
from repro.testkit.differential import assert_sql_backend_agrees
from repro.workflow.workflow import AggregationWorkflow

requires_duckdb = pytest.mark.skipif(
    duckdb_unavailable_reason() is not None,
    reason=duckdb_unavailable_reason() or "duckdb importable",
)


def test_absence_is_a_reason_not_a_crash():
    reason = duckdb_unavailable_reason()
    if reason is None:
        pytest.skip("duckdb installed here; absence path covered in CI")
    assert "duckdb" in reason
    assert backend_unavailable_reason("duckdb") == reason
    with pytest.raises(BackendError) as excinfo:
        get_backend("duckdb")
    assert reason in str(excinfo.value)


@requires_duckdb
def test_duckdb_basic_aggregates(syn_schema, syn_dataset):
    wf = AggregationWorkflow(syn_schema, name="duck")
    for agg in ("count", "sum", "avg", "min", "max", "var", "stddev"):
        wf.basic(agg, {"d0": "d0.L1"}, agg=(agg, "v") if agg != "count" else agg)
    assert_sql_backend_agrees(syn_dataset, wf, engine="duckdb")


@requires_duckdb
def test_duckdb_median_runs_natively(syn_schema, syn_dataset):
    wf = AggregationWorkflow(syn_schema, name="duck-median")
    wf.basic("mid", {"d0": "d0.L1"}, agg=("median", "v"))
    result = get_backend("duckdb").evaluate(syn_dataset, wf)
    assert not result.skipped
    assert len(result.tables["mid"]) > 0


@requires_duckdb
def test_duckdb_matches_on_network_family(net_dataset):
    from repro.queries.registry import QUERY_FAMILIES

    __, build = QUERY_FAMILIES["escalation"]
    workflow = build(net_dataset.schema)
    assert_sql_backend_agrees(net_dataset, workflow, engine="duckdb")
