"""Execution tests for the sqlite SQL backend (repro.backends).

Per-operator coverage — every aggregate, every match-condition type,
combine joins, selects at both fact and measure level — each checked
row-for-row against the in-memory engines via the ``sql`` differential
oracle, plus the boundary cases SQL is notorious for (empty input,
single row, NULL measures, zero-key granularities) and the identifier
hazards the executable dialect must survive (case-insensitive column
collisions, reserved words).
"""

from __future__ import annotations

import pytest

from repro.algebra.conditions import ChildParent, Lags, SelfMatch
from repro.algebra.expr import Aggregate, FactTable, MatchJoin
from repro.algebra.predicates import Field
from repro.algebra.sql import (
    DUCKDB,
    RESERVED_WORDS,
    SQLITE,
    SqlUnsupportedError,
    compile_sql,
    fact_columns,
)
from repro.aggregates.base import AggSpec
from repro.backends import (
    BackendError,
    SqliteBackend,
    backend_unavailable_reason,
    compile_workflow_sql,
    get_backend,
)
from repro.backends.compiler import CompiledWorkflow, MeasureQuery
from repro.cube.granularity import Granularity
from repro.engine.compile import compile_measures
from repro.engine.single_scan import SingleScanEngine
from repro.errors import AlgebraError
from repro.schema.dataset_schema import (
    network_log_schema,
    synthetic_schema,
)
from repro.storage.table import InMemoryDataset
from repro.testkit.differential import (
    SQL_ORACLE_TOLERANCE,
    assert_sql_backend_agrees,
    sql_divergence,
)
from repro.workflow.workflow import AggregationWorkflow


def _wf(schema, name="sql-test") -> AggregationWorkflow:
    return AggregationWorkflow(schema, name=name)


# -- per-operator: aggregation (Table 2) ------------------------------------


@pytest.mark.parametrize(
    "agg",
    [
        "count",
        ("count", "v"),
        ("sum", "v"),
        ("min", "v"),
        ("max", "v"),
        ("avg", "v"),
        ("var", "v"),
        ("stddev", "v"),
        ("count_distinct", "v"),
    ],
    ids=lambda a: a if isinstance(a, str) else "_".join(a),
)
def test_basic_aggregate(syn_schema, syn_dataset, agg):
    wf = _wf(syn_schema)
    # Mixed granularity: one generalized dim (a real lookup join), one
    # at base (no join), one at ALL (no column).
    wf.basic("out", {"d0": "d0.L1", "d1": "d1.L0"}, agg=agg)
    assert_sql_backend_agrees(syn_dataset, wf)


@pytest.mark.parametrize("combiner", ["sum", "min", "max", "count", "avg"])
def test_rollup(syn_schema, syn_dataset, combiner):
    wf = _wf(syn_schema)
    wf.basic("fine", {"d0": "d0.L0", "d1": "d1.L0"}, agg=("sum", "v"))
    wf.rollup("out", {"d0": "d0.L1"}, source="fine", agg=combiner)
    assert_sql_backend_agrees(syn_dataset, wf)


def test_count_over_measure_source_counts_non_null(syn_schema, syn_dataset):
    """COUNT over a measure table counts non-NULL M — the engines feed
    the source M to the aggregate even for count(*) specs, and the SQL
    must emit COUNT(B.M), not COUNT(*)."""
    wf = _wf(syn_schema)
    wf.basic("fine", {"d0": "d0.L0"}, agg=("min", "v"))
    # A self match keeps every cell, some with NULL M after filtering.
    wf.match(
        "masked", {"d0": "d0.L0"}, source="fine",
        cond=SelfMatch(), agg="min", where=Field("M") > 50,
    )
    wf.rollup("out", {"d0": "d0.L1"}, source="masked", agg="count")
    assert_sql_backend_agrees(syn_dataset, wf)


# -- per-operator: match joins (Table 3), one test per condition type --------


def test_match_self(syn_schema, syn_dataset):
    wf = _wf(syn_schema)
    wf.basic("base", {"d0": "d0.L1", "d1": "d1.L1"}, agg=("sum", "v"))
    wf.match(
        "out", {"d0": "d0.L1", "d1": "d1.L1"}, source="base",
        cond=SelfMatch(), agg="max",
    )
    assert_sql_backend_agrees(syn_dataset, wf)


def test_match_parent_child_broadcast(syn_schema, syn_dataset):
    wf = _wf(syn_schema)
    wf.basic("coarse", {"d0": "d0.L1"}, agg=("sum", "v"))
    wf.broadcast("out", {"d0": "d0.L0"}, source="coarse", agg="max")
    assert_sql_backend_agrees(syn_dataset, wf)


@pytest.mark.parametrize(
    "window", [(0, 2), (3, -1), (2, 0)], ids=["fwd", "lookback", "bwd"]
)
def test_match_sibling_windows(syn_schema, syn_dataset, window):
    """Sibling windows, including the negative-extent lookback form
    ``(3, -1)`` (the escalation query's trailing window)."""
    wf = _wf(syn_schema)
    wf.basic("base", {"d0": "d0.L0", "d1": "d1.L1"}, agg="count")
    wf.moving_window(
        "out", {"d0": "d0.L0", "d1": "d1.L1"}, source="base",
        windows={"d0": window}, agg="avg",
    )
    assert_sql_backend_agrees(syn_dataset, wf)


def test_match_lags(syn_schema, syn_dataset):
    wf = _wf(syn_schema)
    wf.basic("base", {"d0": "d0.L0"}, agg="count")
    wf.match(
        "out", {"d0": "d0.L0"}, source="base",
        cond=Lags({"d0": (-2, 1)}), agg="sum",
    )
    assert_sql_backend_agrees(syn_dataset, wf)


def test_match_child_parent_raw_algebra(syn_schema, syn_dataset):
    """ChildParent never reaches MatchJoin through the workflow sugar
    (rollup translates to an Aggregate), so the condition's SQL is
    exercised at the algebra level against the reference semantics."""
    fine = Granularity.from_spec(syn_schema, {"d0": "d0.L0"})
    coarse = Granularity.from_spec(syn_schema, {"d0": "d0.L1"})
    fact = FactTable(syn_schema)
    keys = Aggregate(fact, coarse, AggSpec("cells", "*"))
    child = Aggregate(fact, fine, AggSpec("sum", "v"))
    expr = MatchJoin(keys, child, ChildParent(), AggSpec("sum", "M"))

    compiled = CompiledWorkflow(
        schema=syn_schema, fact_table="D", dialect=SQLITE
    )
    result = compile_sql(
        expr, dialect=SQLITE,
        lookups=compiled.lookups, functions=compiled.functions,
    )
    compiled.queries.append(MeasureQuery("out", result.sql, coarse))

    backend = SqliteBackend()
    conn = backend.connect()
    try:
        backend._load(conn, syn_dataset, compiled)
        rows = backend._fetch(conn, result.sql)
    finally:
        conn.close()
    got = backend._decode_table(compiled.queries[0], rows)
    want = (
        SingleScanEngine()
        .evaluate(syn_dataset, compile_measures({"out": expr}))["out"]
    )
    assert want.equal_rows(got, tol=SQL_ORACLE_TOLERANCE), (
        want.diff(got)
    )


# -- per-operator: combine joins (Table 4) ----------------------------------


def test_combine_multi_input(syn_schema, syn_dataset):
    wf = _wf(syn_schema)
    gran = {"d0": "d0.L1"}
    wf.basic("c", gran, agg="count")
    wf.basic("s", gran, agg=("sum", "v"))
    wf.basic("m", gran, agg=("max", "v"))
    wf.combine(
        "out", ["c", "s", "m"],
        fn=lambda c, s, m: c + 2 * s - m, fn_name="mix",
    )
    assert_sql_backend_agrees(syn_dataset, wf)


def test_combine_single_input_derive(syn_schema, syn_dataset):
    wf = _wf(syn_schema)
    wf.basic("c", {"d0": "d0.L1"}, agg="count")
    wf.combine("out", ["c"], fn=lambda c: c * 10, fn_name="scale")
    assert_sql_backend_agrees(syn_dataset, wf)


def test_combine_handles_null(syn_schema, syn_dataset):
    """A handles_null combine fn must see SQL NULL as None, exactly as
    the in-memory engines hand it None for missing matches."""
    wf = _wf(syn_schema)
    gran = {"d0": "d0.L1"}
    wf.basic("s", gran, agg=("sum", "v"), where=Field("v") > 90)
    wf.basic("c", gran, agg="count")
    wf.combine(
        "out", ["s", "c"],
        fn=lambda s, c: -1.0 if s is None else s / c,
        fn_name="null_probe", handles_null=True,
    )
    assert_sql_backend_agrees(syn_dataset, wf)


# -- per-operator: selections at both levels --------------------------------


def test_select_fact_predicates(syn_schema, syn_dataset):
    wf = _wf(syn_schema)
    wf.basic(
        "out", {"d0": "d0.L1"}, agg="count",
        where=(Field("v") > 20) & ~(Field("d1") > 40),
    )
    assert_sql_backend_agrees(syn_dataset, wf)


def test_select_measure_predicates(syn_schema, syn_dataset):
    wf = _wf(syn_schema)
    wf.basic("base", {"d0": "d0.L0", "d1": "d1.L1"}, agg="count")
    wf.filter(
        "out", "base", where=(Field("M") > 2) | (Field("d0") > 50)
    )
    assert_sql_backend_agrees(syn_dataset, wf)


def test_measure_predicate_on_all_dimension_raises(syn_schema, syn_dataset):
    """A measure-level predicate naming a dimension held at ALL is an
    AlgebraError in the engines; the SQL path must refuse identically
    rather than compile a reference to a non-existent column."""
    wf = _wf(syn_schema)
    wf.basic("base", {"d0": "d0.L0"}, agg="count")
    wf.filter("out", "base", where=Field("d1") > 3)
    with pytest.raises(AlgebraError):
        compile_workflow_sql(wf)


# -- boundaries -------------------------------------------------------------


@pytest.fixture(scope="module")
def boundary_workflow_factory():
    def build(schema):
        wf = _wf(schema, name="boundary")
        wf.basic("cnt", {"d0": "d0.L1"}, agg="count")
        wf.basic("total", {}, agg=("sum", "v"))
        wf.basic("spread", {"d0": "d0.L0"}, agg=("var", "v"))
        wf.match(
            "window", {"d0": "d0.L1"}, source="cnt",
            cond=Lags({"d0": (-1,)}), agg="avg",
        )
        return wf

    return build


def test_empty_dataset(syn_schema, boundary_workflow_factory):
    """Empty input: every table must be empty — in particular the
    zero-key-column global aggregates, where ungrouped SQL would
    fabricate one row (the ``GROUP BY 'all'`` guard)."""
    empty = InMemoryDataset(syn_schema, [])
    wf = boundary_workflow_factory(syn_schema)
    assert_sql_backend_agrees(empty, wf)
    result = get_backend("sqlite").evaluate(empty, wf)
    assert all(len(t) == 0 for t in result.tables.values())


def test_single_row(syn_schema, boundary_workflow_factory):
    one = InMemoryDataset(syn_schema, [(3, 7, 11, 2.5)])
    assert_sql_backend_agrees(one, boundary_workflow_factory(syn_schema))


def test_null_measure_values(syn_schema):
    """NULL measure attributes: count/sum/avg skip them on both sides,
    and an all-NULL group aggregates to the engines' empty value."""
    records = [
        (1, 2, 3, None),
        (1, 2, 3, 4.0),
        (9, 9, 9, None),
        (17, 2, 3, 1.0),
    ]
    dataset = InMemoryDataset(syn_schema, records)
    wf = _wf(syn_schema)
    for agg in ("count", "sum", "avg", "min"):
        wf.basic(agg, {"d0": "d0.L1"}, agg=(agg, "v"))
    assert_sql_backend_agrees(dataset, wf)


def test_zero_key_granularity_non_empty(syn_schema, syn_dataset):
    wf = _wf(syn_schema)
    wf.basic("total", {}, agg=("sum", "v"))
    wf.rollup("again", {}, source=_all_base(wf), agg="sum")
    assert_sql_backend_agrees(syn_dataset, wf)


def _all_base(wf):
    wf.basic("perkey", {"d0": "d0.L0"}, agg=("sum", "v"))
    return "perkey"


# -- identifier hygiene -----------------------------------------------------


def test_network_schema_case_collision_resolved():
    """The network schema's ``t`` (Timestamp) and ``T`` (Target)
    abbreviations collide under sqlite's case-insensitive resolution;
    the later occurrence gets a dimension-index suffix."""
    columns = fact_columns(network_log_schema())
    values = list(columns.values())
    assert len({v.lower() for v in values}) == len(values)
    assert columns["Timestamp"] == "t"
    assert columns["Target"] == "T_2"


def test_network_schema_ddl_parses_in_sqlite(net_dataset):
    wf = _wf(net_dataset.schema)
    wf.basic("cnt", {"t": "Hour", "T": "/24"}, agg="count")
    assert_sql_backend_agrees(net_dataset, wf)


def test_reserved_word_measure_name(syn_dataset):
    """A measure attribute named after a SQL keyword must be renamed,
    not emitted bare."""
    schema = synthetic_schema(
        num_dimensions=3, levels=3, fanout=4, measures=("order",)
    )
    columns = fact_columns(schema)
    assert columns["order"].upper() not in RESERVED_WORDS
    dataset = InMemoryDataset(
        schema, [tuple(record) for record in syn_dataset.records]
    )
    wf = _wf(schema)
    wf.basic("out", {"d0": "d0.L1"}, agg=("sum", "order"))
    assert_sql_backend_agrees(dataset, wf)


# -- holistic aggregates: the structured refusal path -----------------------


def test_median_skipped_with_reason_naming_measure(syn_schema, syn_dataset):
    wf = _wf(syn_schema)
    wf.basic("mid", {"d0": "d0.L1"}, agg=("median", "v"))
    wf.basic("cnt", {"d0": "d0.L1"}, agg="count")
    compiled = compile_workflow_sql(wf)
    assert [q.name for q in compiled.queries] == ["cnt"]
    assert "median" in compiled.skipped["mid"]

    result = get_backend("sqlite").evaluate(syn_dataset, wf)
    assert set(result.skipped) == {"mid"}
    assert "median" in result.skipped["mid"]
    assert "cnt" in result.tables
    # And the differential oracle skips it rather than failing.
    assert sql_divergence(syn_dataset, wf) is None


def test_median_strict_raises_named_error(syn_schema):
    wf = _wf(syn_schema)
    wf.basic("mid", {"d0": "d0.L1"}, agg=("median", "v"))
    with pytest.raises(SqlUnsupportedError) as excinfo:
        compile_workflow_sql(wf, strict=True)
    assert excinfo.value.measure == "mid"
    assert "mid" in str(excinfo.value)
    assert excinfo.value.feature == "median"


def test_measure_depending_on_median_is_skipped_too(syn_schema):
    wf = _wf(syn_schema)
    wf.basic("mid", {"d0": "d0.L1"}, agg=("median", "v"))
    wf.combine("scaled", ["mid"], fn=lambda m: m * 2, fn_name="x2")
    compiled = compile_workflow_sql(wf)
    assert set(compiled.skipped) == {"mid", "scaled"}


def test_median_compiles_natively_on_duckdb_dialect(syn_schema):
    """The duckdb *dialect* needs no duckdb install to compile."""
    wf = _wf(syn_schema)
    wf.basic("mid", {"d0": "d0.L1"}, agg=("median", "v"))
    compiled = compile_workflow_sql(wf, dialect=DUCKDB)
    assert not compiled.skipped
    assert "MEDIAN(" in compiled.queries[0].sql


def test_approx_distinct_unsupported_on_both_dialects(syn_schema):
    wf = _wf(syn_schema)
    wf.basic("u", {"d0": "d0.L1"}, agg=("approx_distinct", "v"))
    for dialect in (SQLITE, DUCKDB):
        compiled = compile_workflow_sql(wf, dialect=dialect)
        assert set(compiled.skipped) == {"u"}


# -- backend registry -------------------------------------------------------


def test_unknown_engine_rejected():
    with pytest.raises(BackendError, match="unknown SQL engine"):
        get_backend("postgres")
    assert "unknown" in backend_unavailable_reason("postgres")


def test_duckdb_absence_reports_reason_not_error():
    reason = backend_unavailable_reason("duckdb")
    if reason is not None:
        assert "duckdb" in reason
        with pytest.raises(BackendError, match="duckdb"):
            get_backend("duckdb")


# -- shipped query families -------------------------------------------------


@pytest.mark.parametrize("family", ["examples", "escalation", "q1", "q2"])
def test_query_families_execute_and_match(family, net_dataset):
    """Every registry family runs on sqlite and matches the engines
    (the two biggest network families are covered at larger scale by
    the bench sheet; here a fast subset pins the property in-tree)."""
    from repro.data.synthetic import synthetic_dataset
    from repro.queries.registry import QUERY_FAMILIES

    schema_family, build = QUERY_FAMILIES[family]
    if schema_family == "network":
        dataset = net_dataset
    else:
        dataset = synthetic_dataset(2000, seed=3)
    workflow = build(dataset.schema)
    assert_sql_backend_agrees(dataset, workflow)


@pytest.mark.parametrize("family", ["multirecon", "combined"])
def test_heavy_query_families_execute_and_match(family):
    from repro.data.honeynet import honeynet_dataset
    from repro.queries.registry import QUERY_FAMILIES

    __, build = QUERY_FAMILIES[family]
    dataset = honeynet_dataset(2500, seed=2, hours=24)
    workflow = build(dataset.schema)
    assert_sql_backend_agrees(dataset, workflow)
