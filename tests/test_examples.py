"""Smoke tests: every example script runs end to end.

Examples are documentation that executes; a broken example is a broken
promise to the first user.  Each script is run in a subprocess from the
repository root, with its output checked for the landmark lines it
promises to print.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

EXAMPLES = {
    "quickstart.py": ["records scanned", "sCount", "ratio"],
    "network_monitoring.py": [
        "escalation alerts",
        "multi-recon alerts",
        "one pass over",
    ],
    "engine_comparison.py": ["SortScan", "SingleScan", "peak entries"],
    "workflow_visualization.py": [
        "AW-RA algebra",
        "streaming plan",
        "DOT source written",
    ],
    "environmental_sensors.py": [
        "flagged stations",
        "fault isolated correctly",
    ],
}


@pytest.mark.parametrize("script", sorted(EXAMPLES))
def test_example_runs(script, tmp_path):
    # Propagate src/ on PYTHONPATH so the subprocess finds the in-repo
    # package even without installation; the examples' _bootstrap import
    # covers the same hole for users running them by hand.
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src if not existing else src + os.pathsep + existing
    )
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "examples", script)],
        capture_output=True,
        text=True,
        cwd=str(tmp_path),  # scripts must not depend on the CWD
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    for needle in EXAMPLES[script]:
        assert needle in proc.stdout, (
            f"{script} output missing {needle!r}:\n{proc.stdout[:2000]}"
        )


def test_every_example_is_covered():
    on_disk = {
        name
        for name in os.listdir(os.path.join(REPO_ROOT, "examples"))
        # Underscore-prefixed modules are shared helpers (e.g. the
        # sys.path bootstrap), not runnable examples.
        if name.endswith(".py") and not name.startswith("_")
    }
    assert on_disk == set(EXAMPLES), (
        "examples/ and the smoke-test inventory diverged"
    )
