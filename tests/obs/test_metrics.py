"""Tests for the metrics registry and its exposition formats."""

import pytest

from repro.engine.interfaces import EvalStats
from repro.obs.metrics import (
    ENGINE_RUNS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    publish_eval_stats,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("c_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counters_only_go_up(self):
        c = Counter("c_total", "help")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_labels(self):
        c = Counter("req_total", "help", labelnames=("route",))
        c.labels(route="/a").inc()
        c.labels(route="/a").inc()
        c.labels(route="/b").inc()
        assert c.dump() == {("/a",): 2.0, ("/b",): 1.0}
        assert 'req_total{route="/a"} 2' in c.render()

    def test_wrong_labels_rejected(self):
        c = Counter("req_total", "help", labelnames=("route",))
        with pytest.raises(ValueError, match="expected labels"):
            c.labels(nope="x")


class TestLabelEscaping:
    """Prometheus exposition requires \\, \", and newline escaped in
    label values (and nothing else)."""

    def test_backslash_quote_and_newline(self):
        c = Counter("odd_total", "help", labelnames=("path",))
        c.labels(path='C:\\tmp\\"log"\nnext').inc()
        (line,) = c.render()
        assert line == (
            'odd_total{path="C:\\\\tmp\\\\\\"log\\"\\nnext"} 1'
        )

    def test_plain_values_pass_through(self):
        c = Counter("plain_total", "help", labelnames=("route",))
        c.labels(route="/point?q=1&r=2").inc()
        assert 'route="/point?q=1&r=2"' in c.render()[0]


class TestGauge:
    def test_set_and_peak(self):
        g = Gauge("g", "help")
        g.set(5)
        g.set_max(3)
        assert g.value == 5.0
        g.set_max(9)
        assert g.value == 9.0

    def test_inc_dec(self):
        g = Gauge("g", "help")
        g.inc(4)
        g.dec()
        assert g.value == 3.0

    def test_callback_gauge(self):
        state = {"n": 7}
        g = Gauge("g", "help", fn=lambda: state["n"])
        assert g.value == 7.0
        state["n"] = 8
        assert g.value == 8.0


class TestHistogram:
    def test_observe_and_cumulative_render(self):
        h = Histogram("lat", "help", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        lines = h.render()
        assert 'lat_bucket{le="0.1"} 1' in lines
        assert 'lat_bucket{le="1"} 3' in lines
        assert 'lat_bucket{le="10"} 4' in lines
        assert 'lat_bucket{le="+Inf"} 5' in lines
        assert "lat_count 5" in lines
        assert h.count == 5
        assert h.sum == pytest.approx(56.05)

    def test_needs_buckets(self):
        with pytest.raises(ValueError, match="bucket"):
            Histogram("lat", "help", buckets=())

    def test_merge_rejects_layout_mismatch(self):
        h = Histogram("lat", "help", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="layout mismatch"):
            h.merge_sample((), {"buckets": [1], "sum": 0, "count": 1})


class TestRegistry:
    def test_idempotent_declaration(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help")
        b = reg.counter("x_total")
        assert a is b

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "help")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")

    def test_render_prometheus_structure(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "counts a").inc(2)
        reg.gauge("b_level", "level of b").set(1.5)
        reg.histogram("c_seconds", "c latency", buckets=(1.0,)).observe(
            0.5
        )
        text = reg.render_prometheus()
        assert "# HELP a_total counts a" in text
        assert "# TYPE a_total counter" in text
        assert "a_total 2" in text
        assert "# TYPE b_level gauge" in text
        assert "b_level 1.5" in text
        assert "# TYPE c_seconds histogram" in text
        assert 'c_seconds_bucket{le="+Inf"} 1' in text
        assert text.endswith("\n")

    def test_merge_dict_semantics(self):
        a = MetricsRegistry()
        a.counter("work_total", "h").inc(3)
        a.gauge("peak", "h").set(10)
        a.histogram("lat", "h", buckets=(1.0, 5.0)).observe(0.5)

        b = MetricsRegistry()
        b.counter("work_total", "h").inc(4)
        b.gauge("peak", "h").set(7)
        b.histogram("lat", "h", buckets=(1.0, 5.0)).observe(3.0)

        a.merge_dict(b.to_dict())
        # Counters add: work done is work done, whichever process did it.
        assert a.counter("work_total").value == 7.0
        # Gauges take the max: per-process peak semantics.
        assert a.gauge("peak").value == 10.0
        hist = a.histogram("lat", buckets=(1.0, 5.0))
        assert hist.count == 2
        assert hist.sum == pytest.approx(3.5)

    def test_merge_dict_into_empty_registry(self):
        src = MetricsRegistry()
        src.counter("n_total", "h", labelnames=("k",)).labels(
            k="a"
        ).inc(2)
        dst = MetricsRegistry()
        dst.merge_dict(src.to_dict())
        assert dst.counter("n_total").dump() == {("a",): 2.0}

    def test_to_dict_round_trips_through_json(self):
        import json

        reg = MetricsRegistry()
        reg.histogram("lat", "h", buckets=(1.0,)).observe(0.2)
        payload = json.loads(json.dumps(reg.to_dict()))
        other = MetricsRegistry()
        other.merge_dict(payload)
        assert other.histogram("lat", buckets=(1.0,)).count == 1


class TestPublishEvalStats:
    def test_publishes_engine_family(self):
        reg = MetricsRegistry()
        stats = EvalStats(
            engine="sort-scan",
            rows_scanned=100,
            sort_seconds=0.25,
            scan_seconds=0.5,
            total_seconds=0.8,
            flushed_entries=40,
            peak_entries=12,
        )
        publish_eval_stats(stats, registry=reg)
        publish_eval_stats(stats, registry=reg)
        assert reg.counter(ENGINE_RUNS).value == 2.0
        assert (
            reg.counter("repro_engine_rows_scanned_total").value == 200.0
        )
        assert reg.gauge("repro_engine_peak_entries").value == 12.0
        assert reg.histogram("repro_engine_run_seconds").count == 2
