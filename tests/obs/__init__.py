"""Tests for the telemetry layer (tracing, metrics, profiling)."""
