"""EvalStats serialization round-trips, including the batch fields."""

from __future__ import annotations

import json

from repro.engine.interfaces import EvalStats


def test_to_dict_carries_batch_fields():
    stats = EvalStats(engine="single-scan", batched=True, batch_size=4096)
    data = stats.to_dict()
    assert data["batched"] is True
    assert data["batch_size"] == 4096


def test_round_trip_preserves_batch_fields():
    stats = EvalStats(
        engine="sort-scan",
        rows_scanned=123,
        batched=True,
        batch_size=16_384,
        notes="sort_key=<d0:d0.L1>",
    )
    rebuilt = EvalStats.from_dict(stats.to_dict())
    assert rebuilt == stats


def test_round_trip_defaults_for_legacy_payloads():
    """Dicts written before the batch fields existed still load."""
    legacy = EvalStats(engine="single-scan").to_dict()
    del legacy["batched"]
    del legacy["batch_size"]
    rebuilt = EvalStats.from_dict(legacy)
    assert rebuilt.batched is False
    assert rebuilt.batch_size == 0


def test_round_trip_survives_json():
    stats = EvalStats(engine="single-scan", batched=True, batch_size=7)
    rebuilt = EvalStats.from_dict(
        json.loads(json.dumps(stats.to_dict()))
    )
    assert rebuilt == stats


def test_merge_combines_batch_fields():
    """A run is batched when any sub-run was; the reported size is the
    largest any sub-run used (partitioned/multi-pass engines)."""
    total = EvalStats(engine="partitioned")
    total.merge(EvalStats(engine="worker-0", batched=False, batch_size=0))
    total.merge(
        EvalStats(engine="worker-1", batched=True, batch_size=4096)
    )
    assert total.batched is True
    assert total.batch_size == 4096
