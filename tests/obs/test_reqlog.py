"""Tests for the structured access log, slow-query log, and observer."""

import json

import pytest

from repro.obs import (
    get_registry,
    get_tracer,
    new_context,
    reset_registry,
    set_tracing,
    tracing_enabled,
    use_context,
)
from repro.obs.metrics import (
    HTTP_REQUEST_SECONDS,
    OBS_LOG_ERRORS,
    SLOW_QUERIES,
)
from repro.obs.reqlog import (
    DEFAULT_SLOW_QUERY_SECONDS,
    RequestLog,
    RequestObserver,
    SlowQueryLog,
)
from repro.testkit.failpoints import failpoint


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Observer metrics are process-global; isolate each test."""
    reset_registry()
    was_tracing = tracing_enabled()
    yield
    set_tracing(was_tracing)
    reset_registry()


def _read_jsonl(path):
    with open(path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


class TestRequestLog:
    def test_writes_json_lines_to_file(self, tmp_path):
        path = str(tmp_path / "access.log")
        log = RequestLog(path)
        log.log({"route": "/point", "status": 200})
        log.log({"route": "/table", "status": 404})
        log.close()
        entries = _read_jsonl(path)
        assert [e["route"] for e in entries] == ["/point", "/table"]

    def test_no_path_is_logger_only(self):
        log = RequestLog()
        log.log({"route": "/point"})  # must not raise
        log.close()


class TestSlowQueryLog:
    def test_threshold_and_counter(self, tmp_path):
        log = SlowQueryLog(threshold_seconds=0.2)
        assert not log.is_slow(0.1)
        assert log.is_slow(0.2)
        log.log({"route": "/table", "duration_ms": 900.0})
        counter = get_registry().counter(SLOW_QUERIES)
        assert counter.dump() == {("/table",): 1.0}
        log.close()

    def test_recent_is_a_bounded_ring(self):
        log = SlowQueryLog(threshold_seconds=0.0, keep_recent=3)
        for i in range(5):
            log.log({"route": f"/r{i}"})
        assert [e["route"] for e in log.recent()] == ["/r2", "/r3", "/r4"]
        log.close()

    def test_default_threshold(self):
        assert SlowQueryLog().threshold_seconds == (
            DEFAULT_SLOW_QUERY_SECONDS
        )


class TestRequestObserver:
    def _observer(self, tmp_path, threshold=10.0):
        access_path = str(tmp_path / "access.log")
        slow_path = str(tmp_path / "slow.log")
        observer = RequestObserver(
            access_log=RequestLog(access_path),
            slow_log=SlowQueryLog(
                threshold_seconds=threshold, path=slow_path
            ),
        )
        return observer, access_path, slow_path

    def test_access_entry_fields(self, tmp_path):
        observer, access_path, __ = self._observer(tmp_path)
        ctx = new_context(request_id="req-1")
        ctx.stats.fanout = 2
        ctx.stats.queue_wait_seconds = 0.004
        observer.observe(
            route="/point",
            method="GET",
            status=200,
            seconds=0.01,
            ctx=ctx,
            tenant="acme",
        )
        observer.close()
        (entry,) = _read_jsonl(access_path)
        assert entry["route"] == "/point"
        assert entry["method"] == "GET"
        assert entry["status"] == 200
        assert entry["tenant"] == "acme"
        assert entry["request_id"] == "req-1"
        assert entry["trace_id"] == ctx.trace_id
        assert entry["fanout"] == 2
        assert entry["queue_wait_ms"] == pytest.approx(4.0)
        assert entry["duration_ms"] == pytest.approx(10.0)

    def test_latency_histogram_and_error_field(self, tmp_path):
        observer, access_path, __ = self._observer(tmp_path)
        observer.observe(
            route="/point",
            method="GET",
            status=500,
            seconds=0.01,
            error="boom",
        )
        observer.close()
        (entry,) = _read_jsonl(access_path)
        assert entry["error"] == "boom"
        hist = get_registry().histogram(HTTP_REQUEST_SECONDS)
        rendered = "\n".join(hist.render())
        assert 'route="/point"' in rendered
        assert 'tenant="-"' in rendered

    def test_slow_request_captures_stages_and_engine_runs(self, tmp_path):
        observer, __, slow_path = self._observer(tmp_path, threshold=0.0)
        set_tracing(True)
        get_tracer().reset()
        ctx = new_context()
        with use_context(ctx), get_tracer().span("work", cat="test"):
            pass
        ctx.stats.engine_runs.append({"engine": "sort-scan"})
        observer.observe(
            route="/table", method="GET", status=200, seconds=1.0, ctx=ctx
        )
        observer.close()
        get_tracer().reset()
        (entry,) = _read_jsonl(slow_path)
        assert entry["stages"][0]["stage"] == "work"
        assert entry["engine_runs"] == [{"engine": "sort-scan"}]

    def test_fast_request_skips_the_slow_log(self, tmp_path):
        observer, __, slow_path = self._observer(tmp_path, threshold=5.0)
        observer.observe(
            route="/point", method="GET", status=200, seconds=0.01
        )
        observer.close()
        assert _read_jsonl(slow_path) == []

    def test_slo_recording(self, tmp_path):
        recorded = []

        class FakeSLO:
            def record(self, tenant, seconds, error=False):
                recorded.append((tenant, seconds, error))

        observer = RequestObserver(slo=FakeSLO())
        observer.observe(
            route="/point", method="GET", status=200, seconds=0.01,
            tenant="t1",
        )
        observer.observe(
            route="/point", method="GET", status=503, seconds=0.02,
            tenant="t1",
        )
        observer.close()
        assert recorded == [("t1", 0.01, False), ("t1", 0.02, True)]

    def test_write_failures_never_escape(self, tmp_path):
        observer, access_path, __ = self._observer(tmp_path)
        errors = get_registry().counter(OBS_LOG_ERRORS)
        with failpoint("obs.reqlog-write", "raise"):
            observer.observe(
                route="/point", method="GET", status=200, seconds=0.01
            )
        assert errors.value == 1.0
        # With the fail point gone the same observer logs again.
        observer.observe(
            route="/point", method="GET", status=200, seconds=0.01
        )
        observer.close()
        assert len(_read_jsonl(access_path)) == 1
