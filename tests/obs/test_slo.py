"""Tests for SLO objectives and multi-window burn-rate tracking."""

import pytest

from repro.obs.metrics import (
    SLO_BAD_REQUESTS,
    SLO_BURN_RATE,
    SLO_GOOD_REQUESTS,
    MetricsRegistry,
)
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    Objective,
    SLOTracker,
    parse_objectives,
)


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestObjective:
    def test_ratio_objective_flags_errors_only(self):
        slo = Objective("avail", "ratio", 0.999)
        assert slo.is_bad(10.0, error=True)
        assert not slo.is_bad(10.0, error=False)
        assert slo.budget == pytest.approx(0.001)

    def test_latency_objective_flags_slow_or_errored(self):
        slo = Objective("lat", "latency", 0.99, threshold=0.25)
        assert slo.is_bad(0.3, error=False)
        assert slo.is_bad(0.1, error=True)
        assert not slo.is_bad(0.1, error=False)

    def test_invalid_objectives_are_rejected(self):
        with pytest.raises(ValueError):
            Objective("x", "nope", 0.99)
        with pytest.raises(ValueError):
            Objective("x", "ratio", 1.5)
        with pytest.raises(ValueError):
            Objective("x", "latency", 0.99)  # missing threshold

    def test_parse_objectives_spec(self):
        objectives = parse_objectives(
            "availability:ratio:0.999,lat:latency:0.99:0.25"
        )
        assert [o.name for o in objectives] == ["availability", "lat"]
        assert objectives[1].threshold == 0.25

    def test_parse_objectives_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_objectives("just-a-name")
        with pytest.raises(ValueError):
            parse_objectives("")


class TestBurnRates:
    def _tracker(self, clock):
        return SLOTracker(
            objectives=(Objective("avail", "ratio", 0.999),),
            windows=(("5m", 300.0), ("1h", 3600.0)),
            clock=clock,
        )

    def test_all_good_traffic_burns_nothing(self):
        clock = FakeClock()
        tracker = self._tracker(clock)
        for __ in range(100):
            tracker.record("t1", 0.01)
        rates = tracker.burn_rates()
        assert rates[("t1", "avail", "5m")] == 0.0
        assert rates[("t1", "avail", "1h")] == 0.0

    def test_burn_rate_is_bad_fraction_over_budget(self):
        clock = FakeClock()
        tracker = self._tracker(clock)
        for i in range(100):
            tracker.record("t1", 0.01, error=(i < 10))
        # 10% bad over a 0.1% budget = burn rate 100.
        assert tracker.burn_rates()[("t1", "avail", "5m")] == (
            pytest.approx(100.0)
        )

    def test_old_traffic_ages_out_of_short_windows(self):
        clock = FakeClock()
        tracker = self._tracker(clock)
        tracker.record("t1", 0.01, error=True)
        clock.advance(600.0)  # beyond 5m, inside 1h
        tracker.record("t1", 0.01)
        rates = tracker.burn_rates()
        assert rates[("t1", "avail", "5m")] == 0.0
        assert rates[("t1", "avail", "1h")] > 0.0

    def test_tenants_are_isolated(self):
        clock = FakeClock()
        tracker = self._tracker(clock)
        tracker.record("noisy", 0.01, error=True)
        tracker.record("quiet", 0.01)
        rates = tracker.burn_rates()
        assert rates[("noisy", "avail", "5m")] > 0.0
        assert rates[("quiet", "avail", "5m")] == 0.0

    def test_status_shape(self):
        clock = FakeClock()
        tracker = self._tracker(clock)
        tracker.record("t1", 0.01, error=True)
        status = tracker.status()
        assert status["objectives"][0]["name"] == "avail"
        assert status["windows"] == ["5m", "1h"]
        assert set(status["burn_rates"]["t1"]["avail"]) == {"5m", "1h"}


class TestExport:
    def test_export_publishes_gauges_and_counters(self):
        clock = FakeClock()
        tracker = SLOTracker(
            objectives=(Objective("avail", "ratio", 0.9),),
            windows=(("5m", 300.0),),
            clock=clock,
        )
        registry = MetricsRegistry()
        for i in range(10):
            tracker.record("t1", 0.01, error=(i == 0))
        tracker.export(registry)
        text = registry.render_prometheus()
        assert SLO_BURN_RATE in text
        assert 'tenant="t1"' in text
        assert 'window="5m"' in text
        data = registry.to_dict()
        good = data[SLO_GOOD_REQUESTS]
        bad = data[SLO_BAD_REQUESTS]
        assert good["samples"][0]["data"] == 9
        assert bad["samples"][0]["data"] == 1

    def test_export_counters_stay_monotonic_after_pruning(self):
        clock = FakeClock()
        tracker = SLOTracker(
            objectives=(Objective("avail", "ratio", 0.9),),
            windows=(("5m", 300.0),),
            clock=clock,
        )
        registry = MetricsRegistry()
        tracker.record("t1", 0.01, error=True)
        tracker.export(registry)
        # Age the bucket out of every window, then export again: the
        # cumulative counters must not regress (or double-count).
        clock.advance(10_000.0)
        tracker.record("t1", 0.01)
        tracker.export(registry)
        data = registry.to_dict()
        assert data[SLO_BAD_REQUESTS]["samples"][0]["data"] == 1
        assert data[SLO_GOOD_REQUESTS]["samples"][0]["data"] == 1

    def test_default_objectives_cover_availability_and_latency(self):
        kinds = {o.kind for o in DEFAULT_OBJECTIVES}
        assert kinds == {"ratio", "latency"}
