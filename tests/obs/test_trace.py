"""Tests for the span tracer and its Chrome trace-event exporter."""

import json
import os
import time

from repro.obs.trace import NULL_SPAN, Tracer


def _span_interval(event):
    return event["ts"], event["ts"] + event["dur"]


class TestDisabled:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", cat="x", a=1)
        assert span is NULL_SPAN
        with span as s:
            s.set(b=2)
        assert tracer.events == []

    def test_disabled_add_complete_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.add_complete("x", duration=0.5)
        tracer.instant("y")
        assert tracer.events == []
        assert tracer.dropped == 0


class TestRecording:
    def test_span_records_complete_event(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work", cat="test", size=3) as span:
            span.set(rows=7)
        (event,) = tracer.events
        assert event["name"] == "work"
        assert event["cat"] == "test"
        assert event["ph"] == "X"
        assert event["args"] == {"size": 3, "rows": 7}
        assert event["pid"] == os.getpid()

    def test_nested_spans_are_contained_intervals(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            time.sleep(0.002)
            with tracer.span("inner"):
                time.sleep(0.002)
            time.sleep(0.002)
        by_name = {e["name"]: e for e in tracer.events}
        outer_lo, outer_hi = _span_interval(by_name["outer"])
        inner_lo, inner_hi = _span_interval(by_name["inner"])
        assert outer_lo <= inner_lo
        assert inner_hi <= outer_hi

    def test_max_events_cap_counts_drops(self):
        tracer = Tracer(enabled=True, max_events=2)
        for i in range(5):
            tracer.add_complete(f"e{i}", duration=0.0)
        assert len(tracer.events) == 2
        assert tracer.dropped == 3
        assert tracer.export()["otherData"]["dropped"] == 3

    def test_take_events_drains(self):
        tracer = Tracer(enabled=True)
        tracer.add_complete("a")
        events = tracer.take_events()
        assert [e["name"] for e in events] == ["a"]
        assert tracer.events == []

    def test_absorb_merges_foreign_events(self):
        parent = Tracer(enabled=True)
        parent.add_complete("parent-side")
        worker = Tracer(enabled=True)
        worker.add_complete("worker-side")
        shipped = worker.take_events()
        shipped[0]["pid"] = 99999  # as if from another process
        parent.absorb(shipped)
        names = {e["name"] for e in parent.events}
        assert names == {"parent-side", "worker-side"}


class TestExportSchema:
    """The exported JSON must be valid Chrome trace-event format."""

    def _sample_tracer(self):
        tracer = Tracer(enabled=True)
        with (
            tracer.span("outer", cat="engine"),
            tracer.span("inner", cat="engine", detail="x"),
        ):
            pass
        tracer.instant("mark", cat="engine")
        return tracer

    def test_export_schema(self):
        payload = self._sample_tracer().export()
        assert set(payload) == {
            "traceEvents", "displayTimeUnit", "otherData",
        }
        assert payload["displayTimeUnit"] == "ms"
        for event in payload["traceEvents"]:
            assert isinstance(event["name"], str)
            assert isinstance(event["cat"], str)
            assert event["ph"] in ("X", "i")
            assert isinstance(event["ts"], int)
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert isinstance(event["dur"], int)
                assert event["dur"] >= 0

    def test_export_is_sorted_per_lane(self):
        events = self._sample_tracer().export()["traceEvents"]
        keys = [(e["pid"], e["tid"], e["ts"]) for e in events]
        assert keys == sorted(keys)

    def test_write_produces_loadable_json(self, tmp_path):
        tracer = self._sample_tracer()
        path = str(tmp_path / "trace.json")
        count = tracer.write(path)
        with open(path) as fh:
            payload = json.load(fh)
        assert count == len(payload["traceEvents"]) == 3
        assert payload["otherData"]["producer"] == "repro.obs"

    def test_timestamps_are_wall_aligned(self):
        tracer = Tracer(enabled=True)
        before = time.time() * 1_000_000
        tracer.add_complete("now", duration=0.0)
        after = time.time() * 1_000_000
        ts = tracer.events[0]["ts"]
        # Wall alignment is what makes cross-process merge meaningful.
        assert before - 1_000_000 <= ts <= after + 1_000_000
