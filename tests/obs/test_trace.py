"""Tests for the span tracer and its Chrome trace-event exporter."""

import json
import os
import time

from repro.obs import new_context, use_context
from repro.obs.trace import (
    NULL_SPAN,
    Tracer,
    events_for_trace,
    render_span_tree,
    span_tree,
)


def _span_interval(event):
    return event["ts"], event["ts"] + event["dur"]


class TestDisabled:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", cat="x", a=1)
        assert span is NULL_SPAN
        with span as s:
            s.set(b=2)
        assert tracer.events == []

    def test_disabled_add_complete_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.add_complete("x", duration=0.5)
        tracer.instant("y")
        assert tracer.events == []
        assert tracer.dropped == 0


class TestRecording:
    def test_span_records_complete_event(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work", cat="test", size=3) as span:
            span.set(rows=7)
        (event,) = tracer.events
        assert event["name"] == "work"
        assert event["cat"] == "test"
        assert event["ph"] == "X"
        assert event["args"] == {"size": 3, "rows": 7}
        assert event["pid"] == os.getpid()

    def test_nested_spans_are_contained_intervals(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            time.sleep(0.002)
            with tracer.span("inner"):
                time.sleep(0.002)
            time.sleep(0.002)
        by_name = {e["name"]: e for e in tracer.events}
        outer_lo, outer_hi = _span_interval(by_name["outer"])
        inner_lo, inner_hi = _span_interval(by_name["inner"])
        assert outer_lo <= inner_lo
        assert inner_hi <= outer_hi

    def test_max_events_cap_counts_drops(self):
        tracer = Tracer(enabled=True, max_events=2)
        for i in range(5):
            tracer.add_complete(f"e{i}", duration=0.0)
        assert len(tracer.events) == 2
        assert tracer.dropped == 3
        assert tracer.export()["otherData"]["dropped"] == 3

    def test_take_events_drains(self):
        tracer = Tracer(enabled=True)
        tracer.add_complete("a")
        events = tracer.take_events()
        assert [e["name"] for e in events] == ["a"]
        assert tracer.events == []

    def test_absorb_merges_foreign_events(self):
        parent = Tracer(enabled=True)
        parent.add_complete("parent-side")
        worker = Tracer(enabled=True)
        worker.add_complete("worker-side")
        shipped = worker.take_events()
        shipped[0]["pid"] = 99999  # as if from another process
        parent.absorb(shipped)
        names = {e["name"] for e in parent.events}
        assert names == {"parent-side", "worker-side"}


class TestTraceStamping:
    def test_spans_inherit_the_active_trace_context(self):
        tracer = Tracer(enabled=True)
        ctx = new_context()
        with use_context(ctx):
            with tracer.span("outer"), tracer.span("inner"):
                pass
        by_name = {e["name"]: e for e in tracer.events}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer["args"]["trace_id"] == ctx.trace_id
        assert inner["args"]["trace_id"] == ctx.trace_id
        # Lexical nesting becomes explicit parent/child linkage.
        assert outer["args"]["parent_id"] == ctx.span_id
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]

    def test_no_context_means_no_stamps(self):
        tracer = Tracer(enabled=True)
        with tracer.span("bare"):
            pass
        assert "args" not in tracer.events[0]

    def test_events_for_trace_and_trace_ids(self):
        tracer = Tracer(enabled=True)
        ctx_a, ctx_b = new_context(), new_context()
        for ctx, name in ((ctx_a, "a"), (ctx_b, "b")):
            with use_context(ctx), tracer.span(name):
                pass
        a_events = events_for_trace(tracer.events, ctx_a.trace_id)
        assert [e["name"] for e in a_events] == ["a"]
        assert tracer.events_for_trace(ctx_b.trace_id)[0]["name"] == "b"
        assert set(tracer.trace_ids()) == {
            ctx_a.trace_id, ctx_b.trace_id,
        }


class TestSpanTree:
    def _traced_events(self):
        tracer = Tracer(enabled=True)
        ctx = new_context()
        with use_context(ctx):
            with tracer.span("root"):
                with tracer.span("left"):
                    pass
                with tracer.span("right"):
                    pass
        return tracer.events

    def test_tree_reassembles_from_span_ids(self):
        (root,) = span_tree(self._traced_events())
        assert root["event"]["name"] == "root"
        names = [child["event"]["name"] for child in root["children"]]
        assert names == ["left", "right"]

    def test_cross_process_linkage_uses_ids_not_containment(self):
        # Simulate a worker: same parent/trace ids, different pid, and
        # intervals that do NOT nest inside the router span.
        tracer = Tracer(enabled=True)
        ctx = new_context()
        with use_context(ctx), tracer.span("router"):
            pass
        router = tracer.events[0]
        worker_event = {
            "name": "shard:point",
            "cat": "shard",
            "ph": "X",
            "ts": router["ts"] + 10_000_000,
            "dur": 5,
            "pid": 99999,
            "tid": 1,
            "args": {
                "trace_id": ctx.trace_id,
                "span_id": "feedfacefeedface",
                "parent_id": router["args"]["span_id"],
            },
        }
        tracer.absorb([worker_event])
        (root,) = span_tree(tracer.events)
        assert root["event"]["name"] == "router"
        assert root["children"][0]["event"]["name"] == "shard:point"

    def test_dangling_parent_becomes_root(self):
        events = [
            {
                "name": "orphan", "ph": "X", "ts": 1, "dur": 1,
                "pid": 1, "tid": 1,
                "args": {"span_id": "aa", "parent_id": "missing"},
            }
        ]
        (root,) = span_tree(events)
        assert root["event"]["name"] == "orphan"

    def test_render_span_tree_indents_children(self):
        lines = render_span_tree(self._traced_events())
        assert lines[0].startswith("root")
        assert lines[1].startswith("  left")
        assert lines[2].startswith("  right")
        assert all("pid=" in line for line in lines)


class TestExportSchema:
    """The exported JSON must be valid Chrome trace-event format."""

    def _sample_tracer(self):
        tracer = Tracer(enabled=True)
        with (
            tracer.span("outer", cat="engine"),
            tracer.span("inner", cat="engine", detail="x"),
        ):
            pass
        tracer.instant("mark", cat="engine")
        return tracer

    def test_export_schema(self):
        payload = self._sample_tracer().export()
        assert set(payload) == {
            "traceEvents", "displayTimeUnit", "otherData",
        }
        assert payload["displayTimeUnit"] == "ms"
        for event in payload["traceEvents"]:
            assert isinstance(event["name"], str)
            assert isinstance(event["cat"], str)
            assert event["ph"] in ("X", "i")
            assert isinstance(event["ts"], int)
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert isinstance(event["dur"], int)
                assert event["dur"] >= 0

    def test_export_is_sorted_per_lane(self):
        events = self._sample_tracer().export()["traceEvents"]
        keys = [(e["pid"], e["tid"], e["ts"]) for e in events]
        assert keys == sorted(keys)

    def test_write_produces_loadable_json(self, tmp_path):
        tracer = self._sample_tracer()
        path = str(tmp_path / "trace.json")
        count = tracer.write(path)
        with open(path) as fh:
            payload = json.load(fh)
        assert count == len(payload["traceEvents"]) == 3
        assert payload["otherData"]["producer"] == "repro.obs"

    def test_timestamps_are_wall_aligned(self):
        tracer = Tracer(enabled=True)
        before = time.time() * 1_000_000
        tracer.add_complete("now", duration=0.0)
        after = time.time() * 1_000_000
        ts = tracer.events[0]["ts"]
        # Wall alignment is what makes cross-process merge meaningful.
        assert before - 1_000_000 <= ts <= after + 1_000_000
