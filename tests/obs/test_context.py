"""Tests for request-scoped trace contexts and their propagation."""

import pickle

import pytest

from repro.obs import current_context, new_context, use_context
from repro.obs.context import TraceContext, parse_traceparent


class TestTraceparent:
    def test_fresh_context_has_valid_ids(self):
        ctx = new_context()
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16
        int(ctx.trace_id, 16)
        int(ctx.span_id, 16)
        assert not ctx.parent_id
        assert ctx.request_id

    def test_traceparent_roundtrip(self):
        ctx = new_context()
        parsed = parse_traceparent(ctx.traceparent())
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id

    def test_incoming_traceparent_continues_the_trace(self):
        upstream = new_context()
        ctx = new_context(upstream.traceparent())
        assert ctx.trace_id == upstream.trace_id
        # The local context is a *child* of the caller's span, not the
        # same span: its id is fresh and its parent is the caller.
        assert ctx.span_id != upstream.span_id
        assert ctx.parent_id == upstream.span_id

    @pytest.mark.parametrize(
        "header",
        [
            "",
            "garbage",
            "00-zz-zz-01",
            "00-abc-def-01",
            # version ff is explicitly invalid per W3C trace-context
            "ff-" + "a" * 32 + "-" + "b" * 16 + "-01",
        ],
    )
    def test_malformed_traceparent_starts_a_fresh_trace(self, header):
        ctx = new_context(header)
        assert ctx is not None
        assert len(ctx.trace_id) == 32

    def test_explicit_request_id_is_kept(self):
        ctx = new_context(request_id="req-42")
        assert ctx.request_id == "req-42"


class TestChildAndWire:
    def test_child_shares_trace_and_stats(self):
        parent = new_context()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        assert child.span_id != parent.span_id
        assert child.stats is parent.stats
        child.stats.fanout += 1
        assert parent.stats.fanout == 1

    def test_wire_roundtrip(self):
        ctx = new_context(request_id="req-7")
        data = ctx.to_dict()
        # The wire form must be plain picklable primitives (it rides
        # the worker pipe inside each request message).
        pickle.dumps(data)
        back = TraceContext.from_dict(data)
        assert back.trace_id == ctx.trace_id
        assert back.span_id == ctx.span_id
        assert back.request_id == "req-7"

    def test_ids_include_parent_only_when_set(self):
        root = new_context()
        assert "parent_id" not in root.ids()
        child = root.child()
        assert child.ids()["parent_id"] == root.span_id


class TestCurrentContext:
    def test_no_context_by_default(self):
        assert current_context() is None

    def test_use_context_scopes_the_context(self):
        ctx = new_context()
        with use_context(ctx):
            assert current_context() is ctx
        assert current_context() is None

    def test_use_context_nests(self):
        outer = new_context()
        inner = outer.child()
        with use_context(outer):
            with use_context(inner):
                assert current_context() is inner
            assert current_context() is outer
