"""Every paper query × every engine, via the shared conftest harness."""

import pytest

from tests.conftest import assert_engines_agree
from repro.queries.combined import combined_workflow
from repro.queries.escalation import escalation_workflow
from repro.queries.examples import examples_workflow
from repro.queries.multi_recon import multi_recon_workflow
from repro.queries.q1_child_parent import q1_workflow
from repro.queries.q2_sibling_chain import q2_workflow


@pytest.mark.parametrize(
    "build",
    [examples_workflow, escalation_workflow, multi_recon_workflow,
     combined_workflow],
    ids=lambda fn: fn.__name__,
)
def test_network_queries_all_engines(net_dataset, build):
    workflow = build(net_dataset.schema)
    reference = assert_engines_agree(net_dataset, workflow)
    # Every output produced something (the traces are non-trivial).
    total_rows = sum(
        len(reference[name]) for name in workflow.outputs()
    )
    assert total_rows > 0


@pytest.mark.parametrize(
    "build",
    [
        lambda s: q1_workflow(s, num_children=4),
        lambda s: q2_workflow(s, depth=3, num_chains=2),
    ],
    ids=["q1", "q2"],
)
def test_synthetic_queries_all_engines(build):
    # q1/q2 expect the 4-dimensional synthetic schema.
    from repro.data.synthetic import synthetic_dataset

    dataset = synthetic_dataset(2500)
    workflow = build(dataset.schema)
    assert_engines_agree(dataset, workflow)
