"""Tests for the paper's query library — including detection quality.

Beyond engine agreement (covered by the equivalence suite), these tests
check that the Section 7.2 analyses actually *detect the injected
episodes*: the escalation query flags the worm subnet, the multi-recon
query flags the recon subnet, and neither floods with false positives.
"""

import pytest

from repro.engine.naive import RelationalEngine
from repro.engine.sort_scan import SortScanEngine
from repro.data.honeynet import honeynet_dataset
from repro.data.synthetic import synthetic_dataset
from repro.queries.combined import combined_workflow
from repro.queries.escalation import escalation_workflow
from repro.queries.examples import examples_workflow
from repro.queries.multi_recon import multi_recon_workflow
from repro.queries.q1_child_parent import q1_workflow
from repro.queries.q2_sibling_chain import q2_workflow
from repro.errors import WorkflowError

WORM_SUBNET = (192 << 16) | (168 << 8) | 7
RECON_SUBNET = (192 << 16) | (168 << 8) | 21


@pytest.fixture(scope="module")
def trace():
    return honeynet_dataset(6000, hours=24)


@pytest.fixture(scope="module")
def engine():
    return SortScanEngine(assert_no_late_updates=True)


class TestExamplesWorkflow:
    def test_builds_and_validates(self, trace):
        wf = examples_workflow(trace.schema)
        wf.validate()
        assert set(wf.outputs()) == {
            "Count",
            "sCount",
            "sTraffic",
            "avgCount",
            "ratio",
        }

    def test_busy_sources_bounded_by_all_sources(self, trace, engine):
        result = engine.evaluate(trace, examples_workflow(trace.schema))
        count = result["Count"]
        scount = result["sCount"]
        per_hour_sources = {}
        for (hour, src, __, ___), ____ in count.rows.items():
            per_hour_sources.setdefault(hour, set()).add(src)
        for key, busy in scount.rows.items():
            assert busy <= len(per_hour_sources[key[0]])


class TestQ1:
    def test_children_bounded(self):
        ds = synthetic_dataset(500)
        with pytest.raises(WorkflowError):
            q1_workflow(ds.schema, num_children=40)

    def test_combined_sums_region_counts(self):
        ds = synthetic_dataset(2000)
        wf = q1_workflow(ds.schema, num_children=3)
        result = SortScanEngine().evaluate(ds, wf)
        combined = result["combined"]
        assert set(wf.outputs()) == {"combined"}
        # Every parent has at least num_children populated child
        # regions (one per child measure, since data is dense).
        assert all(v >= 3 for v in combined.rows.values())


class TestQ2:
    def test_outputs_are_chain_tails_only(self):
        ds = synthetic_dataset(500)
        wf = q2_workflow(ds.schema, depth=3, num_chains=2)
        assert set(wf.outputs()) == {"chain0_w2", "chain1_w2"}

    def test_depth_validation(self):
        ds = synthetic_dataset(10)
        with pytest.raises(WorkflowError):
            q2_workflow(ds.schema, depth=0)
        with pytest.raises(WorkflowError):
            q2_workflow(ds.schema, num_chains=0)

    def test_smoothing_preserves_mean_scale(self):
        ds = synthetic_dataset(3000)
        wf = q2_workflow(ds.schema, depth=2)
        result = SortScanEngine().evaluate(ds, wf)
        tail = result["chain0_w1"]
        values = [v for v in tail.rows.values() if v is not None]
        mean = sum(values) / len(values)
        assert 1.0 <= mean <= 10.0  # ~3 records per base cell


class TestEscalationDetection:
    def test_worm_subnet_flagged(self, trace, engine):
        result = engine.evaluate(trace, escalation_workflow(trace.schema))
        flagged_subnets = {key[2] for key in result["alerts"].rows}
        assert WORM_SUBNET in flagged_subnets

    def test_alerts_are_sparse(self, trace, engine):
        result = engine.evaluate(trace, escalation_workflow(trace.schema))
        assert 0 < len(result["alerts"].rows) < 50
        traffic_regions = len(result["traffic"].rows)
        assert len(result["alerts"].rows) < traffic_regions / 20


class TestMultiReconDetection:
    def test_recon_subnet_flagged(self, trace, engine):
        result = engine.evaluate(trace, multi_recon_workflow(trace.schema))
        flagged = {key[2] for key in result["reconAlerts"].rows}
        assert RECON_SUBNET in flagged

    def test_scores_require_source_breadth(self, trace, engine):
        result = engine.evaluate(trace, multi_recon_workflow(trace.schema))
        sources = result["uniqueSources"]
        for key in result["reconAlerts"].rows:
            assert sources[key] >= 30


class TestCombinedWorkflow:
    def test_fuses_both_analyses(self, trace, engine):
        wf = combined_workflow(trace.schema)
        result = engine.evaluate(trace, wf)
        assert "alerts" in result.tables
        assert "reconAlerts" in result.tables
        # Fused results identical to standalone runs.
        alone = engine.evaluate(trace, escalation_workflow(trace.schema))
        assert alone["alerts"].equal_rows(result["alerts"])

    def test_relational_agrees_on_combined(self, trace):
        wf = combined_workflow(trace.schema)
        a = RelationalEngine(spool=False).evaluate(trace, wf)
        b = SortScanEngine().evaluate(trace, wf)
        for name in wf.outputs():
            assert a[name].equal_rows(b[name]), a[name].diff(b[name])
