"""Opt-in strict validation on the workflow itself."""

import pytest

from repro.analysis import analyze
from repro.errors import WorkflowError
from repro.testkit.mutations import clean_workflow, mutant


class TestStrictValidate:
    def test_strict_rejects_error_level_workflow(self, syn_schema):
        # CSM101's mutant passes the builder-era checks (the raw
        # measure was spliced in post-hoc), so non-strict validation
        # is blind to it — exactly the gap strict mode closes.
        wf = mutant("CSM101", syn_schema)
        wf.validate()
        with pytest.raises(WorkflowError, match="CSM101"):
            wf.validate(strict=True)

    def test_strict_message_names_workflow_and_measure(
        self, syn_schema
    ):
        wf = mutant("CSM101", syn_schema)
        with pytest.raises(
            WorkflowError, match=r"workflow 'csm101'"
        ) as excinfo:
            wf.validate(strict=True)
        assert "'agg'" in str(excinfo.value)

    def test_strict_passes_clean_workflow(self, syn_schema):
        clean_workflow(syn_schema).validate(strict=True)

    def test_warnings_do_not_fail_strict_validation(self, syn_schema):
        wf = mutant("CSM202", syn_schema)  # warning-level only
        report = analyze(wf)
        assert report.ok and report.warnings
        wf.validate(strict=True)


class TestStrictToAlgebra:
    def test_strict_translation_refuses_errors(self, syn_schema):
        with pytest.raises(WorkflowError, match="strict validation"):
            mutant("CSM105", syn_schema).to_algebra(strict=True)

    def test_strict_translation_of_clean_workflow(self, syn_schema):
        wf = clean_workflow(syn_schema)
        exprs = wf.to_algebra(strict=True)
        assert set(wf.measures) <= set(exprs)
