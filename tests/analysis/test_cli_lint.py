"""The ``repro lint`` CLI subcommand."""

import json

from repro.cli import main


def test_lint_all_builtin_queries_exits_zero(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "linted 6 workflow(s)" in out
    assert "0 at or above error" in out


def test_lint_single_query_json(capsys):
    assert main(["lint", "q1", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out.strip())
    assert payload["ok"] is True
    assert payload["label"] == "q1"
    assert payload["counts"] == {"error": 0, "warning": 0, "hint": 0}


def test_lint_fail_on_warning_is_nonzero(capsys):
    # The combined query legitimately warns (CSM203: the port-traffic
    # node's estimated footprint); error remains the default gate.
    assert main(["lint", "combined"]) == 0
    assert main(["lint", "combined", "--fail-on", "warning"]) == 1
    out = capsys.readouterr().out
    assert "CSM203" in out


def test_lint_json_reports_diagnostics(capsys):
    assert main(
        ["lint", "combined", "--json", "--fail-on", "warning"]
    ) == 1
    payload = json.loads(capsys.readouterr().out.strip())
    codes = [d["code"] for d in payload["diagnostics"]]
    assert "CSM203" in codes
    assert all(d["severity"] != "error" for d in payload["diagnostics"])


def test_lint_generated_seeds(capsys):
    assert main(["lint", "q1", "--generated-seeds", "2"]) == 0
    out = capsys.readouterr().out
    assert "linted 3 workflow(s)" in out


def test_lint_single_seed_reproduces_range_member(capsys):
    """`--seed K` regenerates exactly the workflow `generated-K` of a
    `--generated-seeds` run: per-workflow seeding, no shared stream."""
    assert main(["lint", "--generated-seeds", "3", "--json"]) == 0
    range_reports = {
        payload["label"]: payload
        for payload in map(
            json.loads, capsys.readouterr().out.strip().splitlines()
        )
    }
    assert main(["lint", "--seed", "2", "--json"]) == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert len(out) == 1  # only the requested seed, no registry
    single = json.loads(out[0])
    assert single["label"] == "generated-2"
    assert single["diagnostics"] == (
        range_reports["generated-2"]["diagnostics"]
    )


def test_lint_unknown_query_is_operational_error(capsys):
    assert main(["lint", "nosuch"]) == 2


def test_lint_workload_over_registry(capsys):
    assert main(["lint", "--workload"]) == 0
    out = capsys.readouterr().out
    assert "sharing finding(s)" in out
    assert "CSM402" in out
    assert "shared scan" in out


def test_lint_workload_json_payload(capsys):
    assert main(["lint", "--workload", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out.strip())
    assert payload["ok"] is True
    codes = {d["code"] for d in payload["diagnostics"]}
    assert len(codes) >= 3
    assert all(
        d["estimated_saving"] > 0 for d in payload["diagnostics"]
    )
    assert payload["scan_groups"]


def test_lint_workload_fail_on_warning_catches_subsumption(capsys):
    # combined subsumes escalation: CSM405 is warning-level.
    assert main(
        ["lint", "escalation", "combined", "--fail-on", "warning",
         "--workload"]
    ) == 1
    assert "CSM405" in capsys.readouterr().out


def test_lint_workload_budget_compression(capsys):
    assert main(["lint", "--workload", "--budget", "60"]) == 0
    out = capsys.readouterr().out
    assert "compressed workload: kept" in out
    assert "100% fingerprint coverage" in out


def test_lint_budget_without_workload_is_operational_error(capsys):
    assert main(["lint", "--budget", "5"]) == 2


def test_lint_sarif_output_single_mode(tmp_path, capsys):
    out_path = tmp_path / "lint.sarif.json"
    assert main(["lint", "combined", "--sarif", str(out_path)]) == 0
    capsys.readouterr()
    payload = json.loads(out_path.read_text())
    assert payload["version"] == "2.1.0"
    codes = {r["ruleId"] for r in payload["runs"][0]["results"]}
    assert "CSM203" in codes


def test_lint_sarif_output_workload_mode(tmp_path, capsys):
    out_path = tmp_path / "workload.sarif.json"
    assert main(
        ["lint", "--workload", "--sarif", str(out_path)]
    ) == 0
    capsys.readouterr()
    payload = json.loads(out_path.read_text())
    codes = {r["ruleId"] for r in payload["runs"][0]["results"]}
    # Workload findings and per-workflow findings share one log.
    assert "CSM402" in codes and "CSM203" in codes
