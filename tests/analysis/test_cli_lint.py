"""The ``repro lint`` CLI subcommand."""

import json

from repro.cli import main


def test_lint_all_builtin_queries_exits_zero(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "linted 6 workflow(s)" in out
    assert "0 at or above error" in out


def test_lint_single_query_json(capsys):
    assert main(["lint", "q1", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out.strip())
    assert payload["ok"] is True
    assert payload["label"] == "q1"
    assert payload["counts"] == {"error": 0, "warning": 0, "hint": 0}


def test_lint_fail_on_warning_is_nonzero(capsys):
    # The combined query legitimately warns (CSM203: the port-traffic
    # node's estimated footprint); error remains the default gate.
    assert main(["lint", "combined"]) == 0
    assert main(["lint", "combined", "--fail-on", "warning"]) == 1
    out = capsys.readouterr().out
    assert "CSM203" in out


def test_lint_json_reports_diagnostics(capsys):
    assert main(
        ["lint", "combined", "--json", "--fail-on", "warning"]
    ) == 1
    payload = json.loads(capsys.readouterr().out.strip())
    codes = [d["code"] for d in payload["diagnostics"]]
    assert "CSM203" in codes
    assert all(d["severity"] != "error" for d in payload["diagnostics"])


def test_lint_generated_seeds(capsys):
    assert main(["lint", "q1", "--generated-seeds", "2"]) == 0
    out = capsys.readouterr().out
    assert "linted 3 workflow(s)" in out


def test_lint_unknown_query_is_operational_error(capsys):
    assert main(["lint", "nosuch"]) == 2
