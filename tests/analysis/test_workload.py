"""The workload analyzer: CSM4xx sharing diagnostics + compression.

Mirrors the single-workflow mutant contract: for every CSM4xx code,
:func:`repro.testkit.mutations.workload_mutant` builds a minimal
workload that triggers it and
:func:`repro.testkit.mutations.workload_repaired` a corrected workload
that does not — every cross-workflow rule exercised both ways.
"""

import pytest

from repro.analysis import (
    Severity,
    analyze_workload,
    canonical_diagnostics,
    compress_workload,
    measure_fingerprints,
    schema_fingerprint,
)
from repro.analysis.diagnostics import make
from repro.analysis.workload import (
    DEFAULT_WORKLOAD_DATASET_SIZE,
    WorkloadAnalyzer,
)
from repro.schema.dataset_schema import synthetic_schema
from repro.testkit.mutations import (
    WORKLOAD_MUTANT_CODES,
    _gran,
    _vfield,
    clean_workflow,
    workload_mutant,
    workload_repaired,
)
from repro.workflow.workflow import AggregationWorkflow


# -- fingerprints --------------------------------------------------------


class TestFingerprints:
    def test_schema_fingerprint_is_structural(self, syn_schema):
        other = synthetic_schema(num_dimensions=3, levels=3, fanout=4)
        assert syn_schema is not other
        assert schema_fingerprint(syn_schema) == schema_fingerprint(
            other
        )

    def test_different_shapes_fingerprint_differently(self, syn_schema):
        other = synthetic_schema(num_dimensions=4, levels=3, fanout=4)
        assert schema_fingerprint(syn_schema) != schema_fingerprint(
            other
        )

    def test_renaming_a_measure_keeps_its_fingerprint(self, syn_schema):
        a = AggregationWorkflow(syn_schema, "a")
        a.basic("traffic", _gran(syn_schema, {"d0": 0}),
                agg=("sum", _vfield(syn_schema)))
        b = AggregationWorkflow(syn_schema, "b")
        b.basic("renamed", _gran(syn_schema, {"d0": 0}),
                agg=("sum", _vfield(syn_schema)))
        assert (
            measure_fingerprints(a)["traffic"]
            == measure_fingerprints(b)["renamed"]
        )

    def test_fingerprints_recurse_through_sources(self, syn_schema):
        wf = clean_workflow(syn_schema)
        fps = measure_fingerprints(wf)
        # Different kinds/levels -> all outputs distinct.
        assert len({fps["perCell"], fps["daily"], fps["smooth"]}) == 3

    def test_changing_the_aggregate_changes_the_fingerprint(
        self, syn_schema
    ):
        a = AggregationWorkflow(syn_schema, "a")
        a.basic("m", _gran(syn_schema, {"d0": 0}),
                agg=("sum", _vfield(syn_schema)))
        b = AggregationWorkflow(syn_schema, "b")
        b.basic("m", _gran(syn_schema, {"d0": 0}), agg=("count", "*"))
        assert (
            measure_fingerprints(a)["m"] != measure_fingerprints(b)["m"]
        )


# -- the CSM4xx mutant/repaired contract ---------------------------------


@pytest.mark.parametrize("code", WORKLOAD_MUTANT_CODES)
def test_workload_mutant_triggers_code(code, syn_schema):
    report = analyze_workload(workload_mutant(code, syn_schema))
    assert code in report.codes(), report.format()


@pytest.mark.parametrize("code", WORKLOAD_MUTANT_CODES)
def test_workload_repaired_is_clean_of_code(code, syn_schema):
    report = analyze_workload(workload_repaired(code, syn_schema))
    assert code not in report.codes(), report.format()


@pytest.mark.parametrize("code", WORKLOAD_MUTANT_CODES)
def test_workload_findings_carry_savings(code, syn_schema):
    report = analyze_workload(workload_mutant(code, syn_schema))
    hits = [d for d in report.diagnostics if d.code == code]
    assert hits
    assert all(d.saving is not None and d.saving > 0 for d in hits)


def test_single_workflow_workload_has_no_cross_findings(syn_schema):
    report = analyze_workload({"only": clean_workflow(syn_schema)})
    assert report.diagnostics == []
    assert report.scan_groups == []
    assert report.ok


def test_broken_workflow_is_excluded_not_crashed(syn_schema):
    """A workflow failing single-workflow analysis must not poison the
    cross product — its per-workflow report still surfaces the errors."""
    from repro.testkit.mutations import mutant

    workload = workload_mutant("CSM401", syn_schema)
    workload["broken"] = mutant("CSM001", syn_schema)
    report = analyze_workload(workload)
    assert not report.reports["broken"].ok
    assert not report.ok
    assert "CSM401" in report.codes()  # the live pair still analyzed
    assert not any(
        "broken" in (d.workflow or "") for d in report.diagnostics
    )


def test_subsumption_of_equal_workloads_reported_once(syn_schema):
    """Two identical workloads yield one CSM405 (on the later name),
    not a symmetric pair."""
    a = clean_workflow(syn_schema, "a")
    b = clean_workflow(syn_schema, "b")
    report = analyze_workload({"alpha": a, "beta": b})
    hits = [d for d in report.diagnostics if d.code == "CSM405"]
    assert len(hits) == 1
    assert hits[0].workflow == "beta"
    assert hits[0].related == ("alpha",)


# -- shared scan groups --------------------------------------------------


class TestSharedScanGroups:
    def test_group_shape_and_contract(self, syn_schema):
        workload = workload_mutant("CSM401", syn_schema)
        report = analyze_workload(workload)
        assert len(report.scan_groups) == 1
        group = report.scan_groups[0]
        assert group.workflows == ("a", "b")
        # Serializable, schema-instance-free sort key.
        assert all(
            isinstance(dim, str) and isinstance(dom, str)
            for dim, dom in group.sort_key
        )
        assert group.shared_aggregations >= 1
        assert group.separate_cost > group.shared_cost
        assert group.estimated_saving > 0

    def test_group_to_dict_is_json_ready(self, syn_schema):
        import json

        report = analyze_workload(workload_mutant("CSM402", syn_schema))
        payload = [g.to_dict() for g in report.scan_groups]
        assert json.loads(json.dumps(payload)) == payload

    def test_incompatible_plans_form_no_group(self, syn_schema):
        report = analyze_workload(
            workload_repaired("CSM402", syn_schema)
        )
        assert report.scan_groups == []


# -- report plumbing -----------------------------------------------------


class TestWorkloadReport:
    def test_all_diagnostics_merges_and_orders(self, syn_schema):
        workload = workload_mutant("CSM405", syn_schema)
        report = analyze_workload(workload)
        merged = report.all_diagnostics()
        ranks = [d.severity.rank for d in merged]
        assert ranks == sorted(ranks)
        assert set(report.diagnostics) <= set(merged)

    def test_to_dict_round_trips_through_json(self, syn_schema):
        import json

        report = analyze_workload(workload_mutant("CSM403", syn_schema))
        payload = report.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["ok"] is True  # hints only
        assert payload["estimated_saving"] > 0

    def test_default_dataset_size_used_for_costs(self, syn_schema):
        analyzer = WorkloadAnalyzer()
        assert analyzer.cost_rows == DEFAULT_WORKLOAD_DATASET_SIZE
        sized = WorkloadAnalyzer(dataset_size=500)
        assert sized.cost_rows == 500


# -- canonical ordering (the analyzer-output dedup fix) ------------------


class TestCanonicalDiagnostics:
    def test_duplicates_collapse(self):
        diag = make("CSM301", "same finding", measure="m")
        assert canonical_diagnostics([diag, diag]) == [diag]

    def test_order_is_severity_then_code_then_measure(self):
        hint = make("CSM301", "push it", measure="z")
        warn = make("CSM203", "big footprint", measure="a")
        err = make("CSM001", "dangling", measure="m")
        out = canonical_diagnostics([hint, warn, err])
        assert [d.code for d in out] == ["CSM001", "CSM203", "CSM301"]

    def test_order_is_input_order_independent(self):
        diags = [
            make("CSM301", "a", measure="m1"),
            make("CSM301", "b", measure="m2"),
            make("CSM302", "c", measure="m1"),
        ]
        assert canonical_diagnostics(diags) == canonical_diagnostics(
            list(reversed(diags))
        )

    def test_severities_are_grouped_errors_first(self):
        diags = [
            make("CSM301", "hint"),
            make("CSM001", "error"),
            make("CSM203", "warning"),
        ]
        out = canonical_diagnostics(diags)
        assert [d.severity for d in out] == [
            Severity.ERROR,
            Severity.WARNING,
            Severity.HINT,
        ]


# -- GSUM-style compression ----------------------------------------------


class TestCompressWorkload:
    def _workload(self, schema):
        """Three workflows: two near-duplicates plus one distinct."""
        v = _vfield(schema)
        a = AggregationWorkflow(schema, "a")
        a.basic("x", _gran(schema, {"d0": 0}), agg=("sum", v))
        b = AggregationWorkflow(schema, "b")
        b.basic("y", _gran(schema, {"d0": 0}), agg=("sum", v))
        c = AggregationWorkflow(schema, "c")
        c.basic("z", _gran(schema, {"d1": 0}), agg=("count", "*"))
        return {"a": a, "b": b, "c": c}

    def test_unlimited_budget_reaches_full_coverage(self, syn_schema):
        result = compress_workload(self._workload(syn_schema))
        assert result.coverage == 1.0
        # The duplicate adds no coverage, so greedy never selects it.
        assert len(result.selected) == 2
        assert set(result.selected) | set(result.dropped) == {
            "a", "b", "c",
        }

    def test_budget_is_respected(self, syn_schema):
        workload = self._workload(syn_schema)
        full = compress_workload(workload)
        budget = full.selected_cost / 2
        result = compress_workload(workload, budget)
        assert result.selected_cost <= budget
        assert result.budget == budget

    def test_zero_budget_selects_nothing(self, syn_schema):
        result = compress_workload(self._workload(syn_schema), 0.0)
        assert result.selected == ()
        assert result.coverage == 0.0

    def test_greedy_prefers_coverage_per_cost(self, syn_schema):
        """With room for only part of the workload, the pick maximizes
        marginal fingerprint coverage per unit cost."""
        workload = self._workload(syn_schema)
        full = compress_workload(workload)
        result = compress_workload(
            workload, budget=full.selected_cost
        )
        assert result.coverage == 1.0
        assert result.selected_cost <= full.selected_cost

    def test_to_dict_round_trips_through_json(self, syn_schema):
        import json

        result = compress_workload(self._workload(syn_schema), 10.0)
        payload = result.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        result = compress_workload(self._workload(syn_schema))
        assert result.to_dict()["budget"] is None
