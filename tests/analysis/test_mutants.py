"""Every diagnostic code fires on its mutant and not on its repair.

This is the analyzer's core contract: for each registered ``CSM###``
code, :func:`repro.testkit.mutations.mutant` builds a minimal workflow
that triggers it, and :func:`repro.testkit.mutations.repaired` the
corrected counterpart that does not — every rule exercised both ways.
"""

import pytest

from repro.analysis import CODES, FAMILIES, analyze
from repro.testkit.mutations import (
    MUTANT_CODES,
    WORKLOAD_MUTANT_CODES,
    clean_workflow,
    mutant,
    repaired,
)


def test_mutants_cover_every_registered_code():
    """Single-workflow mutants plus workload mutants cover every code
    (the CSM4xx workload pairs live in tests/analysis/test_workload.py)."""
    assert set(MUTANT_CODES) | set(WORKLOAD_MUTANT_CODES) == set(CODES)


def test_mutants_span_all_families():
    covered = {
        CODES[code].family
        for code in (*MUTANT_CODES, *WORKLOAD_MUTANT_CODES)
    }
    assert covered == set(FAMILIES)


@pytest.mark.parametrize("code", MUTANT_CODES)
def test_mutant_triggers_code(code, syn_schema):
    report = analyze(mutant(code, syn_schema))
    assert code in report.codes(), report.format()


@pytest.mark.parametrize("code", MUTANT_CODES)
def test_repaired_workflow_is_clean_of_code(code, syn_schema):
    report = analyze(repaired(code, syn_schema))
    assert code not in report.codes(), report.format()


@pytest.mark.parametrize("code", MUTANT_CODES)
def test_diagnostics_name_the_workflow(code, syn_schema):
    """Findings carry the workflow name so multi-workflow lints (the
    CLI, CI batches) stay attributable."""
    report = analyze(mutant(code, syn_schema))
    hits = [d for d in report.diagnostics if d.code == code]
    assert hits and all(d.workflow == report.workflow for d in hits)


def test_clean_workflow_has_zero_diagnostics(syn_schema):
    report = analyze(clean_workflow(syn_schema))
    assert report.diagnostics == [], report.format()
    assert report.ok


def test_report_orders_errors_first(syn_schema):
    """A mutant carrying mixed severities reports errors before hints."""
    wf = mutant("CSM101", syn_schema)  # also yields a CSM302 hint
    report = analyze(wf)
    ranks = [d.severity.rank for d in report.diagnostics]
    assert ranks == sorted(ranks)
    assert len({d.code for d in report.diagnostics}) >= 2


def test_report_to_dict_counts(syn_schema):
    report = analyze(mutant("CSM202", syn_schema))
    payload = report.to_dict()
    assert payload["ok"] is True  # warnings only
    assert payload["counts"]["warning"] == len(report.warnings)
    assert [d["code"] for d in payload["diagnostics"]] == [
        d.code for d in report.diagnostics
    ]
