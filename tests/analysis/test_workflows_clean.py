"""Shipped and generated workflows carry no error-level diagnostics.

The analyzer must not cry wolf: every workflow this repository ships —
the built-in paper queries, the example scripts' pipelines, and the
testkit's random workflows — has to pass the same gate the measure
service applies to submitted workflows.
"""

import pytest

from repro.analysis import Severity, analyze
from repro.cli import _QUERIES, _SCHEMAS
from repro.schema.dataset_schema import network_log_schema
from repro.testkit.generator import RandomCase
from repro.workflow.workflow import AggregationWorkflow
from repro.algebra.predicates import Field
from repro.algebra.conditions import Sibling


@pytest.mark.parametrize("name", sorted(_QUERIES))
def test_builtin_query_has_no_errors(name):
    schema_name, builder = _QUERIES[name]
    workflow = builder(_SCHEMAS[schema_name]())
    report = analyze(workflow)
    assert report.ok, report.format()


def _quickstart_workflow(schema):
    """The pipeline built by examples/quickstart.py, verbatim."""
    wf = AggregationWorkflow(schema, name="quickstart")
    wf.basic("Count", {"t": "Hour", "U": "IP"}, agg="count")
    wf.rollup("sCount", {"t": "Hour"}, source="Count",
              where=Field("M") > 5, agg="count")
    wf.rollup("sTraffic", {"t": "Hour"}, source="Count",
              where=Field("M") > 5, agg=("sum", "M"))
    wf.match("avgCount", {"t": "Hour"}, source="sCount",
             cond=Sibling({"t": (0, 5)}), agg="avg")
    wf.combine(
        "ratio", ["avgCount", "sTraffic", "sCount"],
        fn=lambda a, t, c: None,
        fn_name="avg/(traffic/count)", handles_null=True,
    )
    return wf


def test_quickstart_example_has_no_errors():
    report = analyze(_quickstart_workflow(network_log_schema()))
    assert report.ok, report.format()


def test_environmental_sensors_example_has_no_errors():
    """The bespoke workflow of examples/environmental_sensors.py."""
    import os
    import sys

    examples_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        ))),
        "examples",
    )
    sys.path.insert(0, examples_dir)
    try:
        import environmental_sensors as sensors
    finally:
        sys.path.remove(examples_dir)
    schema, __ = sensors.build_schema()
    workflow = sensors.build_workflow(schema)
    report = analyze(workflow)
    assert report.ok, report.format()


@pytest.mark.parametrize("seed", range(10))
def test_generated_workflow_has_no_errors(seed, syn_schema):
    case = RandomCase(seed, syn_schema)
    report = analyze(case.workflow)
    errors = [d for d in report.diagnostics
              if d.severity is Severity.ERROR]
    assert not errors, report.format()
