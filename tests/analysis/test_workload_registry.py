"""The shipped registry, analyzed as one workload (pinned findings).

The acceptance bar for the workload analyzer: over the real query
registry it must (a) keep every family clean at the single-workflow
level, (b) surface at least three distinct CSM4xx sharing codes with
cost-model savings attached, and (c) compress the workload to a subset
that keeps >= 90% fingerprint coverage under a budget below the full
workload cost.  Pinning the exact codes keeps future rule changes
honest: loosening a rule that silently stops firing on the registry
fails here first.
"""

import pytest

from repro.analysis import analyze_workload, compress_workload
from repro.cli import _QUERIES, _SCHEMAS


@pytest.fixture(scope="module")
def registry_workload():
    schemas = {}
    workload = {}
    for name in sorted(_QUERIES):
        schema_name, builder = _QUERIES[name]
        if schema_name not in schemas:
            schemas[schema_name] = _SCHEMAS[schema_name]()
        workload[name] = builder(schemas[schema_name])
    return workload


@pytest.fixture(scope="module")
def registry_report(registry_workload):
    return analyze_workload(registry_workload)


def test_every_registry_workflow_lints_clean_singly(registry_report):
    for name, report in registry_report.reports.items():
        assert report.ok, f"{name}: {report.format()}"


def test_registry_workload_detects_at_least_three_codes(
    registry_report,
):
    assert len(registry_report.codes()) >= 3, registry_report.format()


def test_registry_workload_codes_are_pinned(registry_report):
    """The exact sharing structure of the shipped registry:

    - CSM401: q1/q2 share a base aggregation; combined duplicates
      escalation's and multirecon's sub-aggregations;
    - CSM402/403: the network-family workflows (and q1/q2) share a
      fact scan and benefit from one workload-wide sort order;
    - CSM404: examples' Count is rollup-derivable from the finer
      srcTraffic tables;
    - CSM405: combined subsumes escalation and multirecon outright.
    """
    assert registry_report.codes() == {
        "CSM401", "CSM402", "CSM403", "CSM404", "CSM405",
    }


def test_registry_findings_all_carry_savings(registry_report):
    assert registry_report.diagnostics
    for diag in registry_report.diagnostics:
        assert diag.saving is not None and diag.saving > 0, (
            diag.format()
        )


def test_registry_subsumptions_name_combined(registry_report):
    subsumed = {
        d.workflow
        for d in registry_report.diagnostics
        if d.code == "CSM405"
    }
    assert subsumed == {"escalation", "multirecon"}
    assert all(
        d.related == ("combined",)
        for d in registry_report.diagnostics
        if d.code == "CSM405"
    )


def test_registry_scan_groups_cover_both_schema_families(
    registry_report,
):
    groups = {g.workflows for g in registry_report.scan_groups}
    assert ("q1", "q2") in groups
    assert (
        "combined", "escalation", "examples", "multirecon",
    ) in groups


def test_registry_compresses_to_90_percent_coverage(
    registry_workload,
):
    full = compress_workload(registry_workload)
    assert full.coverage == 1.0
    # A budget below the full workload cost still keeps >= 90% of the
    # distinct fingerprints: the registry overlaps that heavily.
    budget = full.workload_cost * 0.75
    assert budget < full.workload_cost
    result = compress_workload(registry_workload, budget)
    assert result.selected_cost <= budget
    assert result.coverage >= 0.9, result.to_dict()
    assert result.dropped  # something was actually left out
