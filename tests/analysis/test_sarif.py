"""Schema guard for the SARIF 2.1.0 lint export.

CI annotators (GitHub code scanning among them) parse this payload, so
its shape is a compatibility contract: the guard pins the pieces the
SARIF 2.1.0 schema makes mandatory plus the properties our own CI
reads (family, estimated_saving, suggestion).
"""

import json

from repro.analysis import CODES, analyze, diagnostics_to_sarif
from repro.analysis.sarif import SARIF_SCHEMA, SARIF_VERSION
from repro.testkit.mutations import mutant


def _sarif_for(code, schema):
    report = analyze(mutant(code, schema))
    return diagnostics_to_sarif(report.diagnostics), report


class TestSarifEnvelope:
    def test_top_level_shape(self, syn_schema):
        payload, __ = _sarif_for("CSM001", syn_schema)
        assert payload["$schema"] == SARIF_SCHEMA
        assert payload["version"] == SARIF_VERSION
        assert len(payload["runs"]) == 1

    def test_payload_is_json_serializable(self, syn_schema):
        payload, __ = _sarif_for("CSM203", syn_schema)
        assert json.loads(json.dumps(payload)) == payload

    def test_driver_lists_every_registered_rule(self, syn_schema):
        payload, __ = _sarif_for("CSM001", syn_schema)
        driver = payload["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert [r["id"] for r in driver["rules"]] == sorted(CODES)
        for rule in driver["rules"]:
            assert rule["defaultConfiguration"]["level"] in (
                "error", "warning", "note",
            )

    def test_empty_diagnostics_is_a_valid_empty_run(self):
        payload = diagnostics_to_sarif([])
        assert payload["runs"][0]["results"] == []


class TestSarifResults:
    def test_results_reference_rules_by_index(self, syn_schema):
        payload, report = _sarif_for("CSM101", syn_schema)
        run = payload["runs"][0]
        assert len(run["results"]) == len(report.diagnostics)
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_severity_maps_to_sarif_levels(self, syn_schema):
        payload, report = _sarif_for("CSM101", syn_schema)
        by_code = {
            r["ruleId"]: r["level"]
            for r in payload["runs"][0]["results"]
        }
        assert by_code["CSM101"] == "error"

    def test_logical_locations_qualify_workflow_and_measure(
        self, syn_schema
    ):
        payload, report = _sarif_for("CSM101", syn_schema)
        result = next(
            r for r in payload["runs"][0]["results"]
            if r["ruleId"] == "CSM101"
        )
        location = result["locations"][0]["logicalLocations"][0]
        assert location["fullyQualifiedName"] == "csm101::agg"

    def test_properties_carry_family_suggestion_and_saving(
        self, syn_schema
    ):
        from repro.analysis import analyze_workload
        from repro.testkit.mutations import workload_mutant

        report = analyze_workload(workload_mutant("CSM401", syn_schema))
        payload = diagnostics_to_sarif(report.diagnostics)
        result = next(
            r for r in payload["runs"][0]["results"]
            if r["ruleId"] == "CSM401"
        )
        properties = result["properties"]
        assert properties["family"] == "workload"
        assert properties["estimated_saving"] > 0
        assert "suggestion" in properties
