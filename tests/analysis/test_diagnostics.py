"""The diagnostic registry and the Diagnostic value object."""

import pytest

from repro.analysis import CODES, FAMILIES, Severity
from repro.analysis.diagnostics import make


class TestRegistry:
    def test_at_least_twelve_codes(self):
        assert len(CODES) >= 12

    def test_codes_span_all_families(self):
        assert {info.family for info in CODES.values()} == set(
            FAMILIES
        )

    def test_code_blocks_match_families(self):
        """CSM0xx well-formedness, 1xx match, 2xx streaming, 3xx perf,
        4xx workload."""
        block_family = {
            "0": "well-formedness",
            "1": "match-validity",
            "2": "streaming",
            "3": "performance",
            "4": "workload",
        }
        for code, info in CODES.items():
            assert info.code == code
            assert code.startswith("CSM") and len(code) == 6
            assert info.family == block_family[code[3]]

    def test_severity_rank_orders_errors_first(self):
        assert (
            Severity.ERROR.rank
            < Severity.WARNING.rank
            < Severity.HINT.rank
        )

    def test_every_family_has_an_error_or_warning(self):
        """Hints alone cannot carry a family: each family must be able
        to affect an exit code or a service decision."""
        for family in ("well-formedness", "match-validity", "streaming"):
            assert any(
                info.family == family
                and info.severity is not Severity.HINT
                for info in CODES.values()
            )


class TestDiagnostic:
    def test_make_applies_registered_severity(self):
        diag = make("CSM001", "boom", measure="m", workflow="wf")
        assert diag.severity is Severity.ERROR
        assert diag.family == "well-formedness"

    def test_format_includes_code_measure_and_fix(self):
        diag = make(
            "CSM101", "bad rollup", measure="daily",
            suggestion="use broadcast()",
        )
        text = diag.format()
        assert "error CSM101 [daily]: bad rollup" in text
        assert "fix: use broadcast()" in text

    def test_to_dict_shape(self):
        diag = make(
            "CSM204", "conflict", measure="b", workflow="wf",
            related=("a",),
        )
        payload = diag.to_dict()
        assert payload == {
            "code": "CSM204",
            "severity": "warning",
            "family": "streaming",
            "message": "conflict",
            "measure": "b",
            "workflow": "wf",
            "related": ["a"],
        }

    def test_unknown_code_is_a_programming_error(self):
        with pytest.raises(KeyError):
            make("CSM999", "nope")
