"""Contract tests for the public API surface.

These enforce the documentation deliverable mechanically: every name a
package exports via ``__all__`` must exist, and every public class and
function must carry a docstring.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.schema",
    "repro.cube",
    "repro.aggregates",
    "repro.algebra",
    "repro.workflow",
    "repro.engine",
    "repro.optimizer",
    "repro.storage",
    "repro.service",
    "repro.data",
    "repro.queries",
    "repro.bench",
    "repro.obs",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    assert exported, f"{package} should declare __all__"
    for name in exported:
        assert hasattr(module, name), f"{package}.{name} missing"


def _walk_public_modules():
    for info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        leaf = info.name.rsplit(".", 1)[-1]
        if leaf.startswith("_"):
            continue
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [
        module.__name__
        for module in _walk_public_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert missing == []


def test_every_public_class_and_function_documented():
    missing = []
    for module in _walk_public_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-exports documented at their home
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert missing == [], f"undocumented public items: {missing}"


def test_public_methods_documented_on_key_classes():
    from repro import (
        AggregationWorkflow,
        MultiPassEngine,
        PartitionedEngine,
        RelationalEngine,
        SingleScanEngine,
        SortScanEngine,
    )

    missing = []
    for cls in (
        AggregationWorkflow,
        SortScanEngine,
        SingleScanEngine,
        RelationalEngine,
        MultiPassEngine,
        PartitionedEngine,
    ):
        for name, member in vars(cls).items():
            if name.startswith("_") or not callable(member):
                continue
            if not (member.__doc__ or "").strip():
                missing.append(f"{cls.__name__}.{name}")
    assert missing == [], f"undocumented public methods: {missing}"


def test_version_is_exposed():
    assert repro.__version__


def test_error_hierarchy_is_catchable():
    from repro import ReproError, SchemaError, WorkflowError

    assert issubclass(SchemaError, ReproError)
    assert issubclass(WorkflowError, ReproError)
