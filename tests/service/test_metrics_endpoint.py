"""The Prometheus ``/metrics`` route, scraped cold and under load."""

import threading
import urllib.request

import pytest

from repro.obs import reset_registry
from repro.service import MeasureService, MeasureStore, make_server

from tests.service.conftest import make_records


@pytest.fixture()
def service(tmp_path, mergeable_workflow):
    # A fresh registry *before* the service exists: the service binds
    # its cache counters at construction time.
    reset_registry()
    store = MeasureStore(str(tmp_path / "store"))
    svc = MeasureService(store, mergeable_workflow)
    svc.bootstrap(make_records(800, seed=50))
    return svc


@pytest.fixture()
def http(service):
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    yield f"http://127.0.0.1:{port}"
    server.shutdown()
    server.server_close()


def scrape(base_url):
    with urllib.request.urlopen(f"{base_url}/metrics") as response:
        assert response.status == 200
        content_type = response.headers["Content-Type"]
        return response.read().decode("utf-8"), content_type


def metric_value(text, name):
    for line in text.splitlines():
        if line.startswith(f"{name} ") or line.startswith(f"{name}{{"):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"metric {name!r} not in exposition")


class TestScrape:
    def test_content_type_is_prometheus_text(self, http):
        __, content_type = scrape(http)
        assert "text/plain" in content_type
        assert "version=0.0.4" in content_type

    def test_acceptance_metrics_present(self, http, service):
        # Warm the query path so cache counters exist with real values.
        table = service.table("Count")
        key = table.keys()[0]
        service.point("Count", key)
        service.point("Count", key)
        text, __ = scrape(http)
        # Store shape.
        assert metric_value(text, "repro_store_segments") > 0
        assert metric_value(text, "repro_store_generation") == 1
        # Ingest/commit latency histogram (bootstrap committed once).
        assert (
            metric_value(text, "repro_store_commit_seconds_count") >= 1
        )
        # Query cache hit/miss counters.
        assert metric_value(text, "repro_query_cache_misses_total") >= 1
        assert metric_value(text, "repro_query_cache_hits_total") >= 1
        # Engine sort/scan second counters (bootstrap ran the engine).
        assert "# TYPE repro_engine_sort_seconds_total counter" in text
        assert "# TYPE repro_engine_scan_seconds_total counter" in text
        assert metric_value(text, "repro_engine_runs_total") >= 1

    def test_ingest_latency_histogram_filled(self, http, service):
        service.ingest(make_records(100, seed=51))
        text, __ = scrape(http)
        assert metric_value(text, "repro_ingest_batches_total") == 1
        assert metric_value(text, "repro_ingest_records_total") == 100
        assert (
            metric_value(text, "repro_ingest_commit_seconds_count") == 1
        )
        assert 'le="+Inf"' in text

    def test_http_requests_counted_by_route(self, http):
        scrape(http)
        text, __ = scrape(http)
        route_metric = 'repro_http_requests_total{route="/metrics"}'
        assert metric_value(text, route_metric) >= 1


class TestConcurrentScrape:
    def test_metrics_stable_under_ingest_and_query(self, http, service):
        """Scrape /metrics while writers and readers hammer the store."""
        errors = []
        stop = threading.Event()

        def reader():
            try:
                table = service.table("Count")
                keys = table.keys()[:8]
                while not stop.is_set():
                    for key in keys:
                        service.point("Count", key)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def writer():
            try:
                for seed in (52, 53, 54):
                    service.ingest(make_records(60, seed=seed))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=reader),
            threading.Thread(target=reader),
            threading.Thread(target=writer),
        ]
        for thread in threads:
            thread.start()
        try:
            scrapes = [scrape(http)[0] for __ in range(10)]
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert errors == []
        final, __ = scrape(http)
        assert metric_value(final, "repro_ingest_batches_total") == 3
        assert (
            metric_value(final, "repro_ingest_records_total") == 180
        )
        # Every mid-flight scrape was well-formed text exposition.
        for text in scrapes:
            for line in text.strip().splitlines():
                assert line.startswith("#") or " " in line
