"""Shared fixtures for the measure-service tests."""

from __future__ import annotations

import random

import pytest

from repro.workflow.workflow import AggregationWorkflow


@pytest.fixture()
def service_workflow(syn_schema):
    """Distributive + algebraic + holistic + derived measures."""
    wf = AggregationWorkflow(syn_schema, name="service-test")
    wf.basic("Count", {"d0": "d0.L1", "d1": "d1.L1"}, agg="count")
    wf.basic("Total", {"d0": "d0.L1"}, agg=("sum", "v"))
    wf.basic("AvgV", {"d1": "d1.L1"}, agg=("avg", "v"))
    wf.basic("MedV", {"d0": "d0.L1"}, agg=("median", "v"))
    wf.rollup("sCount", {"d0": "d0.L1"}, source="Count", agg="sum")
    return wf


@pytest.fixture()
def mergeable_workflow(syn_schema):
    """No holistic measures: every ingest is fully incremental."""
    wf = AggregationWorkflow(syn_schema, name="mergeable-test")
    wf.basic("Count", {"d0": "d0.L1", "d1": "d1.L1"}, agg="count")
    wf.basic("Total", {"d0": "d0.L1"}, agg=("sum", "v"))
    wf.rollup("sCount", {"d0": "d0.L1"}, source="Count", agg="sum")
    return wf


def make_records(count: int, seed: int) -> list[tuple]:
    """Seeded synthetic records for the 3-dim/64-value schema."""
    rng = random.Random(seed)
    return [
        (
            rng.randrange(64),
            rng.randrange(64),
            rng.randrange(64),
            round(rng.random(), 6),
        )
        for __ in range(count)
    ]
