"""Cluster MANIFEST and ingest-journal durability plumbing."""

import json
import os

import pytest

from repro.errors import ClusterError
from repro.service.cluster import ClusterManifest, IngestJournal, ShardMap
from repro.service.cluster.manifest import JOURNAL_FILE, MANIFEST_FILE


@pytest.fixture()
def shard_map():
    return ShardMap(dim=0, level=1, cuts=(8,), margin=(0, 0))


class TestClusterManifest:
    def test_write_then_load_round_trips(self, tmp_path, shard_map):
        root = str(tmp_path)
        ClusterManifest(
            root, shard_map, epoch=3, generations=[5, 4],
            meta={"note": "x"},
        ).write()
        loaded = ClusterManifest.load(root)
        assert loaded.epoch == 3
        assert loaded.generations == [5, 4]
        assert loaded.shard_map == shard_map
        assert loaded.num_shards == 2
        assert loaded.meta == {"note": "x"}

    def test_missing_manifest_is_a_cluster_error(self, tmp_path):
        with pytest.raises(ClusterError, match="not a cluster"):
            ClusterManifest.load(str(tmp_path))
        assert not ClusterManifest.exists(str(tmp_path))

    def test_unknown_format_is_rejected(self, tmp_path, shard_map):
        root = str(tmp_path)
        ClusterManifest(root, shard_map, 1, [1, 1]).write()
        path = os.path.join(root, MANIFEST_FILE)
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        data["format"] = 99
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(data, fh)
        with pytest.raises(ClusterError, match="format"):
            ClusterManifest.load(root)

    def test_load_discards_a_crashed_swap_temp(self, tmp_path, shard_map):
        root = str(tmp_path)
        ClusterManifest(root, shard_map, 1, [1, 1]).write()
        stale = os.path.join(root, MANIFEST_FILE + ".tmp")
        with open(stale, "w") as fh:
            fh.write("{ torn")
        loaded = ClusterManifest.load(root)
        assert loaded.epoch == 1
        assert not os.path.exists(stale)


class TestIngestJournal:
    def _journal(self, root: str) -> IngestJournal:
        facts = "journal-000002.pkl"
        with open(os.path.join(root, facts), "wb") as fh:
            fh.write(b"delta-bytes")
        return IngestJournal(
            root, epoch=2, expected=[2, 1], baseline=[1, 1],
            facts=facts, records=40,
        )

    def test_absent_journal_loads_as_none(self, tmp_path):
        assert IngestJournal.load(str(tmp_path)) is None

    def test_write_then_load_round_trips(self, tmp_path):
        root = str(tmp_path)
        self._journal(root).write()
        loaded = IngestJournal.load(root)
        assert loaded is not None
        assert loaded.epoch == 2
        assert loaded.expected == [2, 1]
        assert loaded.baseline == [1, 1]
        assert loaded.records == 40
        assert os.path.exists(loaded.facts_path)

    def test_clear_removes_journal_and_facts(self, tmp_path):
        root = str(tmp_path)
        journal = self._journal(root)
        journal.write()
        journal.clear()
        assert IngestJournal.load(root) is None
        assert not os.path.exists(journal.facts_path)
        assert not os.path.exists(os.path.join(root, JOURNAL_FILE))

    def test_clear_is_idempotent(self, tmp_path):
        journal = self._journal(str(tmp_path))
        journal.write()
        journal.clear()
        journal.clear()  # nothing left to remove; must not raise

    def test_load_discards_a_crashed_phase0_temp(self, tmp_path):
        root = str(tmp_path)
        stale = os.path.join(root, JOURNAL_FILE + ".tmp")
        with open(stale, "w") as fh:
            fh.write("{ torn")
        assert IngestJournal.load(root) is None
        assert not os.path.exists(stale)
