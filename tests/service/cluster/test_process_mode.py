"""Process-mode shards: shared-nothing workers, death, and respawn."""

import os

import pytest

from repro.errors import ClusterError
from repro.obs import (
    get_registry,
    get_tracer,
    new_context,
    set_tracing,
    tracing_enabled,
    use_context,
)
from repro.obs.metrics import WORKER_TELEMETRY_DROPPED
from repro.obs.trace import events_for_trace
from repro.service.cluster import bootstrap_cluster, open_cluster

from tests.service.cluster.conftest import reference_tables
from tests.service.conftest import make_records


@pytest.fixture()
def tracing():
    """Tracing on for one test, tracer drained before and after."""
    was = tracing_enabled()
    get_tracer().reset()
    set_tracing(True)
    yield get_tracer()
    set_tracing(was)
    get_tracer().reset()

BASE = 220
DELTA = 40


@pytest.fixture()
def records():
    return make_records(BASE + DELTA, seed=31)


@pytest.fixture()
def cluster(tmp_path, mergeable_cluster_workflow, records):
    cluster = bootstrap_cluster(
        str(tmp_path / "cluster"),
        mergeable_cluster_workflow,
        records[:BASE],
        num_shards=2,
        mode="process",
    )
    yield cluster
    cluster.close()


class TestProcessMode:
    def test_serves_the_same_tables_as_one_shot(
        self, cluster, syn_schema, mergeable_cluster_workflow, records
    ):
        reference = reference_tables(
            syn_schema, mergeable_cluster_workflow, records[:BASE]
        )
        for name in mergeable_cluster_workflow.outputs():
            assert cluster.table(name).equal_rows(reference[name]), name

    def test_two_phase_ingest_spans_worker_processes(
        self, cluster, syn_schema, mergeable_cluster_workflow, records
    ):
        report = cluster.ingest(records[BASE:])
        assert report["epoch"] == 2
        reference = reference_tables(
            syn_schema, mergeable_cluster_workflow, records
        )
        assert cluster.table("Count").equal_rows(reference["Count"])

    def test_killed_worker_is_revived_transparently(
        self, cluster, syn_schema, mergeable_cluster_workflow, records
    ):
        cluster.kill_worker(0)
        # The next call hits the broken pipe, respawns the worker
        # against the same shard directory, and retries.
        reference = reference_tables(
            syn_schema, mergeable_cluster_workflow, records[:BASE]
        )
        assert cluster.table("Total").equal_rows(reference["Total"])
        assert cluster.shards[0].respawns == 1
        assert cluster.shards[0].alive

    def test_replayed_ingest_epoch_is_not_double_applied(
        self, cluster, syn_schema, mergeable_cluster_workflow, records
    ):
        cluster.ingest(records[BASE:])
        reference = reference_tables(
            syn_schema, mergeable_cluster_workflow, records
        )
        assert cluster.table("Total").equal_rows(reference["Total"])
        # Replay the committed epoch-2 delta against shard 0, exactly
        # as the supervisor's retry does when a worker dies after its
        # prepare commit but before replying: the worker's epoch stamp
        # must skip the fold instead of double-counting the records.
        report = cluster.shards[0].call("ingest", records[BASE:], 2)
        assert report["updated_measures"] == []
        assert cluster.table("Total").equal_rows(reference["Total"])
        assert cluster.table("Count").equal_rows(reference["Count"])

    def test_telemetry_pull_absorbs_worker_metrics(self, cluster):
        cluster.table("Count")
        cluster.pull_telemetry()  # must not raise; absorbs into parent

    def test_respawned_worker_rejoins_the_request_trace(
        self, cluster, tracing
    ):
        """A died-and-respawned worker keeps the caller's trace id.

        The retry against the revived worker sends the same context
        meta over the fresh pipe, so the spans it records join the
        original request's trace — the respawn is invisible in the
        trace tree except for the gap it explains.
        """
        dropped = get_registry().counter(
            WORKER_TELEMETRY_DROPPED, labelnames=("shard",)
        )
        before = dict(dropped.dump())
        cluster.kill_worker(0)
        ctx = new_context()
        with use_context(ctx):
            assert cluster.table("Total").rows
        cluster.pull_telemetry()
        events = events_for_trace(tracing.events, ctx.trace_id)
        worker_pids = {
            e["pid"] for e in events if e["pid"] != os.getpid()
        }
        # Both workers — including the respawned shard 0 — recorded
        # spans under the request's trace.
        assert len(worker_pids) == 2
        # The killed worker's unpulled telemetry is counted as lost.
        after = dropped.dump()
        assert after.get(("0",), 0.0) == before.get(("0",), 0.0) + 1.0

    def test_graceful_close_flushes_worker_telemetry(
        self, tmp_path, mergeable_cluster_workflow, records, tracing
    ):
        cluster = bootstrap_cluster(
            str(tmp_path / "flush"),
            mergeable_cluster_workflow,
            records[:60],
            num_shards=2,
            mode="process",
        )
        worker_pids = {shard._proc.pid for shard in cluster.shards}
        cluster.table("Count")
        # No telemetry pull before close: the shutdown reply is the
        # only way these spans can reach the parent process.
        cluster.close()
        seen = {e["pid"] for e in tracing.events}
        assert worker_pids <= seen

    def test_kill_worker_requires_process_mode(
        self, tmp_path, mergeable_cluster_workflow, records
    ):
        local = bootstrap_cluster(
            str(tmp_path / "local"),
            mergeable_cluster_workflow,
            records[:60],
            num_shards=2,
        )
        try:
            with pytest.raises(ClusterError, match="process mode"):
                local.kill_worker(0)
        finally:
            local.close()

    def test_reopen_in_process_mode(
        self, tmp_path, cluster, syn_schema, mergeable_cluster_workflow,
        records,
    ):
        cluster.ingest(records[BASE:])
        cluster.close()
        reopened = open_cluster(
            str(tmp_path / "cluster"), mode="process"
        )
        try:
            assert reopened.epoch == 2
            reference = reference_tables(
                syn_schema, mergeable_cluster_workflow, records
            )
            assert reopened.table("sCount").equal_rows(
                reference["sCount"]
            )
        finally:
            reopened.close()
