"""Shared fixtures for the sharded-cluster tests."""

from __future__ import annotations

import pytest

from repro.engine.sort_scan import SortScanEngine
from repro.storage.table import InMemoryDataset
from repro.workflow.workflow import AggregationWorkflow


@pytest.fixture()
def cluster_workflow(syn_schema):
    """Partitionable mix: distributive, holistic, and a rollup.

    Every measure keeps ``d0`` (the partition dimension) at a non-ALL
    level — the cluster's partitionability requirement.
    """
    wf = AggregationWorkflow(syn_schema, name="cluster-test")
    wf.basic("Count", {"d0": "d0.L1", "d1": "d1.L1"}, agg="count")
    wf.basic("Total", {"d0": "d0.L1"}, agg=("sum", "v"))
    wf.basic("MedV", {"d0": "d0.L1"}, agg=("median", "v"))
    wf.rollup("sCount", {"d0": "d0.L1"}, source="Count", agg="sum")
    return wf


@pytest.fixture()
def mergeable_cluster_workflow(syn_schema):
    """No holistic measures: every cluster ingest is fully incremental."""
    wf = AggregationWorkflow(syn_schema, name="cluster-mergeable")
    wf.basic("Count", {"d0": "d0.L1", "d1": "d1.L1"}, agg="count")
    wf.basic("Total", {"d0": "d0.L1"}, agg=("sum", "v"))
    wf.rollup("sCount", {"d0": "d0.L1"}, source="Count", agg="sum")
    return wf


def reference_tables(schema, workflow, records) -> dict:
    """Uninjected one-shot evaluation: the cluster must match this."""
    return SortScanEngine().evaluate(
        InMemoryDataset(schema, records), workflow
    )
