"""Shard-map routing: cut points, open edges, margins, round-trips."""

import pytest

from repro.engine.compile import compile_workflow
from repro.service.cluster import ShardMap, build_shard_map

from tests.service.conftest import make_records


class TestShardMapOwnership:
    def setup_method(self):
        self.shard_map = ShardMap(
            dim=0, level=1, cuts=(4, 8, 12), margin=(0, 0)
        )

    def test_num_shards_is_cuts_plus_one(self):
        assert self.shard_map.num_shards == 4

    def test_open_outer_edges_route_everything(self):
        # Values far below the first cut and far above the last cut
        # (tail-append records with new time values) still route.
        assert self.shard_map.owner_of_value(-100) == 0
        assert self.shard_map.owner_of_value(0) == 0
        assert self.shard_map.owner_of_value(10_000) == 3

    def test_cut_points_belong_to_the_right_shard(self):
        # Half-open ranges: [cuts[i-1], cuts[i]).
        assert self.shard_map.owner_of_value(3) == 0
        assert self.shard_map.owner_of_value(4) == 1
        assert self.shard_map.owner_of_value(7) == 1
        assert self.shard_map.owner_of_value(8) == 2
        assert self.shard_map.owner_of_value(12) == 3

    def test_exactly_one_owner_per_value(self):
        for value in range(-2, 20):
            owners = [
                index
                for index in range(self.shard_map.num_shards)
                if self.shard_map.owns(index, value)
            ]
            assert owners == [self.shard_map.owner_of_value(value)]

    def test_owned_ranges_tile_the_value_line(self):
        ranges = [
            self.shard_map.owned_range(i)
            for i in range(self.shard_map.num_shards)
        ]
        assert ranges[0] == (None, 4)
        assert ranges[1] == (4, 8)
        assert ranges[2] == (8, 12)
        assert ranges[3] == (12, None)

    def test_zero_margin_readers_are_just_the_owner(self):
        for value in range(-1, 16):
            assert self.shard_map.readers_of_value(value) == [
                self.shard_map.owner_of_value(value)
            ]


class TestShardMapMargins:
    def test_margin_replicates_boundary_values_to_neighbors(self):
        shard_map = ShardMap(
            dim=0, level=1, cuts=(10, 20), margin=(2, 2)
        )
        # 9 is owned by shard 0 but within shard 1's before-margin
        # (lo = 10 - 2 = 8), so both ingest it.
        assert shard_map.readers_of_value(9) == [0, 1]
        # 10 is owned by shard 1 but within shard 0's after-margin
        # (hi = 10 + 2 = 12).
        assert shard_map.readers_of_value(10) == [0, 1]
        # Interior values stay single-homed.
        assert shard_map.readers_of_value(5) == [0]
        assert shard_map.readers_of_value(15) == [1]
        assert shard_map.readers_of_value(25) == [2]

    def test_owner_is_always_a_reader(self):
        shard_map = ShardMap(
            dim=0, level=1, cuts=(5, 9, 13), margin=(3, 1)
        )
        for value in range(-2, 20):
            owner = shard_map.owner_of_value(value)
            assert owner in shard_map.readers_of_value(value)


class TestShardMapSerialization:
    def test_round_trip(self):
        shard_map = ShardMap(
            dim=2, level=1, cuts=(3, 7), margin=(1, 2)
        )
        clone = ShardMap.from_dict(shard_map.to_dict())
        assert clone == shard_map


class TestBuildShardMap:
    @pytest.fixture()
    def graph(self, mergeable_cluster_workflow):
        return compile_workflow(mergeable_cluster_workflow)

    def test_cuts_follow_the_value_distribution(self, graph):
        records = make_records(400, seed=1)
        shard_map = build_shard_map(records=records, graph=graph,
                                    num_shards=4)
        assert shard_map.num_shards == 4
        assert list(shard_map.cuts) == sorted(shard_map.cuts)
        # Partition dimension comes from the default sort key; for
        # this workflow that is d0 at its coarsest used level (L1).
        assert shard_map.dim == 0
        assert shard_map.level == 1

    def test_fewer_distinct_values_than_shards_collapses(self, graph):
        records = [(0, 1, 2, 0.5), (17, 3, 4, 0.25)]
        shard_map = build_shard_map(records=records, graph=graph,
                                    num_shards=8)
        assert shard_map.num_shards <= 2

    def test_explicit_partition_dim_by_name(self, graph):
        records = make_records(100, seed=2)
        shard_map = build_shard_map(
            records=records, graph=graph, num_shards=2,
            partition_dim="d0",
        )
        assert shard_map.dim == 0
