"""The asyncio HTTP front end: routes, error contracts, shutdown.

The front end runs on a private event loop in a background thread;
tests talk to it over real sockets with ``http.client`` so status
codes, JSON bodies, and keep-alive behaviour are exercised end to end.
"""

import base64
import http.client
import json
import pickle
import threading
import urllib.parse

import asyncio

import pytest

from repro.service.cluster import (
    ClusterFrontend,
    TenantManager,
    bootstrap_cluster,
)
from repro.testkit.mutations import mutant

from tests.service.conftest import make_records


class _Running:
    """A frontend serving on a background event loop."""

    def __init__(self, backend, **kwargs):
        self.frontend = ClusterFrontend(backend, port=0, **kwargs)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )
        self.thread.start()
        asyncio.run_coroutine_threadsafe(
            self.frontend.start(), self.loop
        ).result(timeout=10)

    def request(self, method, target, body=None):
        conn = http.client.HTTPConnection(
            self.frontend.host, self.frontend.port, timeout=30
        )
        try:
            payload = (
                json.dumps(body).encode() if body is not None else None
            )
            conn.request(
                method, target, body=payload,
                headers={"Content-Type": "application/json"}
                if payload else {},
            )
            response = conn.getresponse()
            raw = response.read()
            ctype = response.getheader("Content-Type", "")
            data = (
                json.loads(raw) if "json" in ctype else raw.decode()
            )
            return response.status, data
        finally:
            conn.close()

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.frontend.stop(), self.loop
        ).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture()
def served(tmp_path, mergeable_cluster_workflow):
    cluster = bootstrap_cluster(
        str(tmp_path / "cluster"),
        mergeable_cluster_workflow,
        make_records(300, seed=61),
        num_shards=2,
    )
    running = _Running(cluster)
    yield running
    running.stop()


@pytest.fixture()
def tenant_served(tmp_path):
    manager = TenantManager(str(tmp_path / "svc"))
    running = _Running(manager)
    yield running
    running.stop()


def _workflow_body(workflow, **extra):
    return {
        "workflow": base64.b64encode(
            pickle.dumps(workflow)
        ).decode("ascii"),
        **extra,
    }


class TestClusterRoutes:
    def test_healthz(self, served):
        status, health = served.request("GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["fenced"] is False
        assert health["epoch"] >= 1
        assert [s["shard"] for s in health["shards"]] == list(
            range(len(health["shards"]))
        )
        assert all(s["alive"] for s in health["shards"])

    def test_measures_and_stats(self, served):
        status, data = served.request("GET", "/measures")
        assert status == 200
        names = {m["measure"] for m in data["measures"]}
        assert {"Count", "Total", "sCount"} <= names
        status, stats = served.request("GET", "/stats")
        assert status == 200
        assert stats["epoch"] == 1
        assert len(stats["shards"]) == 2

    def test_point_range_table_agree(self, served):
        status, table = served.request("GET", "/table?measure=Total")
        assert status == 200 and table["rows"]
        key, value = table["rows"][0]
        key_param = ",".join(str(part) for part in key)
        status, point = served.request(
            "GET", f"/point?measure=Total&key={key_param}"
        )
        assert status == 200
        assert point["value"] == pytest.approx(value)
        status, ranged = served.request(
            "GET", f"/range?measure=Total&prefix={key_param}"
        )
        assert status == 200
        assert [key, pytest.approx(value)] in [
            [k, pytest.approx(v)] for k, v in ranged["rows"]
        ]

    def test_rollup_route(self, served):
        spec = urllib.parse.quote(json.dumps({"d0": "d0.L2"}))
        status, data = served.request(
            "GET", f"/rollup?measure=Count&spec={spec}&agg=sum"
        )
        assert status == 200
        assert data["rows"]

    def test_ingest_advances_the_epoch(self, served):
        records = [list(r) for r in make_records(40, seed=62)]
        status, report = served.request(
            "POST", "/ingest", body={"records": records}
        )
        assert status == 200
        assert report["epoch"] == 2
        status, stats = served.request("GET", "/stats")
        assert stats["epoch"] == 2

    def test_unknown_route_is_404(self, served):
        status, data = served.request("GET", "/nope")
        assert status == 404
        assert "unknown route" in data["error"]

    def test_unknown_measure_is_404_on_get(self, served):
        status, data = served.request("GET", "/table?measure=Nope")
        assert status == 404
        assert "unknown measure" in data["error"]

    def test_tenants_route_requires_tenant_mode(self, served):
        status, data = served.request("GET", "/tenants")
        assert status == 404
        assert "tenant mode" in data["error"]

    def test_metrics_render_as_prometheus_text(self, served):
        status, text = served.request("GET", "/metrics")
        assert status == 200
        assert isinstance(text, str)
        assert "repro_" in text

    def test_stop_refuses_new_connections(
        self, tmp_path, mergeable_cluster_workflow
    ):
        cluster = bootstrap_cluster(
            str(tmp_path / "c2"),
            mergeable_cluster_workflow,
            make_records(60, seed=63),
            num_shards=1,
        )
        running = _Running(cluster)
        host, port = running.frontend.host, running.frontend.port
        assert running.request("GET", "/healthz")[0] == 200
        running.stop()
        with pytest.raises(OSError):
            conn = http.client.HTTPConnection(host, port, timeout=2)
            conn.request("GET", "/healthz")
            conn.getresponse()


class TestTenantRoutes:
    def test_register_then_serve_a_tenant(
        self, tenant_served, mergeable_cluster_workflow
    ):
        records = [list(r) for r in make_records(120, seed=64)]
        status, data = tenant_served.request(
            "POST", "/workflow?tenant=alpha",
            body=_workflow_body(
                mergeable_cluster_workflow, records=records
            ),
        )
        assert status == 200
        assert data["ok"] is True
        assert data["tenant"] == "alpha"
        assert data["epoch"] == 1
        assert data["estimate"] > 0
        status, data = tenant_served.request("GET", "/tenants")
        assert status == 200 and data == {"tenants": ["alpha"]}
        status, data = tenant_served.request(
            "GET", "/table?measure=Count&tenant=alpha"
        )
        assert status == 200 and data["rows"]

    def test_lint_rejection_is_422_with_diagnostics(
        self, tenant_served, syn_schema
    ):
        status, data = tenant_served.request(
            "POST", "/workflow",
            body=_workflow_body(mutant("CSM101", syn_schema)),
        )
        assert status == 422
        assert "rejected by static analysis" in data["error"]
        assert any(
            d["code"] == "CSM101" for d in data["diagnostics"]
        )

    def test_admission_rejection_is_429_with_payload(
        self, tmp_path, mergeable_cluster_workflow
    ):
        manager = TenantManager(
            str(tmp_path / "tiny"), default_budget=10
        )
        running = _Running(manager)
        try:
            records = [list(r) for r in make_records(200, seed=65)]
            status, data = running.request(
                "POST", "/workflow?tenant=greedy",
                body=_workflow_body(
                    mergeable_cluster_workflow, records=records
                ),
            )
            assert status == 429
            assert data["admission"]["tenant"] == "greedy"
            assert data["admission"]["reason"] == "memory-budget"
            assert data["admission"]["retryable"] is False
            assert data["admission"]["estimate"] > 10
            assert data["admission"]["budget"] == 10
            assert "exceeds the tenant budget" in data["error"]
        finally:
            running.stop()

    def test_tenant_scoped_ingest(
        self, tenant_served, mergeable_cluster_workflow
    ):
        records = [list(r) for r in make_records(100, seed=66)]
        tenant_served.request(
            "POST", "/workflow?tenant=a",
            body=_workflow_body(
                mergeable_cluster_workflow, records=records
            ),
        )
        delta = [list(r) for r in make_records(20, seed=67)]
        status, report = tenant_served.request(
            "POST", "/ingest?tenant=a", body={"records": delta}
        )
        assert status == 200
        assert report["epoch"] == 2

    def test_unknown_tenant_read_is_404(self, tenant_served):
        status, data = tenant_served.request(
            "GET", "/table?measure=Count&tenant=ghost"
        )
        assert status == 404
        assert "unknown tenant" in data["error"]

    def test_malformed_workflow_body_is_400(self, tenant_served):
        status, data = tenant_served.request(
            "POST", "/workflow", body={"workflow": "!!not-base64!!"}
        )
        assert status == 400
        assert "bad request" in data["error"]

    def test_tenant_statusz_reports_workload_sharing(
        self, tenant_served, mergeable_cluster_workflow
    ):
        records = [list(r) for r in make_records(100, seed=68)]
        for tenant in ("alpha", "beta"):
            status, __ = tenant_served.request(
                "POST", f"/workflow?tenant={tenant}",
                body=_workflow_body(
                    mergeable_cluster_workflow, records=records
                ),
            )
            assert status == 200
        status, data = tenant_served.request("GET", "/statusz")
        assert status == 200
        workload = data["workload"]
        assert workload["tenants"] == 2
        # Identical dashboards: beta's workflow is subsumed by alpha's.
        assert "CSM405" in workload["codes"]
        assert workload["estimated_saving"] > 0

    def test_tenant_mode_metrics_pull_worker_telemetry(
        self, tmp_path, mergeable_cluster_workflow, monkeypatch
    ):
        manager = TenantManager(str(tmp_path / "svc"))
        manager.register(
            "alpha", mergeable_cluster_workflow, make_records(80, seed=71)
        )
        pulled = []
        cluster = manager.cluster("alpha")
        monkeypatch.setattr(
            cluster, "pull_telemetry", lambda: pulled.append("alpha")
        )
        running = _Running(manager)
        try:
            status, text = running.request("GET", "/metrics")
            assert status == 200 and "repro_" in text
            assert pulled == ["alpha"]
        finally:
            running.stop()


class TestWorkflowEncoding:
    """Declarative query families and the pickle trust gate."""

    def test_named_query_family_is_accepted(self, tenant_served):
        status, data = tenant_served.request(
            "POST", "/workflow", body={"query": "q1"}
        )
        assert status == 200
        assert data["ok"] is True

    def test_unknown_query_family_is_400(self, tenant_served):
        status, data = tenant_served.request(
            "POST", "/workflow", body={"query": "nope"}
        )
        assert status == 400
        assert "unknown query family" in data["error"]

    def test_missing_query_and_workflow_is_400(self, tenant_served):
        status, data = tenant_served.request(
            "POST", "/workflow", body={}
        )
        assert status == 400
        assert "query" in data["error"]
        assert data["queries"] == sorted(
            ["combined", "escalation", "examples", "multirecon",
             "q1", "q2"]
        )

    def test_pickle_refused_when_gated(
        self, tmp_path, mergeable_cluster_workflow
    ):
        manager = TenantManager(str(tmp_path / "svc"))
        running = _Running(manager, allow_pickle_workflows=False)
        try:
            status, data = running.request(
                "POST", "/workflow",
                body=_workflow_body(mergeable_cluster_workflow),
            )
            assert status == 403
            assert "disabled" in data["error"]
            assert "queries" in data
            # Named families still work on the gated frontend.
            status, data = running.request(
                "POST", "/workflow", body={"query": "q1"}
            )
            assert status == 200 and data["ok"] is True
        finally:
            running.stop()
