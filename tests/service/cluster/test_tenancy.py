"""Tenant isolation and admission control.

The isolation claims under test are structural: tenant namespaces are
separate directories with separate clusters and separate LRU caches,
so one tenant's ingest can never invalidate another's cache, and two
distinct tenant names can never share state on disk.
"""

import json

import pytest

from repro.errors import AdmissionError, ServiceError
from repro.service.cluster import TenantManager
from repro.service.cluster.tenancy import validate_tenant_name

from tests.service.conftest import make_records


@pytest.fixture()
def manager(tmp_path):
    manager = TenantManager(str(tmp_path / "svc"))
    yield manager
    manager.close()


@pytest.fixture()
def two_tenants(manager, mergeable_cluster_workflow):
    manager.register(
        "alpha", mergeable_cluster_workflow, make_records(250, seed=41)
    )
    manager.register(
        "beta", mergeable_cluster_workflow, make_records(250, seed=42)
    )
    return manager


class TestTenantNames:
    @pytest.mark.parametrize(
        "name",
        [
            "",
            "Upper",
            "has space",
            "dot.dot",
            "../escape",
            "a/b",
            "-leading",
            "_leading",
            "x" * 65,
        ],
    )
    def test_unsafe_names_are_rejected_not_mangled(self, name):
        with pytest.raises(ServiceError, match="invalid tenant name"):
            validate_tenant_name(name)

    @pytest.mark.parametrize(
        "name", ["a", "tenant-1", "net_logs", "0abc", "x" * 64]
    )
    def test_safe_names_pass_through_verbatim(self, name):
        assert validate_tenant_name(name) == name

    def test_register_enforces_the_same_rule(
        self, manager, mergeable_cluster_workflow
    ):
        with pytest.raises(ServiceError, match="invalid tenant name"):
            manager.register(
                "../outside",
                mergeable_cluster_workflow,
                make_records(50, seed=1),
            )


class TestNamespaceIsolation:
    def test_tenant_paths_never_collide(self, two_tenants):
        assert two_tenants.tenant_dir("alpha") != two_tenants.tenant_dir(
            "beta"
        )
        assert two_tenants.tenants() == ["alpha", "beta"]

    def test_duplicate_registration_is_rejected(
        self, two_tenants, mergeable_cluster_workflow
    ):
        with pytest.raises(ServiceError, match="already registered"):
            two_tenants.register(
                "alpha",
                mergeable_cluster_workflow,
                make_records(10, seed=5),
            )

    def test_unknown_tenant_is_a_service_error(self, manager):
        with pytest.raises(ServiceError, match="unknown tenant"):
            manager.ingest("ghost", make_records(5, seed=6))

    def test_ingest_into_a_never_invalidates_bs_cache(self, two_tenants):
        beta = two_tenants.cluster("beta")
        key = next(iter(beta.table("Total").items()))[0]
        beta.point("Total", key)  # miss: fills beta's LRU
        warm = beta.stats()
        beta.point("Total", key)
        hit_once = beta.stats()
        assert hit_once["cache_hits"] == warm["cache_hits"] + 1

        two_tenants.ingest("alpha", make_records(60, seed=43))

        beta.point("Total", key)  # must still be a hit, not a miss
        after = beta.stats()
        assert after["cache_hits"] == hit_once["cache_hits"] + 1
        assert after["cache_misses"] == hit_once["cache_misses"]

    def test_ingest_into_a_leaves_bs_tables_untouched(self, two_tenants):
        before = dict(two_tenants.cluster("beta").table("Count").items())
        two_tenants.ingest("alpha", make_records(60, seed=44))
        after = dict(two_tenants.cluster("beta").table("Count").items())
        assert after == before

    def test_reopen_rediscovers_tenants(
        self, tmp_path, two_tenants, mergeable_cluster_workflow
    ):
        expected = dict(
            two_tenants.cluster("alpha").table("Total").items()
        )
        two_tenants.close()
        reopened = TenantManager(str(tmp_path / "svc"))
        try:
            assert reopened.tenants() == ["alpha", "beta"]
            got = dict(reopened.cluster("alpha").table("Total").items())
            assert got == expected
        finally:
            reopened.close()


class TestAdmissionControl:
    def test_workflow_over_budget_is_rejected_up_front(
        self, tmp_path, mergeable_cluster_workflow
    ):
        manager = TenantManager(
            str(tmp_path / "svc"), default_budget=10
        )
        try:
            with pytest.raises(AdmissionError) as excinfo:
                manager.register(
                    "greedy",
                    mergeable_cluster_workflow,
                    make_records(200, seed=45),
                )
        finally:
            manager.close()
        error = excinfo.value
        assert error.reason == "memory-budget"
        assert error.retryable is False
        assert error.details["budget"] == 10
        assert error.details["estimate"] > 10

    def test_429_payload_round_trips_as_json(
        self, tmp_path, mergeable_cluster_workflow
    ):
        manager = TenantManager(
            str(tmp_path / "svc"), default_budget=10
        )
        try:
            with pytest.raises(AdmissionError) as excinfo:
                manager.register(
                    "greedy",
                    mergeable_cluster_workflow,
                    make_records(200, seed=45),
                )
        finally:
            manager.close()
        payload = json.loads(json.dumps(excinfo.value.payload))
        assert payload["admission"]["tenant"] == "greedy"
        assert payload["admission"]["reason"] == "memory-budget"
        assert payload["admission"]["retryable"] is False
        assert "exceeds the tenant budget" in payload["error"]

    def test_ingest_cannot_grow_past_the_budget(self, two_tenants):
        state = two_tenants.get("alpha")
        # Pin the budget at the current footprint: any further growth
        # must now be rejected, and rejected *before* any shard work.
        facts = state.cluster.stats()["facts"]
        state.budget = two_tenants._estimate(
            state.cluster.workflow, facts
        )
        epoch = state.cluster.epoch
        with pytest.raises(AdmissionError) as excinfo:
            two_tenants.ingest("alpha", make_records(5000, seed=46))
        assert excinfo.value.reason == "memory-budget"
        assert state.cluster.epoch == epoch  # nothing was applied

    def test_custom_budget_survives_a_manager_restart(
        self, tmp_path, mergeable_cluster_workflow
    ):
        manager = TenantManager(str(tmp_path / "svc"))
        custom = manager.default_budget * 7
        manager.register(
            "alpha",
            mergeable_cluster_workflow,
            make_records(100, seed=53),
            budget=custom,
        )
        manager.close()
        reopened = TenantManager(str(tmp_path / "svc"))
        try:
            assert reopened.get("alpha").budget == custom
        finally:
            reopened.close()

    def test_budget_check_counts_in_flight_records(self, two_tenants):
        # A concurrent slot holder's uncommitted delta must count
        # against the projection: a delta that fits on its own is over
        # budget while another admitted delta is still in flight.
        state = two_tenants.get("alpha")
        facts = state.cluster.stats()["facts"]
        # Budget sized for facts + 2: tight enough that a handful of
        # pending records pushes the projection over it (the estimate
        # saturates once every group domain is full, so the margins
        # here must stay small).
        state.budget = two_tenants._estimate(
            state.cluster.workflow, facts + 2
        )
        state.pending_records = 6
        epoch = state.cluster.epoch
        try:
            with pytest.raises(AdmissionError) as excinfo:
                two_tenants.ingest("alpha", make_records(2, seed=54))
        finally:
            state.pending_records = 0
        assert excinfo.value.reason == "memory-budget"
        assert state.cluster.epoch == epoch
        # With nothing in flight the same delta is admitted.
        report = two_tenants.ingest("alpha", make_records(2, seed=54))
        assert report["epoch"] == epoch + 1

    def test_slot_exhaustion_rejects_retryably(
        self, tmp_path, mergeable_cluster_workflow
    ):
        manager = TenantManager(
            str(tmp_path / "svc"),
            ingest_slots=1,
            queue_policy="reject",
        )
        try:
            manager.register(
                "a", mergeable_cluster_workflow, make_records(80, seed=47)
            )
            state = manager.get("a")
            assert state.semaphore.acquire(blocking=False)
            try:
                with pytest.raises(AdmissionError) as excinfo:
                    manager.ingest("a", make_records(10, seed=48))
            finally:
                state.semaphore.release()
            assert excinfo.value.reason == "ingest-slots"
            assert excinfo.value.retryable is True
        finally:
            manager.close()

    def test_queue_policy_times_out_rather_than_hanging(
        self, tmp_path, mergeable_cluster_workflow
    ):
        manager = TenantManager(
            str(tmp_path / "svc"),
            ingest_slots=1,
            queue_policy="queue",
            queue_timeout=0.05,
        )
        try:
            manager.register(
                "a", mergeable_cluster_workflow, make_records(80, seed=49)
            )
            state = manager.get("a")
            assert state.semaphore.acquire(blocking=False)
            try:
                with pytest.raises(AdmissionError) as excinfo:
                    manager.ingest("a", make_records(10, seed=50))
            finally:
                state.semaphore.release()
            assert excinfo.value.reason == "queue-timeout"
            assert excinfo.value.retryable is True
        finally:
            manager.close()

    def test_full_queue_is_rejected_immediately(
        self, tmp_path, mergeable_cluster_workflow
    ):
        manager = TenantManager(
            str(tmp_path / "svc"),
            ingest_slots=1,
            queue_policy="queue",
            max_queue_depth=0,
        )
        try:
            manager.register(
                "a", mergeable_cluster_workflow, make_records(80, seed=51)
            )
            state = manager.get("a")
            assert state.semaphore.acquire(blocking=False)
            try:
                with pytest.raises(AdmissionError) as excinfo:
                    manager.ingest("a", make_records(10, seed=52))
            finally:
                state.semaphore.release()
            assert excinfo.value.reason == "queue-depth"
        finally:
            manager.close()

    def test_unknown_queue_policy_is_rejected(self, tmp_path):
        with pytest.raises(ServiceError, match="queue policy"):
            TenantManager(
                str(tmp_path / "svc"), queue_policy="drop"
            )


class TestWorkloadSharingStats:
    """Cross-tenant workload analysis surfaced through ``/statusz``."""

    def test_fewer_than_two_tenants_short_circuits(
        self, manager, mergeable_cluster_workflow
    ):
        empty = manager.workload_sharing_stats()
        assert empty == {
            "tenants": 0,
            "codes": [],
            "estimated_saving": 0.0,
            "diagnostics": [],
            "shared_scan_groups": [],
        }
        manager.register(
            "solo", mergeable_cluster_workflow, make_records(80, seed=48)
        )
        assert manager.workload_sharing_stats()["tenants"] == 1

    def test_duplicate_tenants_are_flagged(self, two_tenants):
        stats = two_tenants.workload_sharing_stats()
        assert stats["tenants"] == 2
        # alpha and beta run the same dashboard: beta is subsumed, and
        # every shared sub-aggregation is reported with a saving.
        assert "CSM405" in stats["codes"]
        assert stats["estimated_saving"] > 0
        subsumed = [
            d for d in stats["diagnostics"] if d["code"] == "CSM405"
        ]
        assert [d["workflow"] for d in subsumed] == ["beta"]
        assert subsumed[0]["related"] == ["alpha"]
        assert stats["shared_scan_groups"]
        group = stats["shared_scan_groups"][0]
        assert group["workflows"] == ["alpha", "beta"]

    def test_stats_payload_is_json_serializable(self, two_tenants):
        stats = two_tenants.workload_sharing_stats()
        assert json.loads(json.dumps(stats)) == stats
