"""Router equivalence: a sharded cluster answers like one service.

Every read the router serves (point, range, table, rollup) must be
indistinguishable from an unsharded one-shot evaluation over the same
records — including holistic measures resolved lazily and rollups
merged from per-shard partials.
"""

import pytest

from repro.errors import ClusterError
from repro.service.cluster import (
    MeasureCluster,
    bootstrap_cluster,
    open_cluster,
)

from tests.service.cluster.conftest import reference_tables
from tests.service.conftest import make_records

BASE = 520
DELTA = 80


@pytest.fixture()
def records():
    return make_records(BASE + DELTA, seed=11)


@pytest.fixture()
def cluster(tmp_path, cluster_workflow, records):
    cluster = bootstrap_cluster(
        str(tmp_path / "cluster"),
        cluster_workflow,
        records[:BASE],
        num_shards=3,
    )
    yield cluster
    cluster.close()


class TestBootstrapEquivalence:
    def test_tables_match_one_shot_evaluation(
        self, cluster, syn_schema, cluster_workflow, records
    ):
        cluster.resolve()
        reference = reference_tables(
            syn_schema, cluster_workflow, records[:BASE]
        )
        for name in cluster_workflow.outputs():
            assert cluster.table(name).equal_rows(reference[name]), name

    def test_points_route_to_the_owning_shard(
        self, cluster, syn_schema, cluster_workflow, records
    ):
        cluster.resolve()
        reference = reference_tables(
            syn_schema, cluster_workflow, records[:BASE]
        )
        for key, value in list(reference["Count"].items())[:25]:
            assert cluster.point("Count", key) == value

    def test_point_on_a_missing_key_returns_the_default(self, cluster):
        cluster.resolve()
        # 999 is far past every cut: routed (open outer edge) to the
        # last shard, which has no such region.
        assert cluster.point("MedV", (999,), default=-1) == -1

    def test_range_merges_disjoint_shard_rows_in_key_order(
        self, cluster, syn_schema, cluster_workflow, records
    ):
        cluster.resolve()
        reference = reference_tables(
            syn_schema, cluster_workflow, records[:BASE]
        )
        rows = cluster.range("Total", ())
        assert [key for key, __ in rows] == sorted(
            key for key, __ in rows
        )
        assert dict(rows) == dict(reference["Total"].items())
        # A prefix pinning the partition dimension goes to one owner.
        some_key = rows[0][0]
        sub = cluster.range("Total", some_key[:1])
        assert dict(sub) == {
            key: value
            for key, value in reference["Total"].items()
            if key[:1] == some_key[:1]
        }

    def test_unknown_measure_is_a_cluster_error(self, cluster):
        with pytest.raises(ClusterError, match="unknown measure"):
            cluster.point("Nope", (0, 0))
        with pytest.raises(ClusterError, match="unknown measure"):
            cluster.table("Nope")


class TestIngestEquivalence:
    def test_tables_match_after_a_two_phase_ingest(
        self, cluster, syn_schema, cluster_workflow, records
    ):
        report = cluster.ingest(records[BASE:])
        assert report["epoch"] == 2
        assert report["records"] == DELTA
        cluster.resolve()
        reference = reference_tables(
            syn_schema, cluster_workflow, records
        )
        for name in cluster_workflow.outputs():
            assert cluster.table(name).equal_rows(reference[name]), name

    def test_epoch_and_stats_advance(self, cluster, records):
        before = cluster.stats()
        cluster.ingest(records[BASE:])
        after = cluster.stats()
        assert after["epoch"] == before["epoch"] + 1
        assert after["facts"] == before["facts"] + DELTA
        assert after["mode"] == "local"
        assert len(after["shards"]) == 3

    def test_reopen_serves_the_committed_state(
        self, tmp_path, cluster, syn_schema, cluster_workflow, records
    ):
        cluster.ingest(records[BASE:])
        cluster.resolve()
        cluster.close()
        reopened = open_cluster(str(tmp_path / "cluster"))
        try:
            assert reopened.epoch == 2
            reference = reference_tables(
                syn_schema, cluster_workflow, records
            )
            assert reopened.table("Count").equal_rows(
                reference["Count"]
            )
        finally:
            reopened.close()


class TestRollup:
    @staticmethod
    def _central(table, spec_levels, agg):
        """Reference rollup computed in one place, no sharding."""
        from repro.aggregates.base import get_aggregate
        from repro.cube.granularity import Granularity

        source = table.granularity
        target = Granularity(source.schema, tuple(spec_levels))
        function = get_aggregate(agg)
        grouped = {}
        for key, value in table.items():
            out = target.generalize_key(key, source)
            state = grouped.get(out)
            if state is None and out not in grouped:
                state = function.create()
            grouped[out] = function.update(state, value)
        return {
            key: function.finalize(state)
            for key, state in grouped.items()
        }

    @pytest.mark.parametrize("agg", ["sum", "count", "min", "max", "avg"])
    def test_rollup_matches_central_reference(
        self, cluster, syn_schema, cluster_workflow, records, agg
    ):
        cluster.resolve()
        reference = reference_tables(
            syn_schema, cluster_workflow, records[:BASE]
        )
        rolled = cluster.rollup("Count", {"d0": "d0.L2"}, agg=agg)
        expected = self._central(
            reference["Count"], rolled.granularity.levels, agg
        )
        assert dict(rolled.items()) == pytest.approx(expected)

    def test_rollup_to_finer_granularity_is_rejected(self, cluster):
        with pytest.raises(ClusterError, match="not coarser"):
            cluster.rollup("Total", {"d0": "d0.L0", "d1": "d1.L0"})


class TestConstruction:
    def test_bootstrap_refuses_an_existing_cluster(
        self, tmp_path, cluster, cluster_workflow, records
    ):
        with pytest.raises(ClusterError, match="already holds"):
            bootstrap_cluster(
                str(tmp_path / "cluster"),
                cluster_workflow,
                records[:10],
                num_shards=2,
            )

    def test_single_shard_cluster_works(
        self, tmp_path, syn_schema, cluster_workflow, records
    ):
        cluster = bootstrap_cluster(
            str(tmp_path / "one"),
            cluster_workflow,
            records[:BASE],
            num_shards=1,
        )
        try:
            cluster.resolve()
            reference = reference_tables(
                syn_schema, cluster_workflow, records[:BASE]
            )
            assert cluster.table("Total").equal_rows(reference["Total"])
        finally:
            cluster.close()

    def test_unknown_mode_is_rejected(
        self, tmp_path, cluster_workflow, records
    ):
        cluster = bootstrap_cluster(
            str(tmp_path / "m"), cluster_workflow, records[:50],
            num_shards=2,
        )
        cluster.close()
        with pytest.raises(ClusterError, match="unknown cluster mode"):
            MeasureCluster(
                str(tmp_path / "m"),
                cluster.manifest,
                cluster_workflow,
                mode="threads",
            )
