"""End-to-end request observability over the sharded front end.

The acceptance bar for the tracing work: a query and an ingest against
a 2-shard *process-mode* cluster must each produce ONE trace tree that
spans the frontend, the router, and both shard worker processes —
reassembled from span/parent ids, not interval containment, because
the spans were recorded in three different address spaces.
"""

import http.client
import json
import threading

import asyncio

import pytest

from repro.obs import (
    get_tracer,
    set_tracing,
    tracing_enabled,
)
from repro.obs.context import parse_traceparent
from repro.obs.trace import span_tree
from repro.service.cluster import bootstrap_cluster
from repro.testkit.failpoints import FailPointError, failpoint

from tests.service.conftest import make_records


class _Running:
    """A frontend on a background loop, with header-level access."""

    def __init__(self, backend, **kwargs):
        from repro.service.cluster import ClusterFrontend

        self.frontend = ClusterFrontend(backend, port=0, **kwargs)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )
        self.thread.start()
        asyncio.run_coroutine_threadsafe(
            self.frontend.start(), self.loop
        ).result(timeout=10)

    def request(self, method, target, body=None, headers=None):
        conn = http.client.HTTPConnection(
            self.frontend.host, self.frontend.port, timeout=60
        )
        try:
            payload = (
                json.dumps(body).encode() if body is not None else None
            )
            sent = dict(headers or {})
            if payload:
                sent.setdefault("Content-Type", "application/json")
            conn.request(method, target, body=payload, headers=sent)
            response = conn.getresponse()
            raw = response.read()
            ctype = response.getheader("Content-Type", "")
            data = (
                json.loads(raw) if "json" in ctype else raw.decode()
            )
            return response.status, data, dict(response.getheaders())
        finally:
            conn.close()

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.frontend.stop(), self.loop
        ).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture(autouse=True)
def _tracer_isolation():
    """Save/restore the process tracing flag, drop recorded events."""
    was = tracing_enabled()
    get_tracer().reset()
    yield
    set_tracing(was)
    get_tracer().reset()


@pytest.fixture()
def served(tmp_path, mergeable_cluster_workflow):
    """A 2-shard process-mode cluster behind a running frontend."""
    set_tracing(True)
    cluster = bootstrap_cluster(
        str(tmp_path / "cluster"),
        mergeable_cluster_workflow,
        make_records(240, seed=81),
        num_shards=2,
        mode="process",
    )
    running = _Running(cluster)
    yield running
    running.stop()


def _tree_pids(node):
    pids = {node["event"]["pid"]}
    for child in node["children"]:
        pids |= _tree_pids(child)
    return pids


def _tree_names(node):
    names = {node["event"]["name"]}
    for child in node["children"]:
        names |= _tree_names(child)
    return names


def _fetch_trace(served, headers):
    traceparent = headers["traceparent"]
    trace_id = parse_traceparent(traceparent).trace_id
    status, data, __ = served.request(
        "GET", f"/debug/trace/{trace_id}"
    )
    assert status == 200, data
    assert data["trace_id"] == trace_id
    return data


class TestTracePropagation:
    def test_query_trace_spans_frontend_router_and_both_workers(
        self, served
    ):
        frontend_pid = __import__("os").getpid()
        status, data, headers = served.request(
            "GET", "/table?measure=Total"
        )
        assert status == 200 and data["rows"]
        trace = _fetch_trace(served, headers)
        roots = span_tree(trace["events"])
        assert len(roots) == 1, [r["event"]["name"] for r in roots]
        (root,) = roots
        assert root["event"]["name"] == "http:/table"
        names = _tree_names(root)
        assert "cluster:table" in names
        assert "shard:table_rows" in names
        pids = _tree_pids(root)
        # Frontend/router process plus BOTH shard worker processes.
        assert frontend_pid in pids
        assert len(pids - {frontend_pid}) == 2
        # The rendered tree nests the shard spans under the router's.
        assert trace["tree"][0].startswith("http:/table")

    def test_ingest_trace_spans_frontend_router_and_both_workers(
        self, served
    ):
        frontend_pid = __import__("os").getpid()
        records = [list(r) for r in make_records(40, seed=82)]
        status, report, headers = served.request(
            "POST", "/ingest", body={"records": records}
        )
        assert status == 200 and report["epoch"] == 2
        trace = _fetch_trace(served, headers)
        roots = span_tree(trace["events"])
        assert len(roots) == 1
        (root,) = roots
        assert root["event"]["name"] == "http:/ingest"
        names = _tree_names(root)
        assert "cluster:ingest" in names
        assert "shard:ingest" in names
        pids = _tree_pids(root)
        assert frontend_pid in pids
        assert len(pids - {frontend_pid}) == 2

    def test_incoming_traceparent_is_continued(self, served):
        upstream_trace = "c0ffee" + "0" * 26
        upstream_span = "dead" + "0" * 12
        status, __, headers = served.request(
            "GET", "/stats",
            headers={
                "traceparent": (
                    f"00-{upstream_trace}-{upstream_span}-01"
                ),
                "X-Request-Id": "req-corr-9",
            },
        )
        assert status == 200
        parsed = parse_traceparent(headers["traceparent"])
        assert parsed.trace_id == upstream_trace
        assert parsed.span_id != upstream_span
        assert headers["X-Request-Id"] == "req-corr-9"

    def test_fresh_request_gets_request_id_and_traceparent(
        self, served
    ):
        status, __, headers = served.request("GET", "/stats")
        assert status == 200
        assert headers["X-Request-Id"]
        assert parse_traceparent(headers["traceparent"]) is not None


class TestStatusEndpoints:
    def test_statusz_shape(self, served):
        status, data, __ = served.request("GET", "/statusz")
        assert status == 200
        assert data["service"] == "repro-cluster-frontend"
        assert data["tracing"] is True
        assert data["uptime_seconds"] >= 0
        assert data["health"]["status"] == "ok"
        assert data["slow_query_threshold_seconds"] > 0
        assert data["slo"]["objectives"]
        assert data["slo"]["windows"]

    def test_debug_trace_unknown_id_is_404(self, served):
        status, data, __ = served.request(
            "GET", "/debug/trace/" + "f" * 32
        )
        assert status == 404
        assert "no recorded events" in data["error"]

    def test_metrics_expose_latency_histogram_and_burn_rate(
        self, served
    ):
        served.request("GET", "/table?measure=Total")
        status, text, __ = served.request("GET", "/metrics")
        assert status == 200
        assert "repro_http_request_seconds_bucket" in text
        assert 'route="/table"' in text
        assert "repro_slo_burn_rate" in text
        assert "repro_shard_op_seconds_bucket" in text

    def test_healthz_turns_503_when_fenced(
        self, tmp_path, mergeable_cluster_workflow
    ):
        cluster = bootstrap_cluster(
            str(tmp_path / "fenceable"),
            mergeable_cluster_workflow,
            make_records(120, seed=83),
            num_shards=2,
        )
        running = _Running(cluster)
        try:
            status, health, __ = running.request("GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
            delta = [list(r) for r in make_records(30, seed=84)]
            with failpoint("cluster.shard-prepare", "raise"):
                status, data, __ = running.request(
                    "POST", "/ingest", body={"records": delta}
                )
            assert status == 500
            status, health, __ = running.request("GET", "/healthz")
            assert status == 503
            assert health["status"] == "fenced"
            assert health["fenced"] is True
            assert health["journal_pending"] is True
        finally:
            # A fenced cluster refuses the final flush; lift the fence
            # so the frontend can drain and stop cleanly.
            try:
                cluster.recover()
            except Exception:
                pass
            running.stop()

    def test_slow_query_log_captures_stage_timings(
        self, tmp_path, mergeable_cluster_workflow
    ):
        set_tracing(True)
        cluster = bootstrap_cluster(
            str(tmp_path / "slow"),
            mergeable_cluster_workflow,
            make_records(120, seed=85),
            num_shards=2,
            mode="process",
        )
        slow_path = str(tmp_path / "slow.log")
        running = _Running(
            cluster,
            slow_query_seconds=0.0,  # every request is "slow"
            slow_query_path=slow_path,
        )
        try:
            status, data, __ = running.request(
                "GET", "/table?measure=Count"
            )
            assert status == 200 and data["rows"]
            status, statusz, __ = running.request("GET", "/statusz")
            entries = [
                e for e in statusz["slow_queries"]
                if e["route"] == "/table"
            ]
            assert entries
            stages = entries[0].get("stages", [])
            assert any(
                s["stage"] == "shard:table_rows" for s in stages
            )
            with open(slow_path, encoding="utf-8") as fh:
                logged = [json.loads(line) for line in fh if line.strip()]
            assert any(e["route"] == "/table" for e in logged)
        finally:
            running.stop()


class TestMetamorphicTelemetry:
    def test_results_identical_with_telemetry_on_and_off(self, served):
        set_tracing(True)
        status, traced, __ = served.request(
            "GET", "/table?measure=Total"
        )
        assert status == 200
        set_tracing(False)
        status, dark, __ = served.request(
            "GET", "/table?measure=Total"
        )
        assert status == 200
        assert traced["rows"] == dark["rows"]
        set_tracing(True)
        status, relit, __ = served.request(
            "GET", "/table?measure=Total"
        )
        assert status == 200
        assert relit["rows"] == traced["rows"]
