"""Two-phase commit recovery: abort at every protocol step, reopen.

These tests abort a cluster ingest *in-process* (fail-point action
``raise``) at each instrumented step of the protocol, then reopen the
directory and assert the recovered cluster is exactly pre- or
post-delta with the journal gone — the same invariant the subprocess
crash sweeper enforces with real ``kill -9`` semantics.
"""

import os

import pytest

from repro.errors import ClusterError
from repro.obs import (
    get_tracer,
    new_context,
    set_tracing,
    tracing_enabled,
    use_context,
)
from repro.obs.trace import events_for_trace
from repro.service.cluster import (
    IngestJournal,
    bootstrap_cluster,
    open_cluster,
)
from repro.service.cluster.manifest import JOURNAL_FILE
from repro.testkit.failpoints import FailPointError, failpoint

from tests.service.cluster.conftest import reference_tables
from tests.service.conftest import make_records

BASE = 260
DELTA = 60


@pytest.fixture()
def records():
    return make_records(BASE + DELTA, seed=23)


@pytest.fixture()
def root(tmp_path, cluster_workflow, records):
    root = str(tmp_path / "cluster")
    bootstrap_cluster(
        root, cluster_workflow, records[:BASE], num_shards=3
    ).close()
    return root


def _abort_ingest(root, records, site):
    cluster = open_cluster(root)
    try:
        with failpoint(site, "raise"), pytest.raises(FailPointError):
            cluster.ingest(records[BASE:])
    finally:
        cluster.close()


def _assert_recovered_post_delta(
    root, syn_schema, cluster_workflow, records
):
    recovered = open_cluster(root)  # journal redo runs here
    try:
        assert recovered.epoch == 2
        assert IngestJournal.load(root) is None
        assert not os.path.exists(os.path.join(root, JOURNAL_FILE))
        recovered.resolve()
        reference = reference_tables(
            syn_schema, cluster_workflow, records
        )
        for name in cluster_workflow.outputs():
            assert recovered.table(name).equal_rows(
                reference[name]
            ), name
    finally:
        recovered.close()


class TestRecoveryAtEveryStep:
    def test_abort_after_journal_write_redoes_every_shard(
        self, root, syn_schema, cluster_workflow, records
    ):
        # The journal is durable before any shard prepares: from that
        # point the ingest survives — recovery redoes it in full.
        _abort_ingest(root, records, "cluster.journal-write")
        assert IngestJournal.load(root) is not None
        _assert_recovered_post_delta(
            root, syn_schema, cluster_workflow, records
        )

    def test_abort_between_shard_prepares_redoes_only_the_rest(
        self, root, syn_schema, cluster_workflow, records
    ):
        # One shard committed its prepare (stamped with epoch 2); the
        # epoch stamp makes the redo skip it — applied exactly once.
        _abort_ingest(root, records, "cluster.shard-prepare")
        _assert_recovered_post_delta(
            root, syn_schema, cluster_workflow, records
        )

    def test_abort_before_manifest_swap_completes_the_swap(
        self, root, syn_schema, cluster_workflow, records
    ):
        # Every shard prepared, the cluster manifest did not swap:
        # recovery skips every shard and just finishes the swap.
        _abort_ingest(root, records, "cluster.manifest-swap")
        _assert_recovered_post_delta(
            root, syn_schema, cluster_workflow, records
        )

    def test_abort_before_journal_cleanup_just_clears_it(
        self, root, syn_schema, cluster_workflow, records
    ):
        # The swap completed; only the journal cleanup was lost.
        _abort_ingest(root, records, "cluster.post-swap")
        journal = IngestJournal.load(root)
        assert journal is not None and journal.epoch == 2
        _assert_recovered_post_delta(
            root, syn_schema, cluster_workflow, records
        )

    def test_recovery_is_idempotent(
        self, root, syn_schema, cluster_workflow, records
    ):
        _abort_ingest(root, records, "cluster.shard-prepare")
        for __ in range(2):  # a second open must be a clean no-op
            _assert_recovered_post_delta(
                root, syn_schema, cluster_workflow, records
            )

    def test_clean_cluster_opens_without_recovery(self, root):
        cluster = open_cluster(root)
        try:
            assert cluster.epoch == 1
        finally:
            cluster.close()


class TestFailedIngestFencing:
    """An aborted ingest fences the cluster until recover().

    Without the fence, shards that prepared the aborted epoch would be
    served next to shards that did not (mixed-epoch reads), and the
    next ingest would reuse the journaled epoch — overwriting
    JOURNAL.json and the facts file, permanently losing the first
    delta on every shard that had not prepared.
    """

    def test_aborted_ingest_fences_until_recover(
        self, root, syn_schema, cluster_workflow, records
    ):
        cluster = open_cluster(root)
        try:
            with failpoint(
                "cluster.shard-prepare", "raise"
            ), pytest.raises(FailPointError):
                cluster.ingest(records[BASE:])
            assert cluster.failed
            journal = IngestJournal.load(root)
            assert journal is not None and journal.epoch == 2

            # Reads and writes both refuse while shards disagree.
            with pytest.raises(ClusterError, match="recover"):
                cluster.table("Count")
            with pytest.raises(ClusterError, match="recover"):
                cluster.ingest(records[BASE:])
            untouched = IngestJournal.load(root)
            assert untouched is not None and untouched.epoch == 2

            # recover() rolls the journal forward in place.
            manifest = cluster.recover()
            assert manifest.epoch == 2
            assert not cluster.failed
            assert IngestJournal.load(root) is None
            cluster.resolve()
            reference = reference_tables(
                syn_schema, cluster_workflow, records
            )
            for name in cluster_workflow.outputs():
                assert cluster.table(name).equal_rows(
                    reference[name]
                ), name

            # The fence is fully lifted: the next ingest commits.
            report = cluster.ingest(make_records(20, seed=99))
            assert report["epoch"] == 3
        finally:
            cluster.close()

    def test_spans_of_a_fenced_then_recovered_ingest_share_a_trace(
        self, root, records
    ):
        """Failure paths must not drop out of the request's trace.

        The aborted ingest's spans, and the recovery that follows,
        both land under the trace id of the request that drove them —
        the trace a responder pulls up IS the incident timeline.
        """
        was_tracing = tracing_enabled()
        set_tracing(True)
        get_tracer().reset()
        cluster = open_cluster(root)
        try:
            ctx = new_context()
            with use_context(ctx):
                with failpoint(
                    "cluster.shard-prepare", "raise"
                ), pytest.raises(FailPointError):
                    cluster.ingest(records[BASE:])
                assert cluster.failed
                cluster.recover()
            events = events_for_trace(
                get_tracer().events, ctx.trace_id
            )
            names = {e["name"] for e in events}
            # The aborted attempt recorded its span before unwinding,
            # and the recovery joined the same trace.
            assert "cluster:ingest" in names
            assert "cluster:recover" in names
        finally:
            set_tracing(was_tracing)
            get_tracer().reset()
            cluster.close()

    def test_uncommitted_journal_blocks_a_fresh_epoch(
        self, root, records
    ):
        # Even a router that never observed the abort (fresh object,
        # cleared flag) must not reuse the journaled epoch: the
        # on-disk journal is authoritative.
        cluster = open_cluster(root)
        try:
            with failpoint(
                "cluster.shard-prepare", "raise"
            ), pytest.raises(FailPointError):
                cluster.ingest(records[BASE:])
            cluster._failed = False  # simulate an unaware router
            with pytest.raises(
                ClusterError, match="uncommitted ingest journal"
            ):
                cluster.ingest(records[BASE:])
            journal = IngestJournal.load(root)
            assert journal is not None and journal.epoch == 2
        finally:
            cluster.close()
