"""Tests for incremental delta ingestion (merge + dirty-region paths)."""

import pytest

from repro.errors import ServiceError
from repro.engine.sort_scan import SortScanEngine
from repro.service.ingest import Ingestor, load_workflow
from repro.service.store import MeasureStore
from repro.storage.table import InMemoryDataset

from tests.service.conftest import make_records


def full_reference(schema, workflow, *batches):
    """One-shot evaluation over the union of all fact batches."""
    records = [record for batch in batches for record in batch]
    return SortScanEngine().evaluate(
        InMemoryDataset(schema, records), workflow
    )


def assert_store_matches(store, workflow, reference) -> None:
    """Every output table in the store equals the reference tables.

    Uses the float-tolerant row comparison: merging partial sums
    associates additions differently than a single sequential fold, so
    values may differ in the last ulp.
    """
    for name in workflow.outputs():
        expected = reference[name]
        got = store.measure_table(name, expected.granularity)
        assert got.equal_rows(expected), f"{name}: {expected.diff(got)}"


class TestBootstrap:
    def test_bootstrap_matches_direct_eval(
        self, tmp_path, syn_schema, service_workflow
    ):
        base = make_records(1500, seed=1)
        store = MeasureStore(str(tmp_path / "store"))
        ingestor = Ingestor(store, service_workflow)
        assert ingestor.bootstrap(base) == 1
        reference = full_reference(syn_schema, service_workflow, base)
        for name in service_workflow.outputs():
            assert store.read_table(name) == dict(reference[name].rows)
        assert store.fact_count() == len(base)
        # Holistic states are never persisted; mergeable ones are.
        assert store.state_nodes() == ["AvgV", "Count", "Total"]

    def test_bootstrap_twice_rejected(
        self, tmp_path, service_workflow
    ):
        store = MeasureStore(str(tmp_path / "store"))
        ingestor = Ingestor(store, service_workflow)
        ingestor.bootstrap(make_records(50, seed=2))
        with pytest.raises(ServiceError, match="not empty"):
            ingestor.bootstrap(make_records(50, seed=3))

    def test_workflow_pickled_for_reopen(
        self, tmp_path, service_workflow
    ):
        store = MeasureStore(str(tmp_path / "store"))
        Ingestor(store, service_workflow).bootstrap(
            make_records(50, seed=4)
        )
        reopened = MeasureStore(store.path)
        assert load_workflow(reopened) is not None
        # Ingestor picks the pickled workflow up automatically.
        assert Ingestor(reopened).workflow.name == service_workflow.name

    def test_missing_workflow_rejected(self, tmp_path):
        with pytest.raises(ServiceError, match="no saved workflow"):
            Ingestor(MeasureStore(str(tmp_path / "store")))


class TestIncrementalIngest:
    def test_ingest_into_empty_store_rejected(
        self, tmp_path, service_workflow
    ):
        store = MeasureStore(str(tmp_path / "store"))
        ingestor = Ingestor(store, service_workflow)
        with pytest.raises(ServiceError, match="bootstrap"):
            ingestor.ingest(make_records(10, seed=5))

    def test_mergeable_measures_update_without_fact_rescan(
        self, tmp_path, syn_schema, mergeable_workflow
    ):
        base = make_records(1200, seed=6)
        delta = make_records(200, seed=7)
        store = MeasureStore(str(tmp_path / "store"))
        ingestor = Ingestor(store, mergeable_workflow)
        ingestor.bootstrap(base)
        report = ingestor.ingest(delta)
        assert report.merged_nodes == ["Count", "Total"]
        assert report.dirty_nodes == []
        assert report.deferred_measures == []
        assert sorted(report.updated_measures) == [
            "Count", "Total", "sCount",
        ]
        reference = full_reference(
            syn_schema, mergeable_workflow, base, delta
        )
        assert_store_matches(store, mergeable_workflow, reference)
        # Nothing dirty: the store is immediately servable.
        assert store.dirty_measures() == set()

    def test_holistic_measures_deferred_then_resolved(
        self, tmp_path, syn_schema, service_workflow
    ):
        base = make_records(1000, seed=8)
        delta = make_records(150, seed=9)
        store = MeasureStore(str(tmp_path / "store"))
        ingestor = Ingestor(store, service_workflow)
        ingestor.bootstrap(base)
        report = ingestor.ingest(delta)
        assert report.dirty_nodes == ["MedV"]
        assert report.deferred_measures == ["MedV"]
        assert "MedV" not in report.updated_measures
        assert store.dirty_measures() == {"MedV"}
        dirty_keys = store.dirty_nodes()["MedV"]
        assert dirty_keys  # exactly the delta's touched regions
        assert ingestor.resolve() is True
        assert store.dirty_measures() == set()
        reference = full_reference(
            syn_schema, service_workflow, base, delta
        )
        assert_store_matches(store, service_workflow, reference)
        assert ingestor.resolve() is False  # nothing left to do

    def test_many_small_deltas_equal_one_shot(
        self, tmp_path, syn_schema, service_workflow
    ):
        base = make_records(800, seed=10)
        deltas = [make_records(60, seed=11 + i) for i in range(4)]
        store = MeasureStore(str(tmp_path / "store"))
        ingestor = Ingestor(store, service_workflow)
        ingestor.bootstrap(base)
        for delta in deltas:
            ingestor.ingest(delta)
        ingestor.resolve()
        reference = full_reference(
            syn_schema, service_workflow, base, *deltas
        )
        assert_store_matches(store, service_workflow, reference)

    def test_crash_mid_ingest_preserves_prior_generation(
        self, tmp_path, syn_schema, mergeable_workflow, monkeypatch
    ):
        base = make_records(500, seed=20)
        delta = make_records(100, seed=21)
        store = MeasureStore(str(tmp_path / "store"))
        ingestor = Ingestor(store, mergeable_workflow)
        ingestor.bootstrap(base)
        before = {
            name: store.read_table(name)
            for name in mergeable_workflow.outputs()
        }

        from repro.service import store as store_module

        def crash(src, dst):
            raise OSError("simulated crash before manifest swap")

        monkeypatch.setattr(store_module.os, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            ingestor.ingest(delta)
        monkeypatch.undo()

        reopened = MeasureStore(store.path)
        assert reopened.generation == 1
        for name, rows in before.items():
            assert reopened.read_table(name) == rows
        # The interrupted delta can be retried cleanly.
        report = Ingestor(reopened, mergeable_workflow).ingest(delta)
        assert report.generation == 2
        reference = full_reference(
            syn_schema, mergeable_workflow, base, delta
        )
        assert_store_matches(reopened, mergeable_workflow, reference)


class TestHyperLogLogIngest:
    def test_sketch_states_merge_instead_of_deferring(
        self, tmp_path, syn_schema
    ):
        from repro.workflow.workflow import AggregationWorkflow

        wf = AggregationWorkflow(syn_schema, name="hll")
        wf.basic(
            "Approx", {"d0": "d0.L1"}, agg=("approx_distinct", "v")
        )
        base = make_records(900, seed=30)
        delta = make_records(150, seed=31)
        store = MeasureStore(str(tmp_path / "store"))
        ingestor = Ingestor(store, wf)
        ingestor.bootstrap(base)
        report = ingestor.ingest(delta)
        # HLL is algebraic: merged, never dirty.
        assert report.merged_nodes == ["Approx"]
        assert report.dirty_nodes == []
        reference = full_reference(syn_schema, wf, base, delta)
        assert_store_matches(store, wf, reference)
