"""Tests for the concurrent query layer and the HTTP front end."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import ServiceError
from repro.engine.sort_scan import SortScanEngine
from repro.service import MeasureService, MeasureStore, make_server
from repro.storage.table import InMemoryDataset

from tests.service.conftest import make_records


@pytest.fixture()
def service(tmp_path, service_workflow):
    store = MeasureStore(str(tmp_path / "store"))
    svc = MeasureService(store, service_workflow)
    svc.bootstrap(make_records(1200, seed=40))
    return svc


class TestReads:
    def test_point_and_cache(self, service):
        table = service.table("Count")
        key = table.keys()[3]
        assert service.point("Count", key) == table[key]
        misses = service.cache_misses
        assert service.point("Count", key) == table[key]
        assert service.cache_hits >= 1
        assert service.cache_misses == misses
        assert service.point("Count", (63, 63, 63), default=-1) == -1

    def test_range_prefix(self, service):
        table = service.table("Count")
        prefix = table.keys()[0][:1]
        rows = service.range("Count", prefix)
        assert rows == [
            (key, value)
            for key, value in table.items()
            if key[:1] == prefix
        ]

    def test_unknown_measure(self, service):
        with pytest.raises(ServiceError, match="unknown measure"):
            service.point("nope", (0, 0, 0))

    def test_rollup_on_read(self, service, syn_schema):
        rolled = service.rollup("Count", {"d0": "d0.L1"}, agg="sum")
        assert dict(rolled.rows) == dict(service.table("sCount").rows)

    def test_rollup_rejects_finer_target(self, service):
        with pytest.raises(ServiceError, match="not coarser"):
            service.rollup(
                "Total", {"d0": "d0.L0", "d1": "d1.L0"}, agg="sum"
            )

    def test_measures_listing(self, service, service_workflow):
        names = [entry["measure"] for entry in service.measures()]
        assert names == sorted(service_workflow.outputs())


class TestIngestIntegration:
    def test_ingest_invalidates_caches(self, service, syn_schema):
        table = service.table("Count")
        key = table.keys()[0]
        service.point("Count", key)
        report = service.ingest(make_records(200, seed=41))
        assert report.generation >= 2
        # Cache was dropped: the next read reflects the new facts.
        fresh = service.table("Count")
        assert service.point("Count", key) == fresh.get(key)

    def test_holistic_read_triggers_lazy_resolution(
        self, service, service_workflow, syn_schema
    ):
        base = make_records(1200, seed=40)
        delta = make_records(150, seed=42)
        service.ingest(delta)
        assert "MedV" in service.store.dirty_measures()
        reference = SortScanEngine().evaluate(
            InMemoryDataset(syn_schema, base + delta), service_workflow
        )
        got = service.table("MedV")  # forces resolution
        assert got.equal_rows(reference["MedV"])
        assert service.store.dirty_measures() == set()

    def test_clean_point_read_skips_resolution(self, service):
        # A tiny delta: most of MedV's 16 regions stay untouched.
        delta = make_records(5, seed=43)
        service.ingest(delta)
        dirty_keys = service.store.dirty_nodes()["MedV"]
        clean_keys = [
            key
            for key, __ in service.store.iter_table("MedV")
            if key not in dirty_keys
        ]
        assert clean_keys, "delta touched every region; rescale test"
        value = service.point("MedV", clean_keys[0])
        assert value is not None
        # Untouched region served from the stored table, no resolve.
        assert "MedV" in service.store.dirty_measures()


class TestConcurrency:
    def test_parallel_reads_with_ingest(self, service, syn_schema):
        errors = []

        def reader():
            try:
                for __ in range(30):
                    table = service.table("Count")
                    if len(table):
                        key = table.keys()[0]
                        service.point("Count", key)
                    service.range("Total", ())
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def writer():
            try:
                for i in range(3):
                    service.ingest(make_records(40, seed=50 + i))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader) for __ in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


class TestHTTPEndpoint:
    @pytest.fixture()
    def http(self, service):
        server = make_server(service, port=0)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        port = server.server_address[1]
        yield f"http://127.0.0.1:{port}"
        server.shutdown()
        server.server_close()

    @staticmethod
    def _get(url):
        with urllib.request.urlopen(url) as response:
            return json.loads(response.read())

    def test_measures_and_stats(self, http):
        payload = self._get(f"{http}/measures")
        names = [e["measure"] for e in payload["measures"]]
        assert "Count" in names
        stats = self._get(f"{http}/stats")
        assert stats["generation"] >= 1 and stats["facts"] > 0

    def test_point_range_table(self, http, service):
        table = service.table("Count")
        key = table.keys()[0]
        key_text = ",".join(str(part) for part in key)
        point = self._get(f"{http}/point?measure=Count&key={key_text}")
        assert point["value"] == table[key]
        rows = self._get(
            f"{http}/range?measure=Count&prefix={key[0]}"
        )["rows"]
        assert [tuple(k) for k, __ in rows] == [
            k for k in table.keys() if k[:1] == key[:1]
        ]
        full = self._get(f"{http}/table?measure=Count")["rows"]
        assert len(full) == len(table)

    def test_error_statuses(self, http):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(f"{http}/point?measure=nope&key=0")
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(f"{http}/point?measure=Count")
        assert excinfo.value.code in (400, 404)

    def test_post_ingest(self, http, service):
        before = service.stats()["facts"]
        records = make_records(25, seed=60)
        body = json.dumps({"records": records}).encode()
        request = urllib.request.Request(
            f"{http}/ingest", data=body, method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            payload = json.loads(response.read())
        assert payload["records"] == 25
        assert service.stats()["facts"] == before + 25

    def test_concurrent_http_queries(self, http, service):
        table = service.table("Count")
        keys = table.keys()[:8]
        errors = []

        def worker(key):
            try:
                key_text = ",".join(str(part) for part in key)
                payload = self._get(
                    f"{http}/point?measure=Count&key={key_text}"
                )
                assert payload["value"] == table[key]
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(key,))
            for key in keys * 3
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    # -- error paths ---------------------------------------------------

    @staticmethod
    def _error_body(excinfo) -> str:
        return json.loads(excinfo.value.read())["error"]

    def test_unknown_measure_is_404_everywhere(self, http):
        for route in ("point?measure=nope&key=0",
                      "range?measure=nope",
                      "table?measure=nope"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(f"{http}/{route}")
            assert excinfo.value.code == 404
            assert "unknown measure" in self._error_body(excinfo)

    def test_malformed_region_key_is_client_error(self, http):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(f"{http}/point?measure=Count&key=one,two")
        assert excinfo.value.code == 404
        assert "malformed region key" in self._error_body(excinfo)

    def test_unknown_route_is_404(self, http):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(f"{http}/frobnicate")
        assert excinfo.value.code == 404
        assert "unknown route" in self._error_body(excinfo)

    def _post(self, url, body: bytes):
        request = urllib.request.Request(
            url, data=body, method="POST",
            headers={"Content-Type": "application/json"},
        )
        return urllib.request.urlopen(request)

    def test_post_ingest_malformed_json_is_400(self, http):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(f"{http}/ingest", b"{not json at all")
        assert excinfo.value.code == 400
        assert "bad ingest body" in self._error_body(excinfo)

    def test_post_ingest_missing_records_is_400(self, http):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(f"{http}/ingest", json.dumps({"rows": []}).encode())
        assert excinfo.value.code == 400
        assert "bad ingest body" in self._error_body(excinfo)

    def test_post_ingest_non_list_records_is_400(self, http):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(
                f"{http}/ingest", json.dumps({"records": 42}).encode()
            )
        assert excinfo.value.code == 400

    def test_post_to_unknown_route_is_404(self, http):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(f"{http}/measures", b"{}")
        assert excinfo.value.code == 404

    def test_query_during_in_flight_ingest(self, http, service):
        # Slow the commit down with the shared ingest fail point, then
        # read over HTTP while the POST is folding: the service lock
        # must serialize them — the read never observes a half-applied
        # delta, whichever side of the commit it lands on.
        from repro.testkit import failpoint

        table = service.table("Count")
        key = table.keys()[0]
        key_text = ",".join(str(part) for part in key)
        url = f"{http}/point?measure=Count&key={key_text}"
        records = make_records(30, seed=77)
        results, errors = [], []

        def writer():
            try:
                with self._post(
                    f"{http}/ingest",
                    json.dumps({"records": records}).encode(),
                ) as response:
                    results.append(json.loads(response.read()))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        before = service.stats()["generation"]
        with failpoint("ingest.fold", "delay:0.4"):
            thread = threading.Thread(target=writer)
            thread.start()
            time.sleep(0.1)  # let the POST reach the armed fold
            payload = self._get(url)
            thread.join(timeout=30)
        assert not thread.is_alive()
        assert errors == []
        assert results and results[0]["records"] == len(records)
        # The read returned a committed value: either the pre-ingest
        # table's, or the post-ingest one recomputed from the store.
        after_table = service.table("Count")
        assert payload["value"] in (table[key], after_table[key])
        assert service.stats()["generation"] == before + 1
