"""Tests for the persistent measure store (segments, commits, crashes)."""

import json
import os

import pytest

from repro.cube.granularity import Granularity
from repro.errors import StorageError
from repro.service.store import (
    INDEX_EVERY,
    MeasureStore,
    StoreSink,
    decode_cell,
    encode_cell,
)
from repro.storage.table import InMemoryDataset


@pytest.fixture()
def gran(syn_schema):
    return Granularity.from_spec(syn_schema, {"d0": "d0.L0"})


@pytest.fixture()
def store(tmp_path):
    return MeasureStore(str(tmp_path / "store"))


class TestCellCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            0,
            3.5,
            True,
            "text",
            (2, 7.5),
            (None, (1, 2)),
            bytearray(b"\x00\xff\x10"),
            [1.5, 2.5],
            {1, 2, 3},
        ],
    )
    def test_round_trip(self, value):
        encoded = json.loads(json.dumps(encode_cell(value)))
        assert decode_cell(encoded) == value

    def test_rejects_unknown_types(self):
        with pytest.raises(StorageError):
            encode_cell(object())


class TestCommitAndRead:
    def test_put_and_read_table(self, store, gran):
        rows = {(i, 0, 0): float(i) for i in range(10)}
        commit = store.begin()
        commit.put_values("m", gran, rows)
        assert commit.commit() == 1
        assert store.measures() == ["m"]
        assert store.read_table("m") == rows
        assert store.levels("m") == tuple(gran.levels)

    def test_point_lookup_spans_index_strides(self, store, gran):
        rows = {(i, i % 7, 0): i * 2 for i in range(INDEX_EVERY * 3 + 5)}
        commit = store.begin()
        commit.put_values("m", gran, rows)
        commit.commit()
        for key in [min(rows), max(rows), (INDEX_EVERY, INDEX_EVERY % 7, 0)]:
            assert store.point("m", key) == rows[key]
        with pytest.raises(KeyError):
            store.point("m", (-1, 0, 0))
        with pytest.raises(KeyError):
            store.point("m", (10, 6, 1))

    def test_prefix_scan(self, store, gran):
        rows = {(a, b, 0): a * 10 + b for a in range(20) for b in range(5)}
        commit = store.begin()
        commit.put_values("m", gran, rows)
        commit.commit()
        got = store.scan_prefix("m", (7,))
        assert got == [((7, b, 0), 70 + b) for b in range(5)]
        assert store.scan_prefix("m", ()) == sorted(rows.items())
        assert store.scan_prefix("m", (99,)) == []

    def test_states_namespace_is_separate(self, store, gran):
        commit = store.begin()
        commit.put_values("m", gran, {(1, 0, 0): 5})
        commit.put_states("m", gran, {(1, 0, 0): (2, 10.0)}, agg_name="avg")
        commit.commit()
        assert store.read_table("m") == {(1, 0, 0): 5}
        assert store.read_table("m", kind="states") == {(1, 0, 0): (2, 10.0)}
        assert store.table_info("m", "states")["agg"] == "avg"

    def test_facts_round_trip(self, store, syn_schema):
        records = [(1, 2, 3, 0.5), (4, 5, 6, 1.5)]
        commit = store.begin()
        commit.append_facts(syn_schema, records)
        commit.commit()
        commit = store.begin()
        commit.append_facts(syn_schema, records)
        commit.commit()
        assert store.fact_count() == 4
        assert list(store.fact_dataset(syn_schema).scan()) == records * 2

    def test_unknown_table_raises(self, store):
        with pytest.raises(StorageError, match="no values table"):
            store.read_table("nope")


class TestCrashSafety:
    def test_staged_but_uncommitted_is_invisible(self, store, gran):
        commit = store.begin()
        commit.put_values("m", gran, {(1, 0, 0): 1})
        commit.commit()
        # Simulate a crash: stage a second commit, never swap the
        # manifest, "restart" by reopening the directory.
        dangling = store.begin()
        dangling.put_values("m", gran, {(1, 0, 0): 999})
        reopened = MeasureStore(store.path)
        assert reopened.generation == 1
        assert reopened.read_table("m") == {(1, 0, 0): 1}

    def test_reopen_garbage_collects_orphans(self, store, gran):
        commit = store.begin()
        commit.put_values("m", gran, {(1, 0, 0): 1})
        commit.commit()
        dangling = store.begin()
        dangling.put_values("m", gran, {(1, 0, 0): 999})
        before = set(os.listdir(store._segment_dir))
        reopened = MeasureStore(store.path)
        after = set(os.listdir(reopened._segment_dir))
        assert after < before
        assert after == reopened._referenced_files()

    def test_abort_removes_staged_files(self, store, gran):
        commit = store.begin()
        commit.put_values("m", gran, {(1, 0, 0): 1})
        commit.abort()
        assert store.is_empty()
        assert os.listdir(store._segment_dir) == []

    def test_replaced_segments_are_deleted(self, store, gran):
        first = store.begin()
        first.put_values("m", gran, {(1, 0, 0): 1})
        first.commit()
        second = store.begin()
        second.put_values("m", gran, {(1, 0, 0): 2})
        second.commit()
        files = set(os.listdir(store._segment_dir))
        assert files == store._referenced_files()
        assert store.read_table("m") == {(1, 0, 0): 2}

    def test_commit_object_is_single_use(self, store, gran):
        commit = store.begin()
        commit.put_values("m", gran, {(1, 0, 0): 1})
        commit.commit()
        with pytest.raises(StorageError, match="already finished"):
            commit.commit()

    def test_format_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "store")
        store = MeasureStore(path)
        commit = store.begin()
        commit.update_meta({"x": 1})
        commit.commit()
        manifest = os.path.join(path, "MANIFEST.json")
        with open(manifest) as fh:
            data = json.load(fh)
        data["format"] = 99
        with open(manifest, "w") as fh:
            json.dump(data, fh)
        with pytest.raises(StorageError, match="format"):
            MeasureStore(path)


class TestDirtyBookkeeping:
    def test_dirty_nodes_merge_and_clear(self, store):
        commit = store.begin()
        commit.mark_dirty("h", [(1, 0, 0)])
        commit.commit()
        commit = store.begin()
        commit.mark_dirty("h", [(2, 0, 0)])
        commit.mark_measure_dirty("out")
        commit.commit()
        assert store.dirty_nodes() == {"h": {(1, 0, 0), (2, 0, 0)}}
        assert store.dirty_measures() == {"out"}
        commit = store.begin()
        commit.clear_dirty()
        commit.commit()
        assert store.dirty_nodes() == {}
        assert store.dirty_measures() == set()

    def test_all_dirty_swallows_keys(self, store):
        commit = store.begin()
        commit.mark_dirty("h", None)
        commit.mark_dirty("h", [(1, 0, 0)])
        commit.commit()
        assert store.dirty_nodes() == {"h": None}


class TestStoreSink:
    def test_engine_run_lands_in_store(self, store, syn_schema):
        from repro.engine.sort_scan import SortScanEngine
        from repro.workflow.workflow import AggregationWorkflow

        wf = AggregationWorkflow(syn_schema, name="sinked")
        wf.basic("Count", {"d0": "d0.L1"}, agg="count")
        dataset = InMemoryDataset(
            syn_schema, [(i % 64, 0, 0, 1.0) for i in range(100)]
        )
        sink = StoreSink(store)
        result = SortScanEngine().evaluate(dataset, wf, sink=sink)
        assert sink.committed_generation == 1
        assert store.read_table("Count") == dict(result["Count"].rows)

    def test_autocommit_off_stages_nothing(self, store, syn_schema):
        from repro.engine.sort_scan import SortScanEngine
        from repro.workflow.workflow import AggregationWorkflow

        wf = AggregationWorkflow(syn_schema, name="staged")
        wf.basic("Count", {"d0": "d0.L1"}, agg="count")
        dataset = InMemoryDataset(syn_schema, [(0, 0, 0, 1.0)])
        sink = StoreSink(store, autocommit=False)
        SortScanEngine().evaluate(dataset, wf, sink=sink)
        assert store.is_empty()
        commit = store.begin()
        sink.stage_into(commit)
        commit.commit()
        assert store.measures() == ["Count"]
