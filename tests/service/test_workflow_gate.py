"""The measure service rejects workflows with error-level diagnostics.

Workflows reach the service over the wire (pickled at bootstrap, or
POSTed to ``/workflow``), bypassing the builder's incremental checks —
the static analyzer is the submit/ingest gate, and its findings must
come back in the HTTP error body.
"""

import base64
import json
import pickle
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import ServiceError
from repro.service import MeasureService, MeasureStore, make_server
from repro.service.ingest import Ingestor
from repro.testkit.mutations import clean_workflow, mutant

from tests.service.conftest import make_records


class TestIngestorGate:
    def test_rejects_error_level_workflow(self, tmp_path, syn_schema):
        store = MeasureStore(str(tmp_path / "store"))
        with pytest.raises(
            ServiceError, match="rejected by static analysis"
        ) as excinfo:
            Ingestor(store, mutant("CSM105", syn_schema))
        codes = [d.code for d in excinfo.value.diagnostics]
        assert "CSM105" in codes

    def test_service_construction_rejects_too(
        self, tmp_path, syn_schema
    ):
        store = MeasureStore(str(tmp_path / "store"))
        with pytest.raises(ServiceError, match="CSM101"):
            MeasureService(store, mutant("CSM101", syn_schema))

    def test_accepts_clean_workflow(self, tmp_path, syn_schema):
        store = MeasureStore(str(tmp_path / "store"))
        service = MeasureService(store, clean_workflow(syn_schema))
        service.bootstrap(make_records(300, seed=7))
        assert service.table("perCell")

    def test_warnings_are_not_rejected(self, tmp_path, syn_schema):
        # CSM202's mutant is warning-level: disjoint-dimension basics
        # stream badly but compute correctly, so the service serves it.
        store = MeasureStore(str(tmp_path / "store"))
        service = MeasureService(store, mutant("CSM202", syn_schema))
        service.bootstrap(make_records(300, seed=8))
        assert service.table("byd0")


class TestHTTPWorkflowRoute:
    @pytest.fixture()
    def http(self, tmp_path, syn_schema):
        store = MeasureStore(str(tmp_path / "store"))
        service = MeasureService(store, clean_workflow(syn_schema))
        service.bootstrap(make_records(300, seed=9))
        server = make_server(service, port=0)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        port = server.server_address[1]
        yield f"http://127.0.0.1:{port}"
        server.shutdown()
        server.server_close()

    @staticmethod
    def _post_workflow(base_url, workflow):
        body = json.dumps({
            "workflow": base64.b64encode(
                pickle.dumps(workflow)
            ).decode("ascii"),
        }).encode("utf-8")
        request = urllib.request.Request(
            f"{base_url}/workflow", data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())

    def test_invalid_submission_is_422_with_diagnostics(
        self, http, syn_schema
    ):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post_workflow(http, mutant("CSM101", syn_schema))
        assert excinfo.value.code == 422
        payload = json.loads(excinfo.value.read())
        assert "rejected by static analysis" in payload["error"]
        errors = [
            d for d in payload["diagnostics"]
            if d["severity"] == "error"
        ]
        assert [d["code"] for d in errors] == ["CSM101"]
        assert errors[0]["measure"] == "agg"
        assert "fix" not in errors[0]  # suggestion rides its own key
        assert errors[0]["suggestion"]

    def test_clean_submission_is_accepted(self, http, syn_schema):
        status, payload = self._post_workflow(
            http, clean_workflow(syn_schema)
        )
        assert status == 200
        assert payload["ok"] is True
        assert payload["counts"]["error"] == 0

    def test_malformed_submission_is_400(self, http):
        body = json.dumps({"workflow": "!!not-base64!!"}).encode()
        request = urllib.request.Request(
            f"{http}/workflow", data=body,
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        assert "bad workflow body" in json.loads(
            excinfo.value.read()
        )["error"]

    @staticmethod
    def _post_json(base_url, body):
        request = urllib.request.Request(
            f"{base_url}/workflow",
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())

    def test_named_query_family_is_accepted(self, http):
        status, payload = self._post_json(http, {"query": "q1"})
        assert status == 200
        assert payload["ok"] is True

    def test_pickle_refused_when_gated(self, tmp_path, syn_schema):
        store = MeasureStore(str(tmp_path / "gated"))
        service = MeasureService(store, clean_workflow(syn_schema))
        service.bootstrap(make_records(100, seed=10))
        server = make_server(
            service, port=0, allow_pickle_workflows=False
        )
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._post_workflow(base, clean_workflow(syn_schema))
            assert excinfo.value.code == 403
            payload = json.loads(excinfo.value.read())
            assert "disabled" in payload["error"]
            assert "queries" in payload
            # Named families remain available on the gated server.
            status, payload = self._post_json(base, {"query": "q1"})
            assert status == 200 and payload["ok"] is True
        finally:
            server.shutdown()
            server.server_close()
