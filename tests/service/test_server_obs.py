"""Observability routes and headers on the legacy threaded server."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import get_tracer, set_tracing, tracing_enabled
from repro.obs.context import parse_traceparent
from repro.service import MeasureService, MeasureStore, make_server
from repro.service.server import shutdown_gracefully

from tests.service.conftest import make_records


@pytest.fixture(autouse=True)
def _tracer_isolation():
    was = tracing_enabled()
    get_tracer().reset()
    yield
    set_tracing(was)
    get_tracer().reset()


@pytest.fixture()
def served(tmp_path, service_workflow):
    store = MeasureStore(str(tmp_path / "store"))
    svc = MeasureService(store, service_workflow)
    svc.bootstrap(make_records(600, seed=51))
    server = make_server(
        svc,
        port=0,
        access_log_path=str(tmp_path / "access.log"),
        slow_query_path=str(tmp_path / "slow.log"),
        slow_query_seconds=0.0,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    yield f"http://127.0.0.1:{port}", str(tmp_path / "access.log")
    shutdown_gracefully(server)
    server.server_close()


def _get(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request) as response:
            return (
                response.status,
                json.loads(response.read()),
                dict(response.headers),
            )
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


class TestHealthAndStatus:
    def test_healthz_reports_store_facts(self, served):
        url, __ = served
        status, health, __ = _get(f"{url}/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["generation"] >= 1
        assert health["facts"] > 0
        assert health["uptime_seconds"] >= 0

    def test_statusz_shape(self, served):
        url, __ = served
        status, data, __ = _get(f"{url}/statusz")
        assert status == 200
        assert data["service"] == "repro-measure-service"
        assert "tracing" in data
        assert data["stats"]["generation"] >= 1
        assert data["slow_query_threshold_seconds"] == 0.0
        assert data["slo"]["objectives"]


class TestTraceHeaders:
    def test_every_response_carries_correlation_headers(self, served):
        url, __ = served
        status, __, headers = _get(f"{url}/stats")
        assert status == 200
        assert headers["X-Request-Id"]
        assert parse_traceparent(headers["traceparent"]) is not None

    def test_incoming_trace_and_request_id_are_honored(self, served):
        url, __ = served
        trace_id = "ab" * 16
        span_id = "cd" * 8
        status, __, headers = _get(
            f"{url}/stats",
            headers={
                "traceparent": f"00-{trace_id}-{span_id}-01",
                "X-Request-Id": "req-legacy-1",
            },
        )
        assert status == 200
        parsed = parse_traceparent(headers["traceparent"])
        assert parsed.trace_id == trace_id
        assert parsed.span_id != span_id
        assert headers["X-Request-Id"] == "req-legacy-1"

    def test_debug_trace_returns_the_request_tree(self, served):
        url, __ = served
        set_tracing(True)
        status, __, headers = _get(f"{url}/measures")
        assert status == 200
        trace_id = parse_traceparent(headers["traceparent"]).trace_id
        status, data, __ = _get(f"{url}/debug/trace/{trace_id}")
        assert status == 200
        assert data["trace_id"] == trace_id
        assert data["tree"][0].startswith("http:/measures")

    def test_debug_trace_unknown_id_is_404(self, served):
        url, __ = served
        status, data, __ = _get(f"{url}/debug/trace/" + "e" * 32)
        assert status == 404
        assert "no recorded events" in data["error"]


class TestAccessLog:
    def test_requests_append_structured_entries(self, served):
        url, access_path = served
        _get(f"{url}/stats")
        _get(f"{url}/nope")
        with open(access_path, encoding="utf-8") as fh:
            entries = [json.loads(line) for line in fh if line.strip()]
        by_route = {entry["route"]: entry for entry in entries}
        assert by_route["/stats"]["status"] == 200
        assert by_route["/stats"]["method"] == "GET"
        assert by_route["/stats"]["request_id"]
        assert by_route["/stats"]["duration_ms"] >= 0
        assert by_route["/nope"]["status"] == 404

    def test_metrics_include_latency_histogram_and_slo(self, served):
        url, __ = served
        _get(f"{url}/stats")
        with urllib.request.urlopen(f"{url}/metrics") as response:
            text = response.read().decode()
        assert "repro_http_request_seconds_bucket" in text
        assert "repro_slo_burn_rate" in text
