"""Graceful teardown of the threaded HTTP front end.

The guarantees under test: handler sockets carry a timeout (a stalled
client cannot pin a thread forever), shutdown drains rather than
abandons, and the post-drain resolve leaves the on-disk MANIFEST
final — a restarted server recomputes nothing.
"""

import json
import socket
import threading
import urllib.request

import pytest

from repro.service import MeasureService, MeasureStore, make_server
from repro.service.server import (
    ServiceHTTPServer,
    _ServiceHandler,
    shutdown_gracefully,
)

from tests.service.conftest import make_records


@pytest.fixture()
def service(tmp_path, service_workflow):
    store = MeasureStore(str(tmp_path / "store"))
    svc = MeasureService(store, service_workflow)
    svc.bootstrap(make_records(400, seed=71))
    return svc


class TestTimeouts:
    def test_handler_sockets_carry_a_timeout(self):
        # BaseHTTPRequestHandler applies ``timeout`` to every accepted
        # connection; None would let one silent client hold a
        # non-daemonic thread across shutdown forever.
        assert _ServiceHandler.timeout == 30.0

    def test_accept_loop_polls_so_shutdown_is_prompt(self):
        assert ServiceHTTPServer.timeout == 5.0
        assert ServiceHTTPServer.block_on_close is True
        assert ServiceHTTPServer.daemon_threads is False


class TestGracefulShutdown:
    def test_drains_resolves_and_stops_accepting(self, service):
        server = make_server(service)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever)
        thread.start()
        try:
            # Leave deferred holistic work pending, then ingest so the
            # store holds dirty measures at shutdown time.
            service.ingest(make_records(50, seed=72))
            assert service.store.dirty_measures()
            with urllib.request.urlopen(
                f"http://{host}:{port}/stats", timeout=10
            ) as response:
                assert json.loads(response.read())["generation"] >= 2
        finally:
            shutdown_gracefully(server)
            thread.join(timeout=30)
        assert not thread.is_alive()
        # The post-drain resolve finalized the MANIFEST on disk.
        assert not service.store.dirty_measures()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2).close()

    def test_idle_keepalive_connection_does_not_block_drain(
        self, service, monkeypatch
    ):
        # A client that connects and then goes silent parks its handler
        # thread in a *timed* read; once that timeout fires, the drain
        # completes.  Shrink the timeout so the test proves the bound
        # without waiting out the production 30s.
        monkeypatch.setattr(_ServiceHandler, "timeout", 0.5)
        server = make_server(service)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever)
        thread.start()
        idle = socket.create_connection((host, port), timeout=5)
        try:
            shutdown_gracefully(server)
            thread.join(timeout=30)
            assert not thread.is_alive()
        finally:
            idle.close()
