"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def honeynet_file(tmp_path):
    path = str(tmp_path / "trace.bin")
    code = main(
        [
            "generate",
            "--kind",
            "honeynet",
            "--records",
            "2000",
            "--out",
            path,
        ]
    )
    assert code == 0
    return path


@pytest.fixture()
def synthetic_file(tmp_path):
    path = str(tmp_path / "syn.bin")
    assert (
        main(
            [
                "generate",
                "--kind",
                "synthetic",
                "--records",
                "2000",
                "--out",
                path,
            ]
        )
        == 0
    )
    return path


class TestGenerate:
    def test_generate_binary(self, tmp_path, capsys):
        path = str(tmp_path / "out.bin")
        code = main(
            [
                "generate",
                "--kind",
                "honeynet",
                "--records",
                "500",
                "--out",
                path,
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "wrote" in err and "out.bin" in err

    def test_generate_csv(self, tmp_path, capsys):
        path = str(tmp_path / "data.csv")
        assert (
            main(
                [
                    "generate",
                    "--kind",
                    "netlog",
                    "--records",
                    "100",
                    "--format",
                    "csv",
                    "--out",
                    path,
                ]
            )
            == 0
        )
        header = open(path).readline()
        assert header.startswith("Timestamp,")

    def test_bad_output_path(self, capsys):
        code = main(
            [
                "generate",
                "--kind",
                "synthetic",
                "--records",
                "10",
                "--out",
                "/nonexistent/dir/x.bin",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_run_escalation(self, honeynet_file, capsys):
        code = main(
            [
                "run",
                "--query",
                "escalation",
                "--data",
                honeynet_file,
                "--limit",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "traffic" in out
        assert "engine=sort-scan" in out

    @pytest.mark.parametrize(
        "engine",
        ["relational", "singlescan", "multipass", "partitioned"],
    )
    def test_run_engines(self, synthetic_file, engine, capsys):
        code = main(
            [
                "run",
                "--query",
                "q2",
                "--data",
                synthetic_file,
                "--engine",
                engine,
            ]
        )
        assert code == 0
        assert "rows=" in capsys.readouterr().out

    def test_run_selected_measures(self, honeynet_file, capsys):
        code = main(
            [
                "run",
                "--query",
                "multirecon",
                "--data",
                honeynet_file,
                "--measures",
                "reconAlerts",
                "nosuch",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "reconAlerts" in captured.out
        assert "nosuch" in captured.err

    def test_run_missing_file(self, capsys):
        code = main(
            ["run", "--query", "q1", "--data", "/nope.bin"]
        )
        assert code == 2


class TestExplain:
    @pytest.mark.parametrize(
        "show,needle",
        [
            ("algebra", "g[("),
            ("sql", "LEFT OUTER JOIN"),
            ("graph", "BasicNode"),
            ("plan", "sort key"),
            ("dot", "digraph"),
        ],
    )
    def test_explain_modes(self, show, needle, capsys):
        code = main(
            ["explain", "--query", "combined", "--show", show]
        )
        assert code == 0
        assert needle in capsys.readouterr().out


class TestBench:
    def test_bench_figure(self, capsys):
        code = main(["bench", "--figure", "fig7a", "--scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig7a" in out and "SortScan" in out


def test_module_entry_point():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0
    assert "generate" in proc.stdout


class TestExplainCost:
    def test_cost_mode_reports_fused_advantage(self, capsys):
        code = main(
            [
                "explain",
                "--query",
                "combined",
                "--show",
                "cost",
                "--rows",
                "100000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fused sort/scan plan" in out
        assert "per-measure relational" in out
        assert "advantage" in out


class TestServiceCommands:
    @pytest.fixture()
    def delta_file(self, tmp_path):
        path = str(tmp_path / "delta.bin")
        assert (
            main(
                [
                    "generate",
                    "--kind",
                    "honeynet",
                    "--records",
                    "300",
                    "--seed",
                    "9",
                    "--out",
                    path,
                ]
            )
            == 0
        )
        return path

    @pytest.fixture()
    def store_dir(self, tmp_path, honeynet_file):
        path = str(tmp_path / "store")
        code = main(
            [
                "ingest",
                "--store",
                path,
                "--data",
                honeynet_file,
                "--query",
                "escalation",
            ]
        )
        assert code == 0
        return path

    def test_bootstrap_then_delta_ingest(
        self, store_dir, delta_file, capsys
    ):
        capsys.readouterr()
        code = main(
            ["ingest", "--store", store_dir, "--data", delta_file]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "ingested" in err and "generation 2" in err

    def test_empty_store_requires_query(
        self, tmp_path, honeynet_file, capsys
    ):
        code = main(
            [
                "ingest",
                "--store",
                str(tmp_path / "fresh"),
                "--data",
                honeynet_file,
            ]
        )
        assert code == 2
        assert "--query" in capsys.readouterr().err

    def test_query_lists_measures(self, store_dir, capsys):
        capsys.readouterr()
        assert main(["query", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "traffic" in out and "rows=" in out

    def test_query_table_point_and_prefix(self, store_dir, capsys):
        capsys.readouterr()
        assert (
            main(
                [
                    "query",
                    "--store",
                    store_dir,
                    "--measure",
                    "traffic",
                    "--limit",
                    "2",
                ]
            )
            == 0
        )
        table_out = capsys.readouterr().out
        assert "traffic" in table_out

        from repro.service import MeasureStore

        key, value = next(MeasureStore(store_dir).iter_table("traffic"))
        key_text = ",".join(str(part) for part in key)
        assert (
            main(
                [
                    "query",
                    "--store",
                    store_dir,
                    "--measure",
                    "traffic",
                    "--key",
                    key_text,
                ]
            )
            == 0
        )
        assert capsys.readouterr().out.strip() == str(value)
        assert (
            main(
                [
                    "query",
                    "--store",
                    store_dir,
                    "--measure",
                    "traffic",
                    "--prefix",
                    str(key[0]),
                ]
            )
            == 0
        )
        assert key_text in capsys.readouterr().out

    def test_query_stats(self, store_dir, capsys):
        capsys.readouterr()
        assert main(["query", "--store", store_dir, "--stats"]) == 0
        out = capsys.readouterr().out
        assert '"generation": 1' in out


class TestRunExport:
    def test_out_writes_tsv_per_measure(self, honeynet_file, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        code = main(
            [
                "run",
                "--query",
                "escalation",
                "--data",
                honeynet_file,
                "--out",
                out_dir,
            ]
        )
        assert code == 0
        import os

        written = sorted(os.listdir(out_dir))
        assert "traffic.tsv" in written
        assert "alerts.tsv" in written
        assert "written to" in capsys.readouterr().err


class TestFaults:
    def test_list_shows_registered_sites(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        assert "store.manifest-swap" in out
        assert "ingest.pre-commit" in out
        assert "sort.spill" in out
        assert "partitioned.worker" in out

    def test_list_filters_by_scope(self, capsys):
        assert main(["faults", "list", "--scope", "sort"]) == 0
        out = capsys.readouterr().out
        assert "sort.spill" in out
        assert "store.manifest-swap" not in out

    def test_list_unknown_scope_is_empty(self, capsys):
        assert main(["faults", "list", "--scope", "nope"]) == 0
        assert "no registered sites" in capsys.readouterr().out

    def test_run_clean_seeds_exit_zero(self, capsys):
        code = main(
            ["faults", "run", "--seeds", "2", "--families", "merge"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "checked 2 seeds x 1 families (merge): 0 failure(s)" in out

    def test_run_rejects_unknown_family(self):
        with pytest.raises(ValueError, match="unknown oracle families"):
            main(["faults", "run", "--seeds", "1", "--families", "vibes"])

    def test_sweep_single_site(self, capsys):
        code = main(
            ["faults", "sweep", "--sites", "store.manifest-write"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "store.manifest-write" in out
        assert "all recovered" in out

    def test_sweep_reports_unfired_site(self, capsys):
        code = main(["faults", "sweep", "--sites", "store.not-woven"])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "1 FAILED" in out
