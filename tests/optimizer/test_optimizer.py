"""Tests for the memory model, brute-force search, and greedy planner."""

import pytest

from repro.cube.order import SortKey
from repro.engine.compile import compile_workflow
from repro.engine.sort_scan import SortScanEngine
from repro.engine.watermark import build_node_specs
from repro.optimizer.brute_force import best_sort_key, candidate_sort_keys
from repro.optimizer.greedy import plan_passes
from repro.optimizer.memory_model import (
    estimate_graph_entries,
    estimate_node_entries,
)
from repro.data.synthetic import synthetic_dataset
from repro.schema.dataset_schema import synthetic_schema
from repro.workflow.workflow import AggregationWorkflow


@pytest.fixture(scope="module")
def schema():
    return synthetic_schema(num_dimensions=3, levels=3, fanout=4)


def skewed_workflow(schema):
    """Memory cost depends strongly on the sort order here: all
    measures key on d0, so d0-first keys flush early."""
    wf = AggregationWorkflow(schema)
    wf.basic("a", {"d0": "d0.L0", "d1": "d1.L0"})
    wf.basic("b", {"d0": "d0.L0", "d2": "d2.L0"})
    wf.rollup("ua", {"d0": "d0.L1"}, source="a", agg="sum")
    return wf


class TestMemoryModel:
    def test_covered_dims_cost_one(self, schema):
        graph = compile_workflow(skewed_workflow(schema))
        key = SortKey(schema, [(0, 0), (1, 0), (2, 0)])
        specs = build_node_specs(graph, key)
        node_a = next(n for n in graph.nodes if n.name == "a")
        assert estimate_node_entries(node_a, specs[node_a.name]) == 1

    def test_uncovered_dims_cost_cardinality(self, schema):
        graph = compile_workflow(skewed_workflow(schema))
        key = SortKey(schema, [(1, 0)])  # d1 first: d0 groups recur
        specs = build_node_specs(graph, key)
        node_a = next(n for n in graph.nodes if n.name == "a")
        # Spec truncates immediately (a's d1... a is at (d0,d1); scan
        # leads with d1 which a carries -> covered; d0 uncovered.
        estimate = estimate_node_entries(node_a, specs[node_a.name])
        assert estimate >= 64  # full d0 cardinality

    def test_dataset_size_caps_estimate(self, schema):
        graph = compile_workflow(skewed_workflow(schema))
        key = SortKey(schema, [(2, 0)])
        total_uncapped = estimate_graph_entries(graph, key)
        total_capped = estimate_graph_entries(graph, key, dataset_size=10)
        assert total_capped < total_uncapped

    def test_estimates_rank_keys_correctly(self, schema):
        """The estimate must prefer the key that actually flushes."""
        graph = compile_workflow(skewed_workflow(schema))
        good = SortKey(schema, [(0, 0), (1, 0), (2, 0)])
        bad = SortKey(schema, [(2, 0)])
        assert estimate_graph_entries(graph, good) < (
            estimate_graph_entries(graph, bad)
        )


class TestBruteForce:
    def test_candidates_are_permutations_of_used_dims(self, schema):
        graph = compile_workflow(skewed_workflow(schema))
        keys = list(candidate_sort_keys(graph))
        assert len(keys) == 6  # 3 used dims -> 3! permutations
        assert all(len(key.parts) == 3 for key in keys)

    def test_best_key_leads_with_shared_dim(self, schema):
        graph = compile_workflow(skewed_workflow(schema))
        best = best_sort_key(graph)
        assert best.parts[0][0] == 0  # d0 first

    def test_estimate_matches_actual_behaviour(self, schema):
        """The key the optimizer picks actually uses less memory at
        run time than the worst candidate."""
        dataset = synthetic_dataset(
            4000, num_dimensions=3, levels=3, fanout=4
        )
        wf = skewed_workflow(dataset.schema)
        graph = compile_workflow(wf)
        best = best_sort_key(graph)
        worst = max(
            candidate_sort_keys(graph),
            key=lambda k: estimate_graph_entries(graph, k),
        )
        best_run = SortScanEngine(sort_key=best).evaluate(dataset, wf)
        worst_run = SortScanEngine(sort_key=worst).evaluate(dataset, wf)
        assert best_run.stats.peak_entries <= worst_run.stats.peak_entries

    def test_all_global_measures_fallback_key(self, schema):
        wf = AggregationWorkflow(schema)
        wf.basic("total", {})
        graph = compile_workflow(wf)
        keys = list(candidate_sort_keys(graph))
        assert len(keys) == 1


class TestGreedyPlanner:
    def test_single_pass_without_budget(self, schema):
        graph = compile_workflow(skewed_workflow(schema))
        plan = plan_passes(graph)
        assert plan.num_passes == 1
        assert sorted(plan.passes[0].node_names) == sorted(
            n.name for n in graph.nodes
        )

    def test_impossible_budget_still_makes_progress(self, schema):
        graph = compile_workflow(skewed_workflow(schema))
        plan = plan_passes(graph, memory_budget_entries=1)
        planned = {n for p in plan.passes for n in p.node_names} | set(
            plan.deferred
        )
        assert planned == {n.name for n in graph.nodes}

    def test_composites_follow_their_inputs(self, schema):
        graph = compile_workflow(skewed_workflow(schema))
        plan = plan_passes(graph)
        by_pass = {
            name: i
            for i, p in enumerate(plan.passes)
            for name in p.node_names
        }
        assert by_pass["ua"] >= by_pass["a"]
