"""Tests for the Section 6 cost model."""

import pytest

from repro.engine.compile import compile_workflow
from repro.optimizer.cost_model import (
    estimate_plan_cost,
    estimate_region_count,
    estimate_update_work,
    per_measure_plan_cost,
)
from repro.optimizer.greedy import plan_passes
from repro.queries.combined import combined_workflow
from repro.queries.q1_child_parent import q1_workflow
from repro.schema.dataset_schema import (
    network_log_schema,
    synthetic_schema,
)
from repro.workflow.workflow import AggregationWorkflow


@pytest.fixture(scope="module")
def schema():
    return synthetic_schema(num_dimensions=2, levels=3, fanout=4)


class TestRegionCounts:
    def test_capped_by_dataset_size(self, schema):
        wf = AggregationWorkflow(schema)
        wf.basic("fine", {"d0": "d0.L0", "d1": "d1.L0"})  # 4096 regions
        graph = compile_workflow(wf)
        node = graph.nodes[0]
        assert estimate_region_count(node, 100) == 100
        assert estimate_region_count(node, 100_000) == 4096

    def test_all_dims_is_single_region(self, schema):
        wf = AggregationWorkflow(schema)
        wf.basic("total", {})
        graph = compile_workflow(wf)
        assert estimate_region_count(graph.nodes[0], 10_000) == 1


class TestUpdateWork:
    def test_basic_touches_every_record(self, schema):
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        graph = compile_workflow(wf)
        assert estimate_update_work(graph.nodes[0], 5000) == 5000

    def test_window_multiplies_source_rows(self, schema):
        wf = AggregationWorkflow(schema)
        wf.basic("cnt", {"d0": "d0.L0"})
        wf.moving_window(
            "win", {"d0": "d0.L0"}, source="cnt",
            windows={"d0": (1, 2)}, agg="sum",
        )
        graph = compile_workflow(wf)
        win = next(n for n in graph.nodes if n.name == "win")
        narrow = estimate_update_work(win, 100_000)
        wf2 = AggregationWorkflow(schema)
        wf2.basic("cnt", {"d0": "d0.L0"})
        wf2.moving_window(
            "win", {"d0": "d0.L0"}, source="cnt",
            windows={"d0": (4, 5)}, agg="sum",
        )
        graph2 = compile_workflow(wf2)
        win2 = next(n for n in graph2.nodes if n.name == "win")
        wide = estimate_update_work(win2, 100_000)
        assert wide > narrow


class TestPlanComparisons:
    def test_fused_beats_per_measure_on_combined_query(self):
        """Figure 6(f)'s claim, visible at plan time: the one-pass
        fused plan costs far less than per-measure query blocks."""
        net = network_log_schema()
        graph = compile_workflow(combined_workflow(net))
        n = 500_000
        fused = estimate_plan_cost(graph, plan_passes(graph), n)
        per_measure = per_measure_plan_cost(graph, n)
        assert fused.total < per_measure.total / 2
        # The gap is in the repeated sorts/scans, not the update work.
        assert per_measure.sort_work > fused.sort_work * 3

    def test_q1_gap_grows_with_children(self):
        schema = synthetic_schema()
        n = 100_000
        gaps = []
        for children in (2, 6):
            graph = compile_workflow(q1_workflow(schema, children))
            fused = estimate_plan_cost(graph, plan_passes(graph), n)
            relational = per_measure_plan_cost(graph, n)
            gaps.append(relational.total - fused.total)
        assert gaps[1] > gaps[0]

    def test_deferred_nodes_priced_relationally(self, schema):
        wf = AggregationWorkflow(schema)
        wf.basic("a", {"d0": "d0.L0"})
        wf.basic("b", {"d1": "d1.L0"})
        wf.rollup("ga", {}, source="a", agg="sum")
        wf.rollup("gb", {}, source="b", agg="sum")
        wf.combine(
            "both", ["ga", "gb"],
            fn=lambda x, y: (x or 0) + (y or 0), handles_null=True,
        )
        graph = compile_workflow(wf)
        plan = plan_passes(graph, memory_budget_entries=60)
        assert plan.deferred  # the combine spans passes
        cost = estimate_plan_cost(graph, plan, 10_000)
        assert cost.relational_work > 0
        assert "relational" in cost.describe()

    def test_more_passes_cost_more_sorting(self, schema):
        wf = AggregationWorkflow(schema)
        wf.basic("a", {"d0": "d0.L0"})
        wf.basic("b", {"d1": "d1.L0"})
        graph = compile_workflow(wf)
        one_pass = estimate_plan_cost(graph, plan_passes(graph), 50_000)
        two_pass = estimate_plan_cost(
            graph, plan_passes(graph, memory_budget_entries=60), 50_000
        )
        assert two_pass.sort_work > one_pass.sort_work
